"""Columnar label streams: per-tag positional arrays with skip pointers.

The twig algorithms originally iterated :class:`LabeledElement` objects
one attribute access at a time; at corpus scale the interpreter overhead
of those object walks dominates matching time.  This module stores the
three region-label components (``start``/``end``/``level``) plus the
DataGuide path id of every element in parallel ``array('q')`` columns,
one set per tag (plus one for the wildcard stream).  The columnar twig
kernels compare raw integers, keep their cursors as plain ints, and only
materialize :class:`LabeledElement` objects for elements that actually
enter a path solution.

``path_ids`` is the columnar stand-in for the extended Dewey label: two
elements share a path id exactly when they share their whole root-to-leaf
tag path (the DataGuide invariant), which is the only property TJFast
needs from the label — so the per-element tag-path decode collapses into
a single int compare against a per-path cache.

:meth:`ColumnarStream.seek_ge` is the skip pointer: galloping followed by
binary search over the (strictly increasing) ``starts`` column, so join
cursors jump past non-containing regions instead of advancing linearly.
Only ``starts`` is monotone within a stream — ``ends`` interleave under
nesting — which is why every skip in the algorithms is phrased as "first
element starting at or after X".

The whole index serializes to flat bytes (``array.tobytes``), giving
snapshots a C-speed load path; see :func:`encode_columnar` /
:func:`decode_columnar`.  Snapshot format v3 goes further: the columns
are stored as one raw, 8-byte-aligned section and served back as
``memoryview`` slices of the snapshot's mmap — no copy at all — via
:func:`encode_columnar_raw` / :func:`decode_columnar_raw`.  A
view-backed stream is read-only; the single in-place mutation the write
path performs (:meth:`ColumnarIndex.rewiden_root`) copies the affected
``ends`` column into a mutable ``array`` first (copy-on-write).
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence

from repro.labeling.assign import LabeledDocument, LabeledElement

#: Virtual start/end of an exhausted columnar cursor; larger than any
#: region label (labels are bounded by 2 * element count).
INF_INT = 1 << 62

#: Version tag inside the encoded payload (independent of the snapshot
#: container version).
COLUMNAR_FORMAT = 1

#: Version tag inside the v3 raw payload directory.
COLUMNAR_RAW_FORMAT = 1

_TYPECODE = "q"


class LazyElements(Sequence):
    """Parallel object column resolved on first element access.

    Zero-copy loads serve the int columns straight from the snapshot but
    must not inflate the label store just to hold the parallel
    ``elements`` list — only queries that materialize final matches need
    the objects.  ``resolve`` is called once, on the first subscript or
    iteration; its result must have exactly ``count`` rows (the deferred
    version of the row-count consistency check the eager decoder runs).
    ``len()`` never resolves, so stream-length probes stay free.
    """

    __slots__ = ("_resolve", "_count", "_items")

    def __init__(
        self, resolve: Callable[[], Sequence[LabeledElement]], count: int
    ) -> None:
        self._resolve = resolve
        self._count = count
        self._items: Sequence[LabeledElement] | None = None

    def _materialize(self) -> Sequence[LabeledElement]:
        items = self._items
        if items is None:
            items = self._resolve()
            if len(items) != self._count:
                raise ValueError(
                    f"columnar section has {self._count} rows,"
                    f" label store has {len(items)}"
                )
            self._items = items
        return items

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())


class ColumnarStream:
    """Parallel positional columns over one document-ordered stream.

    ``starts`` / ``ends`` / ``levels`` / ``path_ids`` are int64 columns
    indexed by stream position — ``array('q')`` when built or copied,
    read-only ``memoryview('q')`` slices when served zero-copy from a
    mapped snapshot (both support indexing, slicing, and ``bisect``).
    ``elements`` is the parallel object list used only to materialize
    final matches (possibly a :class:`LazyElements` that defers label
    inflation).  ``starts`` is strictly increasing (document order +
    unique region starts), which :meth:`seek_ge` exploits.
    """

    __slots__ = ("starts", "ends", "levels", "path_ids", "elements")

    def __init__(
        self,
        starts: array,
        ends: array,
        levels: array,
        path_ids: array,
        elements: Sequence[LabeledElement],
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.levels = levels
        self.path_ids = path_ids
        self.elements = elements

    @classmethod
    def from_elements(cls, elements: Sequence[LabeledElement]) -> ColumnarStream:
        starts = array(_TYPECODE)
        ends = array(_TYPECODE)
        levels = array(_TYPECODE)
        path_ids = array(_TYPECODE)
        for labeled in elements:
            region = labeled.region
            starts.append(region.start)
            ends.append(region.end)
            levels.append(region.level)
            path_ids.append(labeled.path_node.node_id)
        return cls(starts, ends, levels, path_ids, elements)

    def __len__(self) -> int:
        return len(self.starts)

    def element(self, index: int) -> LabeledElement:
        return self.elements[index]

    def take(self, indices: Iterable[int]) -> ColumnarStream:
        """A new stream restricted to ``indices`` (must be increasing)."""
        starts = self.starts
        ends = self.ends
        levels = self.levels
        path_ids = self.path_ids
        elements = self.elements
        index_list = list(indices)
        return ColumnarStream(
            array(_TYPECODE, (starts[i] for i in index_list)),
            array(_TYPECODE, (ends[i] for i in index_list)),
            array(_TYPECODE, (levels[i] for i in index_list)),
            array(_TYPECODE, (path_ids[i] for i in index_list)),
            [elements[i] for i in index_list],
        )

    def where(self, keep: Callable[[LabeledElement], bool]) -> ColumnarStream:
        """A new stream of the elements satisfying ``keep``."""
        return self.take(
            i for i, element in enumerate(self.elements) if keep(element)
        )

    def seek_ge(self, lo: int, value: int) -> int:
        """First position ``>= lo`` whose start is ``>= value``.

        Returns ``len(self)`` when no such position exists.  Gallops from
        ``lo`` (doubling steps) to bracket the answer, then binary-searches
        the bracket — O(log d) in the distance d actually skipped, so short
        hops near the cursor stay cheap while long jumps never scan.
        """
        starts = self.starts
        n = len(starts)
        if lo >= n:
            return n
        if starts[lo] >= value:
            return lo
        step = 1
        hi = lo + 1
        while hi < n and starts[hi] < value:
            lo = hi
            step <<= 1
            hi = lo + step
        if hi > n:
            hi = n
        return bisect_left(starts, value, lo + 1, hi)

    def __repr__(self) -> str:
        return f"ColumnarStream(len={len(self.starts)})"


class ColumnarIndex:
    """Per-tag columnar streams for one labeled document."""

    __slots__ = ("_by_tag", "_all")

    def __init__(
        self, by_tag: dict[str, ColumnarStream], all_elements: ColumnarStream
    ) -> None:
        self._by_tag = by_tag
        self._all = all_elements

    @classmethod
    def from_labeled(cls, labeled: LabeledDocument) -> ColumnarIndex:
        by_tag = {
            tag: ColumnarStream.from_elements(labeled.stream(tag))
            for tag in labeled.tags()
        }
        return cls(by_tag, ColumnarStream.from_elements(labeled.elements))

    def stream(self, tag: str | None) -> ColumnarStream:
        """Columnar stream for ``tag`` (None = wildcard: all elements)."""
        if tag is None:
            return self._all
        stream = self._by_tag.get(tag)
        if stream is None:
            stream = _EMPTY
        return stream

    def tags(self) -> set[str]:
        return set(self._by_tag)

    def rewiden_root(self, root_tag: str, end: int) -> None:
        """Patch the document root's region ``end`` in place.

        The root opens the document, so it is row 0 of the all-elements
        column and row 0 of its own tag column (streams are document
        ordered and the root's start tick is minimal).  The live write
        path calls this when the corpus root's region is re-widened; no
        other row ever changes width in place.

        Streams served zero-copy from a snapshot hold their columns as
        read-only views; the patch copies the affected ``ends`` column
        into a mutable ``array`` first (copy-on-write escape hatch — the
        other columns stay mapped).
        """
        if len(self._all):
            _patch_end(self._all, end)
        stream = self._by_tag.get(root_tag)
        if stream is not None and len(stream):
            _patch_end(stream, end)

    def __repr__(self) -> str:
        return (
            f"ColumnarIndex(tags={len(self._by_tag)},"
            f" elements={len(self._all)})"
        )


_EMPTY = ColumnarStream(
    array(_TYPECODE), array(_TYPECODE), array(_TYPECODE), array(_TYPECODE), []
)


def _patch_end(stream: ColumnarStream, end: int) -> None:
    if not isinstance(stream.ends, array):
        stream.ends = array(_TYPECODE, stream.ends)
    stream.ends[0] = end


# ----------------------------------------------------------------------
# Snapshot (de)serialization
#
# Columns dump to raw bytes; loading is a memcpy per column instead of a
# Python-level loop over every element, which is what makes persisting
# the columnar section worthwhile on top of the label section.
# ----------------------------------------------------------------------


def _pack(stream: ColumnarStream) -> tuple[bytes, bytes, bytes, bytes]:
    return (
        stream.starts.tobytes(),
        stream.ends.tobytes(),
        stream.levels.tobytes(),
        stream.path_ids.tobytes(),
    )


def encode_columnar(index: ColumnarIndex) -> dict:
    """Plain-container payload for the snapshot's ``columnar`` section."""
    return {
        "format": COLUMNAR_FORMAT,
        "typecode": _TYPECODE,
        "itemsize": array(_TYPECODE).itemsize,
        "byteorder": sys.byteorder,
        "tags": {tag: _pack(stream) for tag, stream in index._by_tag.items()},
        "all": _pack(index._all),
    }


def _unpack(
    blobs: tuple[bytes, bytes, bytes, bytes],
    elements: Sequence[LabeledElement],
    swap: bool,
    context: str,
) -> ColumnarStream:
    columns = []
    for blob in blobs:
        column = array(_TYPECODE)
        column.frombytes(blob)
        if swap:
            column.byteswap()
        columns.append(column)
    if any(len(column) != len(elements) for column in columns):
        raise ValueError(
            f"columnar section for {context} has {len(columns[0])} rows,"
            f" label store has {len(elements)}"
        )
    return ColumnarStream(*columns, elements)


def decode_columnar(payload: dict, labeled: LabeledDocument) -> ColumnarIndex | None:
    """Rebuild a :class:`ColumnarIndex` from an encoded payload.

    Object columns (``elements``) come from the already-loaded label
    store — the arrays must line up with it row for row, which doubles as
    a consistency check.  Returns ``None`` when the writing platform's
    array layout cannot be mapped onto this one (the caller then rebuilds
    from the labels instead of failing the load).

    Raises
    ------
    ValueError
        If the payload is malformed or inconsistent with ``labeled``.
    """
    if not isinstance(payload, dict):
        raise ValueError("columnar payload is not a mapping")
    if payload.get("format") != COLUMNAR_FORMAT:
        return None
    if (
        payload.get("typecode") != _TYPECODE
        or payload.get("itemsize") != array(_TYPECODE).itemsize
    ):
        return None
    swap = payload.get("byteorder") != sys.byteorder
    tags_payload = payload["tags"]
    known_tags = labeled.tags()
    if set(tags_payload) != known_tags:
        raise ValueError(
            "columnar section tags do not match the label store"
            f" ({len(tags_payload)} stored, {len(known_tags)} labeled)"
        )
    by_tag = {
        tag: _unpack(blobs, labeled.stream(tag), swap, f"tag {tag!r}")
        for tag, blobs in tags_payload.items()
    }
    all_stream = _unpack(payload["all"], labeled.elements, swap, "wildcard")
    return ColumnarIndex(by_tag, all_stream)


# ----------------------------------------------------------------------
# Raw (v3 / zero-copy) serialization
#
# The v2 codec above stores one bytes object per column inside a pickled
# payload — loading still allocates a fresh array per column.  The v3
# codec splits the index into a tiny pickled *directory* (per-stream row
# counts and int64 offsets) and one contiguous raw byte blob that the
# snapshot writes 8-byte-aligned and uncompressed, so a mapped load can
# serve every column as a memoryview slice without touching the bytes.
# ----------------------------------------------------------------------


def encode_columnar_raw(
    index: ColumnarIndex, byteorder: str = sys.byteorder
) -> tuple[dict, bytearray]:
    """Split ``index`` into a ``(directory, raw_bytes)`` pair.

    Offsets in the directory are in int64 units from the start of the
    raw blob.  ``byteorder`` other than native byteswaps the written
    columns (used by tests to fabricate foreign-endian snapshots).
    """
    raw = bytearray()
    swap = byteorder != sys.byteorder

    def put(column) -> int:
        cells = array(_TYPECODE, column) if swap else column
        if swap:
            cells.byteswap()
        offset = len(raw) // 8
        raw.extend(cells.tobytes())
        return offset

    def pack(stream: ColumnarStream) -> dict:
        return {
            "n": len(stream),
            "starts": put(stream.starts),
            "ends": put(stream.ends),
            "levels": put(stream.levels),
            "path_ids": put(stream.path_ids),
        }

    directory = {
        "format": COLUMNAR_RAW_FORMAT,
        "typecode": _TYPECODE,
        "itemsize": array(_TYPECODE).itemsize,
        "byteorder": byteorder,
        "tags": {tag: pack(stream) for tag, stream in index._by_tag.items()},
        "all": pack(index._all),
    }
    return directory, raw


def decode_columnar_raw(
    directory: dict,
    raw,
    elements_for: Callable[[str | None], Sequence[LabeledElement]],
) -> ColumnarIndex | None:
    """Rebuild a :class:`ColumnarIndex` over ``raw`` without copying.

    ``raw`` is the snapshot's raw section — a ``memoryview`` of the mmap
    (zero-copy) or of the loaded bytes.  ``elements_for(tag)`` resolves
    the parallel object stream lazily (``None`` = wildcard); it is only
    called if a query materializes elements, and the row-count
    consistency check runs at that point.

    Returns ``None`` when the writing platform's int layout cannot be
    mapped onto this one (caller rebuilds from the labels).  A foreign
    *byte order* alone degrades to the copying decoder — every column is
    copied into a byteswapped ``array`` — rather than failing.

    Raises
    ------
    ValueError
        If the directory is malformed.
    """
    if not isinstance(directory, dict):
        raise ValueError("columnar directory is not a mapping")
    if directory.get("format") != COLUMNAR_RAW_FORMAT:
        return None
    itemsize = array(_TYPECODE).itemsize
    if (
        directory.get("typecode") != _TYPECODE
        or directory.get("itemsize") != itemsize
    ):
        return None
    base = raw if isinstance(raw, memoryview) else memoryview(raw)
    if directory.get("byteorder") == sys.byteorder:
        cells = base.cast(_TYPECODE)

        def column(offset: int, count: int):
            return cells[offset : offset + count]

    else:

        def column(offset: int, count: int):
            copied = array(_TYPECODE)
            copied.frombytes(base[offset * itemsize : (offset + count) * itemsize])
            copied.byteswap()
            return copied

    def unpack(record: dict, tag: str | None) -> ColumnarStream:
        count = record["n"]
        return ColumnarStream(
            column(record["starts"], count),
            column(record["ends"], count),
            column(record["levels"], count),
            column(record["path_ids"], count),
            LazyElements(lambda t=tag: elements_for(t), count),
        )

    try:
        by_tag = {
            tag: unpack(record, tag)
            for tag, record in directory["tags"].items()
        }
        all_stream = unpack(directory["all"], None)
    except (KeyError, TypeError, IndexError) as exc:
        raise ValueError(f"malformed columnar directory: {exc}") from exc
    return ColumnarIndex(by_tag, all_stream)
