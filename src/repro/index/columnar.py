"""Columnar label streams: per-tag positional arrays with skip pointers.

The twig algorithms originally iterated :class:`LabeledElement` objects
one attribute access at a time; at corpus scale the interpreter overhead
of those object walks dominates matching time.  This module stores the
three region-label components (``start``/``end``/``level``) plus the
DataGuide path id of every element in parallel ``array('q')`` columns,
one set per tag (plus one for the wildcard stream).  The columnar twig
kernels compare raw integers, keep their cursors as plain ints, and only
materialize :class:`LabeledElement` objects for elements that actually
enter a path solution.

``path_ids`` is the columnar stand-in for the extended Dewey label: two
elements share a path id exactly when they share their whole root-to-leaf
tag path (the DataGuide invariant), which is the only property TJFast
needs from the label — so the per-element tag-path decode collapses into
a single int compare against a per-path cache.

:meth:`ColumnarStream.seek_ge` is the skip pointer: galloping followed by
binary search over the (strictly increasing) ``starts`` column, so join
cursors jump past non-containing regions instead of advancing linearly.
Only ``starts`` is monotone within a stream — ``ends`` interleave under
nesting — which is why every skip in the algorithms is phrased as "first
element starting at or after X".

The whole index serializes to flat bytes (``array.tobytes``), giving
snapshots a C-speed load path; see :func:`encode_columnar` /
:func:`decode_columnar`.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence

from repro.labeling.assign import LabeledDocument, LabeledElement

#: Virtual start/end of an exhausted columnar cursor; larger than any
#: region label (labels are bounded by 2 * element count).
INF_INT = 1 << 62

#: Version tag inside the encoded payload (independent of the snapshot
#: container version).
COLUMNAR_FORMAT = 1

_TYPECODE = "q"


class ColumnarStream:
    """Parallel positional columns over one document-ordered stream.

    ``starts`` / ``ends`` / ``levels`` / ``path_ids`` are ``array('q')``
    columns indexed by stream position; ``elements`` is the parallel
    object list used only to materialize final matches.  ``starts`` is
    strictly increasing (document order + unique region starts), which
    :meth:`seek_ge` exploits.
    """

    __slots__ = ("starts", "ends", "levels", "path_ids", "elements")

    def __init__(
        self,
        starts: array,
        ends: array,
        levels: array,
        path_ids: array,
        elements: Sequence[LabeledElement],
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.levels = levels
        self.path_ids = path_ids
        self.elements = elements

    @classmethod
    def from_elements(cls, elements: Sequence[LabeledElement]) -> ColumnarStream:
        starts = array(_TYPECODE)
        ends = array(_TYPECODE)
        levels = array(_TYPECODE)
        path_ids = array(_TYPECODE)
        for labeled in elements:
            region = labeled.region
            starts.append(region.start)
            ends.append(region.end)
            levels.append(region.level)
            path_ids.append(labeled.path_node.node_id)
        return cls(starts, ends, levels, path_ids, elements)

    def __len__(self) -> int:
        return len(self.starts)

    def element(self, index: int) -> LabeledElement:
        return self.elements[index]

    def take(self, indices: Iterable[int]) -> ColumnarStream:
        """A new stream restricted to ``indices`` (must be increasing)."""
        starts = self.starts
        ends = self.ends
        levels = self.levels
        path_ids = self.path_ids
        elements = self.elements
        index_list = list(indices)
        return ColumnarStream(
            array(_TYPECODE, (starts[i] for i in index_list)),
            array(_TYPECODE, (ends[i] for i in index_list)),
            array(_TYPECODE, (levels[i] for i in index_list)),
            array(_TYPECODE, (path_ids[i] for i in index_list)),
            [elements[i] for i in index_list],
        )

    def where(self, keep: Callable[[LabeledElement], bool]) -> ColumnarStream:
        """A new stream of the elements satisfying ``keep``."""
        return self.take(
            i for i, element in enumerate(self.elements) if keep(element)
        )

    def seek_ge(self, lo: int, value: int) -> int:
        """First position ``>= lo`` whose start is ``>= value``.

        Returns ``len(self)`` when no such position exists.  Gallops from
        ``lo`` (doubling steps) to bracket the answer, then binary-searches
        the bracket — O(log d) in the distance d actually skipped, so short
        hops near the cursor stay cheap while long jumps never scan.
        """
        starts = self.starts
        n = len(starts)
        if lo >= n:
            return n
        if starts[lo] >= value:
            return lo
        step = 1
        hi = lo + 1
        while hi < n and starts[hi] < value:
            lo = hi
            step <<= 1
            hi = lo + step
        if hi > n:
            hi = n
        return bisect_left(starts, value, lo + 1, hi)

    def __repr__(self) -> str:
        return f"ColumnarStream(len={len(self.starts)})"


class ColumnarIndex:
    """Per-tag columnar streams for one labeled document."""

    __slots__ = ("_by_tag", "_all")

    def __init__(
        self, by_tag: dict[str, ColumnarStream], all_elements: ColumnarStream
    ) -> None:
        self._by_tag = by_tag
        self._all = all_elements

    @classmethod
    def from_labeled(cls, labeled: LabeledDocument) -> ColumnarIndex:
        by_tag = {
            tag: ColumnarStream.from_elements(labeled.stream(tag))
            for tag in labeled.tags()
        }
        return cls(by_tag, ColumnarStream.from_elements(labeled.elements))

    def stream(self, tag: str | None) -> ColumnarStream:
        """Columnar stream for ``tag`` (None = wildcard: all elements)."""
        if tag is None:
            return self._all
        stream = self._by_tag.get(tag)
        if stream is None:
            stream = _EMPTY
        return stream

    def tags(self) -> set[str]:
        return set(self._by_tag)

    def rewiden_root(self, root_tag: str, end: int) -> None:
        """Patch the document root's region ``end`` in place.

        The root opens the document, so it is row 0 of the all-elements
        column and row 0 of its own tag column (streams are document
        ordered and the root's start tick is minimal).  The live write
        path calls this when the corpus root's region is re-widened; no
        other row ever changes width in place.
        """
        if len(self._all):
            self._all.ends[0] = end
        stream = self._by_tag.get(root_tag)
        if stream is not None and len(stream):
            stream.ends[0] = end

    def __repr__(self) -> str:
        return (
            f"ColumnarIndex(tags={len(self._by_tag)},"
            f" elements={len(self._all)})"
        )


_EMPTY = ColumnarStream(
    array(_TYPECODE), array(_TYPECODE), array(_TYPECODE), array(_TYPECODE), []
)


# ----------------------------------------------------------------------
# Snapshot (de)serialization
#
# Columns dump to raw bytes; loading is a memcpy per column instead of a
# Python-level loop over every element, which is what makes persisting
# the columnar section worthwhile on top of the label section.
# ----------------------------------------------------------------------


def _pack(stream: ColumnarStream) -> tuple[bytes, bytes, bytes, bytes]:
    return (
        stream.starts.tobytes(),
        stream.ends.tobytes(),
        stream.levels.tobytes(),
        stream.path_ids.tobytes(),
    )


def encode_columnar(index: ColumnarIndex) -> dict:
    """Plain-container payload for the snapshot's ``columnar`` section."""
    return {
        "format": COLUMNAR_FORMAT,
        "typecode": _TYPECODE,
        "itemsize": array(_TYPECODE).itemsize,
        "byteorder": sys.byteorder,
        "tags": {tag: _pack(stream) for tag, stream in index._by_tag.items()},
        "all": _pack(index._all),
    }


def _unpack(
    blobs: tuple[bytes, bytes, bytes, bytes],
    elements: Sequence[LabeledElement],
    swap: bool,
    context: str,
) -> ColumnarStream:
    columns = []
    for blob in blobs:
        column = array(_TYPECODE)
        column.frombytes(blob)
        if swap:
            column.byteswap()
        columns.append(column)
    if any(len(column) != len(elements) for column in columns):
        raise ValueError(
            f"columnar section for {context} has {len(columns[0])} rows,"
            f" label store has {len(elements)}"
        )
    return ColumnarStream(*columns, elements)


def decode_columnar(payload: dict, labeled: LabeledDocument) -> ColumnarIndex | None:
    """Rebuild a :class:`ColumnarIndex` from an encoded payload.

    Object columns (``elements``) come from the already-loaded label
    store — the arrays must line up with it row for row, which doubles as
    a consistency check.  Returns ``None`` when the writing platform's
    array layout cannot be mapped onto this one (the caller then rebuilds
    from the labels instead of failing the load).

    Raises
    ------
    ValueError
        If the payload is malformed or inconsistent with ``labeled``.
    """
    if not isinstance(payload, dict):
        raise ValueError("columnar payload is not a mapping")
    if payload.get("format") != COLUMNAR_FORMAT:
        return None
    if (
        payload.get("typecode") != _TYPECODE
        or payload.get("itemsize") != array(_TYPECODE).itemsize
    ):
        return None
    swap = payload.get("byteorder") != sys.byteorder
    tags_payload = payload["tags"]
    known_tags = labeled.tags()
    if set(tags_payload) != known_tags:
        raise ValueError(
            "columnar section tags do not match the label store"
            f" ({len(tags_payload)} stored, {len(known_tags)} labeled)"
        )
    by_tag = {
        tag: _unpack(blobs, labeled.stream(tag), swap, f"tag {tag!r}")
        for tag, blobs in tags_payload.items()
    }
    all_stream = _unpack(payload["all"], labeled.elements, swap, "wildcard")
    return ColumnarIndex(by_tag, all_stream)
