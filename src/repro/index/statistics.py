"""Corpus statistics: a compact summary of an indexed document."""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument


@dataclass(frozen=True, slots=True)
class CorpusStatistics:
    """Summary figures for one labeled, indexed document."""

    element_count: int
    distinct_tags: int
    distinct_paths: int
    max_depth: int
    average_depth: float
    text_element_count: int
    distinct_terms: int
    total_tokens: int
    distinct_values: int

    def as_dict(self) -> dict[str, float]:
        return {
            "element_count": self.element_count,
            "distinct_tags": self.distinct_tags,
            "distinct_paths": self.distinct_paths,
            "max_depth": self.max_depth,
            "average_depth": round(self.average_depth, 2),
            "text_element_count": self.text_element_count,
            "distinct_terms": self.distinct_terms,
            "total_tokens": self.total_tokens,
            "distinct_values": self.distinct_values,
        }


def compute_statistics(
    labeled: LabeledDocument, term_index: TermIndex
) -> CorpusStatistics:
    """Compute :class:`CorpusStatistics` for an indexed document."""
    depths = [element.level + 1 for element in labeled.elements]
    return CorpusStatistics(
        element_count=len(labeled),
        distinct_tags=len(labeled.tags()),
        distinct_paths=len(labeled.guide),
        max_depth=max(depths, default=0),
        average_depth=sum(depths) / len(depths) if depths else 0.0,
        text_element_count=term_index.text_element_count,
        distinct_terms=sum(1 for _ in term_index.vocabulary()),
        total_tokens=term_index.total_tokens,
        distinct_values=sum(1 for _ in term_index.values()),
    )
