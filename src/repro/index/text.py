"""Text normalization and tokenization for value indexing.

One tokenizer is shared by the term index, the completion indexes, and the
query side, so a term always normalizes the same way everywhere.
"""

from __future__ import annotations

import re

_TOKEN_PATTERN = re.compile(r"[0-9A-Za-z]+(?:['\-][0-9A-Za-z]+)*")

#: Words too common to be useful as search terms or completions.
STOPWORDS = frozenset(
    "a an and are as at be by for from has in is it of on or the to with".split()
)

#: Longest value string kept verbatim in value-completion tries.
MAX_VALUE_LENGTH = 64


def normalize(text: str) -> str:
    """Case-fold and collapse whitespace."""
    return " ".join(text.lower().split())


def tokenize(text: str, drop_stopwords: bool = False) -> list[str]:
    """Split ``text`` into normalized tokens.

    Tokens are maximal alphanumeric runs (apostrophes and hyphens joining
    two runs are kept, so ``"O'Neil"`` and ``"twig-join"`` stay whole).
    """
    tokens = [match.group(0).lower() for match in _TOKEN_PATTERN.finditer(text)]
    if drop_stopwords:
        tokens = [token for token in tokens if token not in STOPWORDS]
    return tokens


def completion_value(text: str) -> str | None:
    """Normalize ``text`` for the value-completion trie.

    Returns None for values that are empty or too long to be useful
    completions (long prose paragraphs are completed token-wise instead).
    """
    value = normalize(text)
    if not value or len(value) > MAX_VALUE_LENGTH:
        return None
    return value
