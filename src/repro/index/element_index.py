"""Tag streams and stream cursors for the twig-join algorithms.

A *stream* is the document-ordered list of labeled elements for one query
node: all elements with the node's tag (or every element, for a wildcard),
optionally pre-filtered by the node's value predicate.  The holistic
algorithms consume streams through :class:`StreamCursor`, which exposes the
``head`` / ``advance`` / ``eof`` interface TwigStack and PathStack are
written against.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, LabeledElement

#: Filters applied to a tag stream (value predicates compile to these).
ElementFilter = Callable[[LabeledElement], bool]


class StreamCursor:
    """Forward-only cursor over a document-ordered element stream."""

    __slots__ = ("_items", "_pos")

    def __init__(self, items: Sequence[LabeledElement]) -> None:
        self._items = items
        self._pos = 0

    def eof(self) -> bool:
        return self._pos >= len(self._items)

    def head(self) -> LabeledElement:
        """Current element; undefined behaviour after eof (raises)."""
        return self._items[self._pos]

    def advance(self) -> None:
        self._pos += 1

    def remaining(self) -> int:
        return len(self._items) - self._pos

    def reset(self) -> None:
        self._pos = 0

    def __repr__(self) -> str:
        state = "eof" if self.eof() else repr(self.head())
        return f"StreamCursor(pos={self._pos}, head={state})"


class StreamFactory:
    """Builds (optionally filtered) streams over a labeled document."""

    def __init__(self, labeled: LabeledDocument, term_index: TermIndex) -> None:
        self._labeled = labeled
        self._term_index = term_index

    @property
    def term_index(self) -> TermIndex:
        return self._term_index

    def stream(self, tag: str | None) -> list[LabeledElement]:
        """Document-ordered elements with ``tag`` (None = wildcard: all)."""
        if tag is None:
            return self._labeled.elements
        return self._labeled.stream(tag)

    def filtered_stream(
        self, tag: str | None, element_filter: ElementFilter | None = None
    ) -> list[LabeledElement]:
        """Stream for ``tag`` with ``element_filter`` applied."""
        base = self.stream(tag)
        if element_filter is None:
            return base
        return [element for element in base if element_filter(element)]

    def cursor(
        self, tag: str | None, element_filter: ElementFilter | None = None
    ) -> StreamCursor:
        return StreamCursor(self.filtered_stream(tag, element_filter))
