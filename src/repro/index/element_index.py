"""Tag streams and stream cursors for the twig-join algorithms.

A *stream* is the document-ordered list of labeled elements for one query
node: all elements with the node's tag (or every element, for a wildcard),
optionally pre-filtered by the node's value predicate.  The holistic
algorithms consume streams through :class:`StreamCursor`, which exposes the
``head`` / ``advance`` / ``eof`` interface TwigStack and PathStack are
written against.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Hashable, Sequence

from repro.index.columnar import ColumnarIndex, ColumnarStream
from repro.index.term_index import TermIndex
from repro.labeling.assign import LabeledDocument, LabeledElement

#: Filters applied to a tag stream (value predicates compile to these).
ElementFilter = Callable[[LabeledElement], bool]


class StreamCursor:
    """Forward-only cursor over a document-ordered element stream."""

    __slots__ = ("_items", "_pos")

    def __init__(self, items: Sequence[LabeledElement]) -> None:
        self._items = items
        self._pos = 0

    def eof(self) -> bool:
        return self._pos >= len(self._items)

    def head(self) -> LabeledElement:
        """Current element; undefined behaviour after eof (raises)."""
        return self._items[self._pos]

    def advance(self) -> None:
        self._pos += 1

    def remaining(self) -> int:
        return len(self._items) - self._pos

    def reset(self) -> None:
        self._pos = 0

    def __repr__(self) -> str:
        state = "eof" if self.eof() else repr(self.head())
        return f"StreamCursor(pos={self._pos}, head={state})"


class StreamFactory:
    """Builds (optionally filtered) streams over a labeled document.

    The factory serves two representations of the same streams: plain
    ``LabeledElement`` lists (the original interface every algorithm was
    written against) and :class:`~repro.index.columnar.ColumnarStream`
    views for the columnar twig kernels.  The columnar index is built on
    first use unless a prebuilt one is injected (snapshot loads) or
    ``build_columnar=False`` disables it entirely (the object-stream
    fallback path, e.g. for pre-columnar snapshots).

    Filtered streams are memoized by ``(tag, filter key)`` so repeated
    predicate queries reuse one scan of the shared per-tag stream instead
    of re-filtering it on every call.
    """

    #: Entries kept in the filtered-stream memo (object + columnar).
    FILTER_CACHE_SIZE = 256

    def __init__(
        self,
        labeled: LabeledDocument,
        term_index: TermIndex,
        columnar: ColumnarIndex | None = None,
        build_columnar: bool = True,
    ) -> None:
        self._labeled = labeled
        self._term_index = term_index
        self._columnar = columnar
        self._build_columnar = build_columnar
        self._filtered_cache: OrderedDict = OrderedDict()

    @property
    def term_index(self) -> TermIndex:
        return self._term_index

    # ------------------------------------------------------------------
    # Object streams
    # ------------------------------------------------------------------

    def stream(self, tag: str | None) -> list[LabeledElement]:
        """Document-ordered elements with ``tag`` (None = wildcard: all)."""
        if tag is None:
            return self._labeled.elements
        return self._labeled.stream(tag)

    def filtered_stream(
        self,
        tag: str | None,
        element_filter: ElementFilter | None = None,
        key: Hashable | None = None,
    ) -> list[LabeledElement]:
        """Stream for ``tag`` with ``element_filter`` applied.

        With ``key`` (a hashable identity for the filter, e.g. a predicate
        signature) the filtered list is memoized; callers must treat it as
        shared and immutable, like the unfiltered per-tag streams.
        """
        base = self.stream(tag)
        if element_filter is None:
            return base
        if key is not None:
            cached = self._memo_get(("object", tag, key))
            if cached is not None:
                return cached
        result = [element for element in base if element_filter(element)]
        if key is not None:
            self._memo_put(("object", tag, key), result)
        return result

    def cursor(
        self, tag: str | None, element_filter: ElementFilter | None = None
    ) -> StreamCursor:
        return StreamCursor(self.filtered_stream(tag, element_filter))

    # ------------------------------------------------------------------
    # Columnar streams
    # ------------------------------------------------------------------

    def supports_columnar(self) -> bool:
        """Whether columnar views are available (or can be built)."""
        return self._columnar is not None or self._build_columnar

    @property
    def columnar(self) -> ColumnarIndex | None:
        """The columnar index, built on first access when enabled."""
        if self._columnar is None and self._build_columnar:
            self._columnar = ColumnarIndex.from_labeled(self._labeled)
        return self._columnar

    def columnar_stream(self, tag: str | None) -> ColumnarStream:
        """Columnar view of the (unfiltered) stream for ``tag``.

        Raises
        ------
        RuntimeError
            If this factory has columnar support disabled.
        """
        index = self.columnar
        if index is None:
            raise RuntimeError("this StreamFactory has no columnar index")
        return index.stream(tag)

    def filtered_columnar_stream(
        self,
        tag: str | None,
        element_filter: ElementFilter,
        key: Hashable | None = None,
    ) -> ColumnarStream:
        """Columnar view for ``tag`` restricted by ``element_filter``,
        memoized under ``key`` exactly like :meth:`filtered_stream`."""
        if key is not None:
            cached = self._memo_get(("columnar", tag, key))
            if cached is not None:
                return cached
        result = self.columnar_stream(tag).where(element_filter)
        if key is not None:
            self._memo_put(("columnar", tag, key), result)
        return result

    # ------------------------------------------------------------------

    def clear_memo(self) -> None:
        """Drop every memoized filtered stream.

        Called on generation advance: historically the memo only died
        with the factory instance on hot reload, but the live write path
        advances generations while *keeping* unchanged segment databases
        — and a memoized columnar stream holds copied region columns
        (including the corpus root's patched width), so surviving
        instances must shed their memos when the generation moves.
        """
        self._filtered_cache.clear()

    def rewiden_root(self, end: int) -> None:
        """Propagate a mutated root-region width into columnar columns.

        The live write path re-widens the corpus root's region when the
        corpus grows or shrinks; object streams read the (shared)
        ``LabeledElement`` and see the change for free, but a built
        columnar index holds the root's ``end`` as a raw integer and
        must be patched in place.  A not-yet-built columnar index needs
        nothing — it will read the patched region when first built.
        """
        if self._columnar is not None:
            self._columnar.rewiden_root(self._labeled.document.root.tag, end)
        self.clear_memo()

    def _memo_get(self, key):
        cached = self._filtered_cache.get(key)
        if cached is not None:
            self._filtered_cache.move_to_end(key)
        return cached

    def _memo_put(self, key, value) -> None:
        self._filtered_cache[key] = value
        if len(self._filtered_cache) > self.FILTER_CACHE_SIZE:
            self._filtered_cache.popitem(last=False)
