"""Packed, array-backed completion tries for zero-copy snapshots.

The pickled list-node :class:`~repro.index.trie.Trie` deserializes fast,
but it still *materializes* — every node becomes heap objects at load
time, which is exactly what the mmap snapshot path must avoid.  A
:class:`PackedTrie` is the same weighted top-k dictionary flattened into
four flat buffers that can live directly inside a mapped snapshot:

``keys``
    the UTF-8 bytes of every key, concatenated in lexicographic order;
``offsets``
    ``n + 1`` int64 byte offsets into ``keys`` (key *i* is
    ``keys[offsets[i]:offsets[i+1]]``);
``weights``
    ``n`` int64 key weights;
``rmq``
    a sparse table of range-maximum argmax positions over ``weights``
    (levels ``j >= 1`` concatenated; level 0 — single positions — is
    implicit), precomputed at *save* time so load does no work at all.

Because UTF-8 compares bytewise exactly like code points, the sorted key
blob supports prefix lookup by binary search, and a prefix's matches are
one contiguous index range ``[lo, hi)``.  :meth:`PackedTrie.complete`
then runs a best-first search over *segments* of that range: a max-heap
entry carries a segment and its argmax (found in O(1) via the sparse
table); popping it emits the argmax key and splits the segment in two.
Ordering is ``(-weight, index)`` and index order is lexicographic order,
so the output is element-for-element identical to ``Trie.complete`` —
top-k by descending weight, ties broken alphabetically.

All four buffers may be ``array('q')`` / ``bytes`` (heap-backed loads)
or ``memoryview`` slices of an mmap (zero-copy loads); the structure
never writes to them.
"""

from __future__ import annotations

import heapq
import itertools
from array import array
from collections.abc import Iterable, Iterator

_TYPECODE = "q"


def rmq_table_length(n: int) -> int:
    """Number of int64 entries in the sparse table for ``n`` weights."""
    total = 0
    j = 1
    while (1 << j) <= n:
        total += n - (1 << j) + 1
        j += 1
    return total


def build_rmq(weights) -> array:
    """Sparse argmax table over ``weights`` (levels ``j >= 1``, concatenated).

    Entry ``i`` of level ``j`` is the index of the maximum weight in
    ``weights[i : i + 2**j]``, leftmost on ties.
    """
    n = len(weights)
    table = array(_TYPECODE)
    previous = list(range(n))
    j = 1
    while (1 << j) <= n:
        half = 1 << (j - 1)
        count = n - (1 << j) + 1
        current = [0] * count
        for i in range(count):
            a = previous[i]
            b = previous[i + half]
            current[i] = a if weights[a] >= weights[b] else b
        table.extend(current)
        previous = current
        j += 1
    return table


def pack_items(
    items: Iterable[tuple[str, int]],
) -> tuple[bytes, array, array, array]:
    """Flatten lexicographically ordered ``(key, weight)`` pairs.

    Returns ``(keys_blob, offsets, weights, rmq)`` — the four buffers a
    :class:`PackedTrie` is built from.  Keys must be strictly increasing
    (the order :meth:`Trie.items` yields).
    """
    blob = bytearray()
    offsets = array(_TYPECODE, [0])
    weights = array(_TYPECODE)
    previous: bytes | None = None
    for key, weight in items:
        encoded = key.encode("utf-8")
        if previous is not None and encoded <= previous:
            raise ValueError(
                f"trie keys are not strictly increasing at {key!r}"
            )
        previous = encoded
        blob += encoded
        offsets.append(len(blob))
        weights.append(weight)
    return bytes(blob), offsets, weights, build_rmq(weights)


class PackedTrie:
    """Read-only weighted dictionary over packed (possibly mapped) buffers.

    API-compatible with the query surface of
    :class:`~repro.index.trie.Trie` (``complete`` / ``iter_prefix`` /
    ``items`` / ``weight`` / ``in`` / ``len``) — everything except
    ``add``, which loaded completion indexes never call.
    """

    __slots__ = ("_keys", "_offsets", "_weights", "_rmq", "_n", "_level_starts")

    def __init__(self, keys, offsets, weights, rmq) -> None:
        self._keys = keys
        self._offsets = offsets
        self._weights = weights
        self._rmq = rmq
        self._n = len(weights)
        starts = [0]
        j = 1
        while (1 << j) <= self._n:
            starts.append(starts[-1] + self._n - (1 << j) + 1)
            j += 1
        #: Start of level ``j`` (1-based) at ``_level_starts[j - 1]``.
        self._level_starts = starts

    @classmethod
    def from_trie(cls, trie) -> PackedTrie:
        """Pack any object with a lexicographic ``items()`` iterator."""
        return cls(*pack_items(trie.items()))

    # ------------------------------------------------------------------
    # Key access
    # ------------------------------------------------------------------

    def _key_bytes(self, index: int) -> bytes:
        chunk = self._keys[self._offsets[index] : self._offsets[index + 1]]
        return chunk.tobytes() if isinstance(chunk, memoryview) else chunk

    def _key_str(self, index: int) -> str:
        return self._key_bytes(index).decode("utf-8")

    def __len__(self) -> int:
        return self._n

    def weight(self, key: str) -> int:
        encoded = key.encode("utf-8")
        index = self._bisect_left(encoded)
        if index < self._n and self._key_bytes(index) == encoded:
            return self._weights[index]
        return 0

    def __contains__(self, key: str) -> bool:
        return self.weight(key) > 0

    # ------------------------------------------------------------------
    # Range machinery
    # ------------------------------------------------------------------

    def _bisect_left(self, encoded: bytes) -> int:
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._key_bytes(mid) < encoded:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _range(self, prefix: str) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of keys starting with ``prefix``."""
        encoded = prefix.encode("utf-8")
        lo = self._bisect_left(encoded)
        width = len(encoded)
        a, hi = lo, self._n
        while a < hi:
            mid = (a + hi) // 2
            if self._key_bytes(mid)[:width] <= encoded:
                a = mid + 1
            else:
                hi = mid
        return lo, hi

    def _argmax(self, lo: int, hi: int) -> int:
        """Index of the max weight in ``[lo, hi)`` (leftmost on ties)."""
        span = hi - lo
        if span == 1:
            return lo
        level = span.bit_length() - 1
        start = self._level_starts[level - 1]
        a = self._rmq[start + lo]
        b = self._rmq[start + hi - (1 << level)]
        return a if self._weights[a] >= self._weights[b] else b

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def complete(self, prefix: str, k: int = 10) -> list[tuple[str, int]]:
        """Top-``k`` keys with ``prefix`` by ``(-weight, key)`` — exactly
        :meth:`Trie.complete`'s contract."""
        if k <= 0:
            return []
        lo, hi = self._range(prefix)
        if lo >= hi:
            return []
        weights = self._weights
        counter = itertools.count()
        results: list[tuple[str, int]] = []
        # Heap entries: (-weight, index, tiebreak, lo, hi).  A segment
        # entry (lo < hi) is keyed by its argmax; popping it emits a key
        # entry (lo == hi == -1) for that argmax and the two sub-segments
        # around it.  A popped key entry is final: every remaining entry
        # keys >= it under (-weight, index), and index order is key order.
        heap: list[tuple[int, int, int, int, int]] = []

        def push_segment(a: int, b: int) -> None:
            if a < b:
                best = self._argmax(a, b)
                heapq.heappush(
                    heap, (-weights[best], best, next(counter), a, b)
                )

        push_segment(lo, hi)
        while heap and len(results) < k:
            negative_weight, index, _, a, b = heapq.heappop(heap)
            if a < 0:
                results.append((self._key_str(index), -negative_weight))
                continue
            heapq.heappush(
                heap, (negative_weight, index, next(counter), -1, -1)
            )
            push_segment(a, index)
            push_segment(index + 1, b)
        return results

    def iter_prefix(self, prefix: str) -> Iterator[tuple[str, int]]:
        """All keys with ``prefix`` (lexicographic order), with weights."""
        lo, hi = self._range(prefix)
        for index in range(lo, hi):
            yield self._key_str(index), self._weights[index]

    def items(self) -> Iterator[tuple[str, int]]:
        """All keys with weights, lexicographic order."""
        return self.iter_prefix("")

    def __repr__(self) -> str:
        return f"PackedTrie(keys={self._n})"
