"""E1 (Table): index construction time and index sizes vs document size.

Regenerates the feasibility table in EXPERIMENTS.md: for each corpus size,
the wall-clock cost of each build stage (parse, label, term index,
completion index) and the resulting structure sizes.  The expected shape:
every stage scales roughly linearly with element count.
"""

from __future__ import annotations

import time

from repro.bench.harness import print_table
from repro.datasets import generate_dblp_xml
from repro.index.completion_index import CompletionIndex
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string

from conftest import DBLP_SIZES, shape_check


def _build_stages(xml_text: str) -> dict[str, float]:
    timings: dict[str, float] = {}
    started = time.perf_counter()
    document = parse_string(xml_text)
    timings["parse_s"] = time.perf_counter() - started

    started = time.perf_counter()
    labeled = label_document(document)
    timings["label_s"] = time.perf_counter() - started

    started = time.perf_counter()
    term_index = TermIndex(labeled)
    timings["terms_s"] = time.perf_counter() - started

    started = time.perf_counter()
    CompletionIndex(labeled, term_index)
    timings["completion_s"] = time.perf_counter() - started

    timings["elements"] = len(labeled)
    timings["paths"] = len(labeled.guide)
    timings["terms"] = sum(1 for _ in term_index.vocabulary())
    return timings


def test_e1_index_construction_table(benchmark, capsys):
    """Full build timed per stage across corpus sizes."""
    xml_by_size = {
        size: generate_dblp_xml(publications=size, seed=42) for size in DBLP_SIZES
    }

    rows = []
    for size in DBLP_SIZES:
        stages = _build_stages(xml_by_size[size])
        total = sum(
            stages[key] for key in ("parse_s", "label_s", "terms_s", "completion_s")
        )
        rows.append(
            [
                size,
                stages["elements"],
                stages["parse_s"],
                stages["label_s"],
                stages["terms_s"],
                stages["completion_s"],
                total,
                stages["paths"],
                stages["terms"],
            ]
        )

    # pytest-benchmark timing on the mid-size corpus.
    benchmark(_build_stages, xml_by_size[DBLP_SIZES[1]])

    with capsys.disabled():
        print_table(
            [
                "publications",
                "elements",
                "parse_s",
                "label_s",
                "terms_s",
                "completion_s",
                "total_s",
                "distinct_paths",
                "distinct_terms",
            ],
            rows,
            title="\nE1: index construction vs corpus size (DBLP-like)",
        )

    # Shape check: build time grows roughly linearly, not quadratically.
    small_total, large_total = rows[0][6], rows[-1][6]
    size_ratio = rows[-1][1] / rows[0][1]
    shape_check(large_total / max(small_total, 1e-9) < size_ratio * 4)
