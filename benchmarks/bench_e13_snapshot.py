"""E13: snapshot persistence — cold build vs warm start.

A server start from XML pays parse + label + term index + completion
index on every boot; a start from a snapshot pays a checksum pass over
the file and then inflates sections lazily as queries touch them.  This
experiment records, per corpus: the cold-build time, the snapshot save
time and file size, the (lazy) snapshot load time, the first query after
a lazy load (which inflates the sections it needs), and a fully eager
load.  The headline number is ``cold_s / load_s`` — the warm-start
speedup — which must be at least 10x on the generated corpora.
"""

from __future__ import annotations

import time

from repro.bench.harness import print_table
from repro.datasets import generate_dblp, generate_treebank
from repro.engine.database import LotusXDatabase
from repro.engine.store import load_snapshot, save_snapshot
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize

from conftest import DBLP_SIZES, shape_check

#: (corpus name, document factory, probe query) — the probe runs once
#: after a lazy load to price the deferred inflation a first request pays.
def _corpora():
    yield (
        f"dblp-{DBLP_SIZES[-1]}",
        generate_dblp(publications=DBLP_SIZES[-1], seed=42),
        '//article[./title]/author',
    )
    yield (
        f"treebank-{DBLP_SIZES[-2]}",
        generate_treebank(sentences=DBLP_SIZES[-2], seed=17),
        "//S//NP/NN",
    )


def test_e13_snapshot_vs_cold_build(tmp_path, benchmark, capsys):
    rows = []
    speedups = []
    for name, document, probe in _corpora():
        xml_text = serialize(document)

        started = time.perf_counter()
        cold_db = LotusXDatabase(parse_string(xml_text))
        cold_s = time.perf_counter() - started

        path = tmp_path / f"{name}.lxsnap"
        started = time.perf_counter()
        info = save_snapshot(cold_db, path)
        save_s = time.perf_counter() - started

        started = time.perf_counter()
        lazy_db = load_snapshot(path)
        load_s = time.perf_counter() - started

        started = time.perf_counter()
        lazy_matches = lazy_db.matches(probe)
        first_query_s = time.perf_counter() - started

        started = time.perf_counter()
        eager_db = load_snapshot(path, eager=True)
        eager_s = time.perf_counter() - started

        # Correctness at every scale: the loaded database answers exactly
        # like the one that was saved.
        assert len(lazy_matches) == len(cold_db.matches(probe))
        assert len(eager_db.labeled) == len(cold_db.labeled)

        speedup = cold_s / max(load_s, 1e-9)
        speedups.append(speedup)
        rows.append(
            [
                name,
                info.element_count,
                round(info.size_bytes / 1e6, 2),
                round(cold_s * 1000, 1),
                round(save_s * 1000, 1),
                round(load_s * 1000, 2),
                round(first_query_s * 1000, 1),
                round(eager_s * 1000, 1),
                round(speedup, 1),
            ]
        )

    # pytest-benchmark timing: the lazy load path on the DBLP snapshot.
    dblp_path = tmp_path / f"dblp-{DBLP_SIZES[-1]}.lxsnap"
    benchmark(load_snapshot, dblp_path)

    with capsys.disabled():
        print_table(
            [
                "corpus",
                "elements",
                "snapshot_mb",
                "cold_ms",
                "save_ms",
                "load_ms",
                "first_query_ms",
                "eager_ms",
                "speedup",
            ],
            rows,
            title="\nE13: cold build vs snapshot warm start",
        )

    # The acceptance bar: loading a snapshot (integrity-verified, query
    # ready via lazy inflation) is at least 10x faster than a cold build.
    shape_check(
        min(speedups) >= 10.0,
        f"snapshot load speedups {speedups} fell below 10x",
    )
