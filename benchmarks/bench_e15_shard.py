"""E15 (Table): sharded scatter-gather vs monolithic evaluation.

Gates the sharded corpus subsystem: a 4-shard fleet with process-pool
scatter-gather must (a) return exactly the monolithic answers on every
workload query and (b) deliver a >= 2x median speedup on the E4-class
XMark workload when 4+ cores are available (the gate is skipped on
smaller machines — scatter over forked workers cannot beat one core
with one core).  A second table measures shard-pruned routing on a
heterogeneous corpus: queries whose tags/terms live on one shard must
dispatch to that shard alone, and the routing counters must show it.

Results are persisted via ``record_bench`` (``BENCH_e15_shard.json``)
for the nightly artifact upload; the pruning table rides along in the
payload's ``meta``.
"""

from __future__ import annotations

import os
import statistics

from repro.bench.harness import print_table, record_bench, time_call
from repro.bench.workloads import XMARK_QUERIES
from repro.datasets import (
    generate_books,
    generate_dblp,
    generate_treebank,
    generate_xmark,
)
from repro.engine.database import LotusXDatabase
from repro.shard.database import ShardedDatabase
from repro.shard.executor import _fork_available
from repro.twig.algorithms.common import AlgorithmStats
from repro.xmlio.tree import Document, Element

from conftest import SMOKE, XMARK_SIZES, shape_check

SHARDS = 4


def _canonical(matches):
    return [
        sorted(
            (nid, el.region.start) for nid, el in match.assignments.items()
        )
        for match in matches
    ]


def _xmark_collection(items: int) -> Document:
    """Four equal XMark sections under one root: one unit per shard."""
    root = Element("collection")
    for index in range(SHARDS):
        root.append(generate_xmark(items=items, seed=7 + index).root)
    return Document(root)


def _mixed_collection() -> Document:
    """Heterogeneous sections so tag/term summaries separate shards."""
    scale = 10 if SMOKE else 120
    root = Element("collection")
    root.append(generate_dblp(publications=scale, seed=1).root)
    root.append(generate_xmark(items=max(4, scale // 6), seed=2).root)
    root.append(generate_books(books=scale, seed=3).root)
    root.append(generate_treebank(scale, 4).root)
    return Document(root)


def test_e15_scatter_gather_speedup(capsys):
    items = XMARK_SIZES[-1]
    executor_mode = "process" if _fork_available() else "thread"
    fleet = ShardedDatabase.from_document(
        _xmark_collection(items), SHARDS, executor_mode=executor_mode
    )
    mono = LotusXDatabase(_xmark_collection(items))

    rows = []
    ratios = []
    for query in XMARK_QUERIES:
        # Correctness before timing: shard-merged answers must be the
        # monolithic answers, element for element.
        assert _canonical(fleet.matches(query.text)) == _canonical(
            mono.matches(query.text)
        ), query.name

        # A stats argument bypasses both result caches, so each timed
        # run is a real evaluation (plan caches and pools stay warm).
        def run_mono():
            mono.matches(query.text, stats=AlgorithmStats())

        def run_fleet():
            fleet.matches(query.text, stats=AlgorithmStats())

        run_mono()
        run_fleet()
        dispatch_stats = AlgorithmStats()
        match_count = len(
            fleet.matches(query.text, stats=dispatch_stats)
        )
        mono_seconds = time_call(run_mono)
        fleet_seconds = time_call(run_fleet)
        ratio = mono_seconds / fleet_seconds if fleet_seconds else float("inf")
        ratios.append(ratio)
        rows.append(
            [
                query.name,
                query.query_class,
                match_count,
                dispatch_stats.notes.get("shards_dispatched", SHARDS),
                mono_seconds * 1000,
                fleet_seconds * 1000,
                ratio,
            ]
        )
    fleet.close()

    headers = [
        "query",
        "class",
        "matches",
        "dispatched",
        "mono_ms",
        "fleet_ms",
        "speedup",
    ]
    with capsys.disabled():
        print_table(
            headers,
            rows,
            title="\nE15: 4-shard scatter-gather vs monolithic"
            f" (XMark items={items} x{SHARDS}, executor={executor_mode})",
        )

    pruning_meta = _pruning_table(capsys)
    record_bench(
        "e15_shard",
        headers,
        rows,
        meta={
            "items": items,
            "shards": SHARDS,
            "executor_mode": executor_mode,
            "cpu_count": os.cpu_count(),
            "repeats": 3,
            "median_speedup": statistics.median(ratios),
            "pruning": pruning_meta,
        },
    )

    # The tentpole gate: >= 2x median speedup — only meaningful where
    # the scatter actually has cores to spread over.
    if (os.cpu_count() or 1) >= 4 and executor_mode == "process":
        median_ratio = statistics.median(ratios)
        shape_check(
            median_ratio >= 2.0,
            f"scatter-gather median speedup {median_ratio:.2f}x < 2x",
        )


def _pruning_table(capsys) -> dict:
    """Shard-pruned routing on a heterogeneous 4-shard corpus."""
    fleet = ShardedDatabase.from_document(
        _mixed_collection(), SHARDS, executor_mode="serial"
    )
    queries = [
        ("dblp-only", "//article/author"),
        ("xmark-only", "//item/name"),
        ("books-only", "//book/title"),
        ("treebank-only", "//sentence"),
        ("everywhere", "//*"),
    ]
    rows = []
    for name, query in queries:
        stats = AlgorithmStats()
        matches = fleet.matches(query, stats=stats)
        dispatched = stats.notes.get("shards_dispatched", SHARDS)
        rows.append([name, query, len(matches), dispatched, SHARDS - dispatched])

    router_stats = fleet.router.statistics()
    fleet.close()

    total_pruned = sum(row[4] for row in rows)
    hit_rate = total_pruned / (len(queries) * SHARDS)
    headers = ["workload", "query", "matches", "dispatched", "pruned"]
    with capsys.disabled():
        print_table(
            headers,
            rows,
            title="\nE15: shard-pruned routing (heterogeneous corpus,"
            f" pruning hit rate {hit_rate:.0%})",
        )

    # Correctness-grade claims (hold at every scale): single-section
    # queries must skip shards, and the router must count it.
    assert router_stats["pruned_queries"] > 0
    assert any(row[3] < SHARDS for row in rows)
    assert next(row for row in rows if row[0] == "dblp-only")[3] == 1
    return {
        "headers": headers,
        "rows": rows,
        "hit_rate": hit_rate,
        "router": router_stats,
    }
