"""Shared fixtures for the experiment benchmarks.

Corpora are built once per session.  Sizes are chosen so the whole bench
suite runs in a few minutes on a laptop while still showing the asymptotic
shapes (see EXPERIMENTS.md).

Setting ``LOTUSX_BENCH_SMOKE=1`` shrinks every corpus to a toy size so the
whole suite runs in seconds — used by the slow-marked smoke tests that keep
the benchmarks importable and runnable.  Scale-sensitive expectations go
through :func:`shape_check`, which no-ops in smoke mode (asymptotic shapes
are meaningless on toy corpora); plain ``assert`` stays reserved for
correctness claims that must hold at every scale.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import generate_dblp, generate_xmark
from repro.engine.database import LotusXDatabase

#: Toy-scale mode for benchmark smoke tests.
SMOKE = os.environ.get("LOTUSX_BENCH_SMOKE") == "1"

#: Publication counts for DBLP-like scaling experiments.
DBLP_SIZES = (20, 40) if SMOKE else (200, 500, 1000, 2000)

#: Item counts for XMark-like scaling experiments.
XMARK_SIZES = (6, 10) if SMOKE else (50, 100, 200)


def shape_check(condition: bool, message: str = "") -> None:
    """Assert a scale- or timing-sensitive expectation.

    Skipped entirely under ``LOTUSX_BENCH_SMOKE=1``: toy corpora neither
    amortize constant factors nor separate asymptotic regimes, so shape
    assertions would only produce noise failures there.
    """
    if SMOKE:
        return
    assert condition, message


@pytest.fixture(scope="session")
def dblp_dbs() -> dict[int, LotusXDatabase]:
    return {
        size: LotusXDatabase(generate_dblp(publications=size, seed=42))
        for size in DBLP_SIZES
    }


@pytest.fixture(scope="session")
def xmark_dbs() -> dict[int, LotusXDatabase]:
    return {
        size: LotusXDatabase(generate_xmark(items=size, seed=7))
        for size in XMARK_SIZES
    }


@pytest.fixture(scope="session")
def dblp_db(dblp_dbs) -> LotusXDatabase:
    return dblp_dbs[DBLP_SIZES[-2]]


@pytest.fixture(scope="session")
def xmark_db(xmark_dbs) -> LotusXDatabase:
    return xmark_dbs[XMARK_SIZES[-2]]
