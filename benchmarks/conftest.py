"""Shared fixtures for the experiment benchmarks.

Corpora are built once per session.  Sizes are chosen so the whole bench
suite runs in a few minutes on a laptop while still showing the asymptotic
shapes (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp, generate_xmark
from repro.engine.database import LotusXDatabase

#: Publication counts for DBLP-like scaling experiments.
DBLP_SIZES = (200, 500, 1000, 2000)

#: Item counts for XMark-like scaling experiments.
XMARK_SIZES = (50, 100, 200)


@pytest.fixture(scope="session")
def dblp_dbs() -> dict[int, LotusXDatabase]:
    return {
        size: LotusXDatabase(generate_dblp(publications=size, seed=42))
        for size in DBLP_SIZES
    }


@pytest.fixture(scope="session")
def xmark_dbs() -> dict[int, LotusXDatabase]:
    return {
        size: LotusXDatabase(generate_xmark(items=size, seed=7))
        for size in XMARK_SIZES
    }


@pytest.fixture(scope="session")
def dblp_db(dblp_dbs) -> LotusXDatabase:
    return dblp_dbs[1000]


@pytest.fixture(scope="session")
def xmark_db(xmark_dbs) -> LotusXDatabase:
    return xmark_dbs[100]
