"""E19: zero-copy snapshots — mmap warm start vs the v2 inflate path.

A v2 warm start zlib-inflates and unpickles every section into heap
objects before the server can take traffic; a v3 ``mmap`` warm start
verifies the header, maps the file, and serves the hot sections (label
columns, term postings, packed completion tries) as ``memoryview``
slices of the mapping — O(header) work, no byte copies, and co-hosted
processes share one set of physical pages.

This experiment records, per corpus:

* the v2 warm start (load + full inflate, what serving did before),
* the v3 copying warm start (load + full inflate of the raw layout),
* the v3 mmap warm start (map + hot sections only) and its speedup over
  v2 — gated at ≥5x,
* per-replica process RSS: a fresh subprocess per mode loads the
  snapshot, warms, runs probe queries, and reports its private
  (``RssAnon``) and shared mapped (``RssFile``) resident memory — the
  private number is what a fleet operator multiplies by replica count;
  the mapped pages exist once regardless of fleet size.

Correctness at every scale: all three loads answer the probe queries
identically.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time

from repro.bench.harness import print_table, record_bench
from repro.datasets import generate_dblp, generate_treebank
from repro.engine.database import LotusXDatabase
from repro.engine.store import is_mmap_backed, load_snapshot, save_snapshot

from conftest import DBLP_SIZES, shape_check

_CHILD_SCRIPT = """
import json, sys, time
from repro.engine.store import load_snapshot

def rss():
    fields = {}
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith(("VmRSS:", "RssAnon:", "RssFile:")):
                fields[line.split(":")[0]] = int(line.split()[1])
    return fields

path, mode, probes = sys.argv[1], sys.argv[2], json.loads(sys.argv[3])
started = time.perf_counter()
if mode == "mmap":
    db = load_snapshot(path, mmap="require").warm_hot()
else:
    db = load_snapshot(path).warm()
warm_s = time.perf_counter() - started
for probe in probes:
    assert db.matches(probe), probe
fields = rss()
print(json.dumps({
    # RssAnon is the replica's private heap — the number that multiplies
    # across co-hosted replicas.  RssFile counts mapped snapshot pages,
    # which the fleet shares (one physical copy, any replica count).
    "anon_kb": fields["RssAnon"],
    "file_kb": fields["RssFile"],
    "total_kb": fields["VmRSS"],
    "warm_s": warm_s,
}))
"""


def _replica_rss(path, mode: str, probes: list[str]) -> dict:
    """Load ``path`` in a fresh serving process and report its RSS (KiB)."""
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(path), mode, json.dumps(probes)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def _best_of(fn, repeats: int = 3):
    """Best-of-N wall time for ``fn`` plus its last result.

    Warm starts are measured steady-state: the first call pays one-time
    interpreter costs (module imports, allocator growth) that are not
    part of the format's story, so the minimum is the honest number.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _corpora():
    yield (
        f"dblp-{DBLP_SIZES[-1]}",
        generate_dblp(publications=DBLP_SIZES[-1], seed=42),
        ["//article[./title]/author", "//inproceedings//author"],
    )
    yield (
        f"treebank-{DBLP_SIZES[-2]}",
        generate_treebank(sentences=DBLP_SIZES[-2], seed=17),
        ["//NP[./DT]/NN", "//VP//NP"],
    )


def test_e19_mmap_warm_start(tmp_path, benchmark, capsys):
    rows = []
    speedups = []
    for name, document, probes in _corpora():
        db = LotusXDatabase(document)
        oracle = {probe: db.matches(probe) for probe in probes}

        v2_path = tmp_path / f"{name}-v2.lxsnap"
        v3_path = tmp_path / f"{name}-v3.lxsnap"
        save_snapshot(db, v2_path, version=2)
        info = save_snapshot(db, v3_path)

        v2_s, v2_db = _best_of(lambda: load_snapshot(v2_path).warm())
        v3_copy_s, v3_copy_db = _best_of(lambda: load_snapshot(v3_path).warm())
        v3_mmap_s, v3_mmap_db = _best_of(
            lambda: load_snapshot(v3_path, mmap="require").warm_hot()
        )
        assert is_mmap_backed(v3_mmap_db)

        # Correctness at every scale: all paths answer identically.
        for probe, expected in oracle.items():
            assert v2_db.matches(probe) == expected, probe
            assert v3_copy_db.matches(probe) == expected, probe
            assert v3_mmap_db.matches(probe) == expected, probe

        # Per-replica RSS: what each co-hosted serving process costs.
        v2_replica = _replica_rss(v2_path, "inflate", probes)
        v3_replica = _replica_rss(v3_path, "mmap", probes)

        speedup = v2_s / max(v3_mmap_s, 1e-9)
        speedups.append(speedup)
        rows.append(
            [
                name,
                info.element_count,
                round(info.size_bytes / 1e6, 2),
                round(v2_s * 1000, 1),
                round(v3_copy_s * 1000, 1),
                round(v3_mmap_s * 1000, 2),
                round(speedup, 1),
                v2_replica["anon_kb"],
                v3_replica["anon_kb"],
                v3_replica["file_kb"],
            ]
        )

    headers = [
        "corpus",
        "elements",
        "snapshot_mb",
        "v2_warm_ms",
        "v3_copy_warm_ms",
        "v3_mmap_warm_ms",
        "speedup",
        "v2_replica_anon_kb",
        "v3_replica_anon_kb",
        "v3_replica_shared_kb",
    ]
    # pytest-benchmark timing: the mmap warm-start path on DBLP.
    dblp_v3 = tmp_path / f"dblp-{DBLP_SIZES[-1]}-v3.lxsnap"
    benchmark(lambda: load_snapshot(dblp_v3, mmap="require").warm_hot())

    with capsys.disabled():
        print_table(
            headers, rows, title="\nE19: mmap warm start vs v2 inflate"
        )
    record_bench(
        "e19_mmap",
        headers,
        rows,
        meta={"gate": "v2_warm / v3_mmap_warm >= 5x"},
    )

    # The acceptance bar: a v3 mmap warm start beats the v2 inflate
    # warm start by at least 5x (it is O(header), not O(corpus)).
    shape_check(
        min(speedups) >= 5.0,
        f"mmap warm-start speedups {speedups} fell below 5x",
    )
    # Replica economics: a zero-copy replica must cost less private
    # (anonymous) memory than an inflating one on every measured corpus;
    # its mapped file pages are shared across the fleet.
    shape_check(
        all(row[-2] < row[-3] for row in rows),
        f"mmap replica private RSS not below v2 replica RSS: {rows}",
    )
