"""E12 (Table): twig cardinality-estimation accuracy (q-error).

The DataGuide-based estimator (`repro.twig.estimate`) predicts result
sizes without evaluation.  We measure q-error = max(est/true, true/est)
over structural and predicate workloads on DBLP-like and XMark-like
corpora.

Expected shape: structure-only twigs estimate near-exactly (fanout ratios
are exact; independence rarely bites on schema-shaped data), equality
predicates stay tight thanks to position-local populations, and
contains/range/negation predicates degrade gracefully — the classical
selectivity-estimation picture.
"""

from __future__ import annotations

import statistics

from repro.bench.harness import print_table, time_call
from repro.twig.estimate import estimate_cardinality, q_error

from conftest import shape_check

#: (corpus, class, query)
WORKLOAD = [
    ("dblp", "structural", "//article/author"),
    ("dblp", "structural", "//dblp//author"),
    ("dblp", "structural", "//inproceedings[./author][./booktitle]"),
    ("dblp", "structural", "//book/editor"),
    ("dblp", "equality", '//article[./journal="tods"]/title'),
    ("dblp", "equality", '//inproceedings[./booktitle="icde"]/author'),
    ("dblp", "contains", '//article[./title~"twig"]'),
    ("dblp", "contains", '//article[./title~"xml holistic"]/author'),
    ("dblp", "range", "//article[./year[.>=2005]]/title"),
    ("dblp", "negation", "//article[not(./pages)]"),
    ("xmark", "structural", "//item/name"),
    ("xmark", "structural", "//person[./address/city][./profile]"),
    ("xmark", "structural", "//open_auction[.//bidder/increase]//date"),
    ("xmark", "equality", '//item[./location="china"]/name'),
    ("xmark", "range", "//open_auction[./current[.>=250]]"),
]


def test_e12_estimation_accuracy(dblp_db, xmark_db, benchmark, capsys):
    rows = []
    errors_by_class: dict[str, list[float]] = {}
    for corpus, query_class, query in WORKLOAD:
        db = dblp_db if corpus == "dblp" else xmark_db
        pattern = db.parse_query(query)
        estimate = estimate_cardinality(pattern, db.guide, db.term_index)
        actual = len(db.matches(pattern))
        error = q_error(estimate, actual)
        errors_by_class.setdefault(query_class, []).append(error)
        rows.append(
            [corpus, query_class, query[:42], round(estimate, 1), actual, error]
        )

    pattern = dblp_db.parse_query("//inproceedings[./author][./booktitle]")
    benchmark(
        lambda: estimate_cardinality(pattern, dblp_db.guide, dblp_db.term_index)
    )

    summary = [
        [query_class, round(statistics.median(errors), 2), round(max(errors), 2)]
        for query_class, errors in sorted(errors_by_class.items())
    ]

    with capsys.disabled():
        print_table(
            ["corpus", "class", "query", "estimate", "actual", "q_error"],
            rows,
            title="\nE12: cardinality estimation accuracy",
        )
        print_table(
            ["class", "median_q_error", "max_q_error"],
            summary,
            title="per-class summary",
        )

    # Shape checks.
    structural = errors_by_class["structural"]
    shape_check(statistics.median(structural) < 1.2)
    shape_check(statistics.median(errors_by_class["equality"]) < 2.0)
    # Everything stays within two orders of magnitude — usable for
    # planning even on the hard classes.
    shape_check(max(max(errors) for errors in errors_by_class.values()) < 100)

    # Estimation is orders of magnitude cheaper than evaluation.
    estimate_time = time_call(
        lambda: estimate_cardinality(pattern, dblp_db.guide, dblp_db.term_index)
    )
    evaluate_time = time_call(
        lambda: dblp_db.matches(pattern, stats=None, prune_streams=False)
    )
    with capsys.disabled():
        print(
            f"\nestimate {estimate_time*1000:.3f} ms vs first evaluation"
            f" ~{evaluate_time*1000:.3f} ms (cached thereafter)"
        )