"""E16 (Table): tail latency with and without hedged requests.

Gates the replica fleet: with one replica of a shard made artificially
slow (an injected latency fault at its ``fleet.replica.<shard>.<replica>``
site), the round-robin rotation routes roughly half of that shard's
sub-requests to the slow replica.  Without hedging those requests wait
out the full injected delay; with a fixed hedge trigger the healthy peer
is fired after ``hedge_ms`` and its answer wins.  The table records the
per-query latency distribution (p50/p95/p99/max) for both modes; the
gate is that hedging cuts p99 well below the unhedged p99.

Correctness rides along: both modes must return exactly the monolithic
answers — the slow replica is slow, never wrong, and hedging must not
change results.  Results are persisted via ``record_bench``
(``BENCH_e16_fleet.json``) for the nightly artifact upload.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.bench.harness import print_table, record_bench
from repro.datasets import generate_dblp
from repro.engine.database import LotusXDatabase
from repro.fleet import FleetConfig
from repro.resilience import faults
from repro.resilience.retry import RetryPolicy
from repro.shard.database import ShardedDatabase
from repro.twig.algorithms.common import AlgorithmStats

from conftest import SMOKE, shape_check

SHARDS = 3
REPLICAS = 2
QUERY = "//article/author"

#: Injected one-replica slowness and the hedge trigger used against it.
SLOW_S = 0.03 if SMOKE else 0.08
HEDGE_MS = 5.0 if SMOKE else 10.0
TRIALS = 10 if SMOKE else 50


def _canonical(matches):
    return [
        sorted(
            (nid, el.region.start) for nid, el in match.assignments.items()
        )
        for match in matches
    ]


def _corpus():
    scale = 30 if SMOKE else 300
    return generate_dblp(publications=scale, seed=16)


def _fleet_db(hedge_ms: float) -> ShardedDatabase:
    return ShardedDatabase.from_document(
        _corpus(),
        SHARDS,
        executor_mode="serial",
        replicas=REPLICAS,
        fleet_config=FleetConfig(
            replicas=REPLICAS,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0),
            hedge_ms=hedge_ms,
        ),
    )


def _latencies(db: ShardedDatabase, trials: int) -> list[float]:
    # A stats argument bypasses the result caches, so every timed call is
    # a real scatter over the fleet.
    samples = []
    for _ in range(trials):
        started = time.perf_counter()
        db.matches(QUERY, stats=AlgorithmStats())
        samples.append(time.perf_counter() - started)
    return samples


def _row(mode: str, samples: list[float]) -> list:
    ordered = sorted(samples)

    def pct(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))] * 1000

    return [
        mode,
        len(samples),
        statistics.median(samples) * 1000,
        pct(0.95),
        pct(0.99),
        ordered[-1] * 1000,
    ]


def test_e16_hedging_cuts_tail_latency(capsys):
    oracle = _canonical(LotusXDatabase(_corpus()).matches(QUERY))
    faults.install_spec(f"fleet.replica.0.0:latency={SLOW_S}")
    try:
        rows = []
        tails = {}
        counters = {}
        for mode, hedge_ms in (("unhedged", 0.0), ("hedged", HEDGE_MS)):
            db = _fleet_db(hedge_ms)
            try:
                # Correctness before timing: a slow replica is slow,
                # never wrong — with or without hedging.
                assert (
                    _canonical(db.matches(QUERY, stats=AlgorithmStats()))
                    == oracle
                ), mode
                samples = _latencies(db, TRIALS)
                counters[mode] = dict(db.fleet.counters)
            finally:
                db.close()
            row = _row(mode, samples)
            rows.append(row)
            tails[mode] = row[4]

        headers = ["mode", "trials", "p50_ms", "p95_ms", "p99_ms", "max_ms"]
        with capsys.disabled():
            print_table(
                headers,
                rows,
                title="\nE16: fleet tail latency, one slow replica"
                f" (slow={SLOW_S * 1000:.0f}ms, hedge={HEDGE_MS:.0f}ms,"
                f" {SHARDS} shards x {REPLICAS} replicas)",
            )
        record_bench(
            "e16_fleet",
            headers,
            rows,
            meta={
                "query": QUERY,
                "shards": SHARDS,
                "replicas": REPLICAS,
                "slow_replica_s": SLOW_S,
                "hedge_ms": HEDGE_MS,
                "trials": TRIALS,
                "cpu_count": os.cpu_count(),
                "counters": counters,
            },
        )

        # The hedge actually fired and won races (holds at every scale:
        # the injected delay always exceeds the trigger).
        assert counters["hedged"]["hedged_requests"] > 0
        assert counters["hedged"]["hedge_wins"] > 0
        assert counters["unhedged"]["hedged_requests"] == 0

        # The tentpole gate: hedging must pull the tail in.
        shape_check(
            tails["hedged"] <= tails["unhedged"] * 0.6,
            f"hedged p99 {tails['hedged']:.1f}ms not well below"
            f" unhedged p99 {tails['unhedged']:.1f}ms",
        )
    finally:
        faults.clear()
