"""E18 (Table): event-driven serving — sustained RPS and tail latency.

Three serving claims about the async front end (`repro.server.aio`)
versus the legacy thread-per-request stdlib transport, both driving the
same request pipeline on the same corpus:

1. **Hot repeated-query RPS.**  The paper's headline workload — many
   users hammering the same autocomplete keystroke — is exactly where
   keep-alive plus single-flight coalescing pays: the async transport
   must sustain **>= 3x** the threaded baseline's requests/second
   (the acceptance gate; `shape_check`, real mode only).

2. **Ranked-search throughput.**  On a heavier hot `/api/search`
   workload the engine evaluation dominates and coalescing helps both
   transports equally, so the gap narrows — the async transport must
   still win outright, and its p99 must not exhibit the threaded
   server's thread-pile-up tail.

3. **Coalescing under a slow handler.**  With a standing injected
   latency on every evaluation (`server.request`), sustained identical
   traffic must collapse into few flights: followers (evaluations
   saved) must outnumber leaders.

The threaded baseline client opens a fresh connection per request —
that is how the legacy HTTP/1.0 transport actually behaves (it closes
after every response) and how browsers without keep-alive would reach
it.  Connection resets from its tiny stdlib accept backlog are retried
and counted: the retries are part of the baseline's real cost.

Results are persisted via ``record_bench`` (``BENCH_e18_async.json``)
for the nightly artifact upload.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

from repro.bench.harness import print_table, record_bench
from repro.resilience import faults
from repro.server.aio import make_async_server
from repro.server.app import make_server

from conftest import SMOKE, shape_check

CLIENTS = 4 if SMOKE else 16
HOT_COMPLETE_PER_CLIENT = 5 if SMOKE else 150
HOT_SEARCH_PER_CLIENT = 3 if SMOKE else 40
SLOW_PER_CLIENT = 3 if SMOKE else 25
RETRIES = 5

HEADERS = {"Content-Type": "application/json"}


def _servers(db):
    """Both transports serving ``db``, started on daemon threads."""
    aio = make_async_server(db)
    aio_thread = threading.Thread(target=aio.serve_forever, daemon=True)
    aio_thread.start()
    threaded = make_server(db)
    threaded_thread = threading.Thread(
        target=threaded.serve_forever, daemon=True
    )
    threaded_thread.start()
    return aio, aio_thread, threaded, threaded_thread


def _stop(aio, aio_thread, threaded, threaded_thread) -> None:
    aio.shutdown()
    aio_thread.join(timeout=10)
    aio.server_close()
    threaded.shutdown()
    threaded.server_close()
    threaded_thread.join(timeout=10)


def _request_once(conn, path: str, body: bytes) -> int:
    conn.request("POST", path, body, HEADERS)
    response = conn.getresponse()
    response.read()
    return response.status


def _drive(
    address,
    path: str,
    body: bytes,
    clients: int,
    per_client: int,
    keep_alive: bool,
):
    """Fire the workload; returns (rps, p50_ms, p99_ms, retries)."""
    host, port = address
    latencies: list[float] = []
    retry_count = [0]
    lock = threading.Lock()

    def worker() -> None:
        local: list[float] = []
        conn = (
            http.client.HTTPConnection(host, port, timeout=60)
            if keep_alive
            else None
        )
        for _ in range(per_client):
            started = time.perf_counter()
            for attempt in range(RETRIES):
                try:
                    if keep_alive:
                        status = _request_once(conn, path, body)
                    else:
                        fresh = http.client.HTTPConnection(
                            host, port, timeout=60
                        )
                        try:
                            status = _request_once(fresh, path, body)
                        finally:
                            fresh.close()
                    break
                except (ConnectionError, http.client.HTTPException):
                    with lock:
                        retry_count[0] += 1
                    if keep_alive:
                        conn.close()
                        conn = http.client.HTTPConnection(
                            host, port, timeout=60
                        )
                    if attempt == RETRIES - 1:
                        raise
            assert status == 200, status
            local.append(time.perf_counter() - started)
        if conn is not None:
            conn.close()
        with lock:
            latencies.extend(local)

    started = time.perf_counter()
    threads = [threading.Thread(target=worker) for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    total = clients * per_client
    assert len(latencies) == total
    latencies.sort()
    p50 = latencies[len(latencies) // 2] * 1000
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1000
    return total / wall, p50, p99, retry_count[0]


def _warmup(aio, threaded, path: str, body: bytes) -> None:
    _drive(aio.server_address, path, body, 2, 3, keep_alive=True)
    _drive(threaded.server_address[:2], path, body, 2, 3, keep_alive=False)


def test_e18_async_vs_threaded(dblp_db, capsys):
    aio, aio_thread, threaded, threaded_thread = _servers(dblp_db)
    rows = []
    meta = {}
    try:
        # ------------------------------------------------------ hot complete
        body = json.dumps({"prefix": "a", "k": 10}).encode()
        _warmup(aio, threaded, "/api/complete", body)
        a_rps, a_p50, a_p99, _ = _drive(
            aio.server_address, "/api/complete", body,
            CLIENTS, HOT_COMPLETE_PER_CLIENT, keep_alive=True,
        )
        t_rps, t_p50, t_p99, t_retries = _drive(
            threaded.server_address[:2], "/api/complete", body,
            CLIENTS, HOT_COMPLETE_PER_CLIENT, keep_alive=False,
        )
        rows.append(["hot_complete", "async", round(a_rps), a_p50, a_p99])
        rows.append(["hot_complete", "threaded", round(t_rps), t_p50, t_p99])
        meta["hot_complete_speedup"] = round(a_rps / t_rps, 2)
        meta["threaded_retries"] = t_retries
        # The acceptance gate: keep-alive + single-flight sustains >= 3x
        # the threaded baseline on the hot repeated-query workload.
        shape_check(
            a_rps >= 3.0 * t_rps,
            f"hot-query RPS {a_rps:.0f} vs {t_rps:.0f} (< 3x)",
        )
        shape_check(a_p99 <= t_p99, "async p99 should not exceed threaded")

        # ------------------------------------------------------- hot search
        body = json.dumps(
            {"query": "//article[./author]/title", "k": 10}
        ).encode()
        _warmup(aio, threaded, "/api/search", body)
        a_rps, a_p50, a_p99, _ = _drive(
            aio.server_address, "/api/search", body,
            CLIENTS, HOT_SEARCH_PER_CLIENT, keep_alive=True,
        )
        t_rps, t_p50, t_p99, _ = _drive(
            threaded.server_address[:2], "/api/search", body,
            CLIENTS, HOT_SEARCH_PER_CLIENT, keep_alive=False,
        )
        rows.append(["hot_search", "async", round(a_rps), a_p50, a_p99])
        rows.append(["hot_search", "threaded", round(t_rps), t_p50, t_p99])
        meta["hot_search_speedup"] = round(a_rps / t_rps, 2)
        shape_check(a_rps > t_rps, "async must win on ranked search too")

        # ------------------------------------------------ slow-handler drill
        flights_before = aio.pipeline.flights.snapshot()
        with faults.injected("server.request", latency_s=0.01):
            a_rps, a_p50, a_p99, _ = _drive(
                aio.server_address, "/api/search", body,
                CLIENTS, SLOW_PER_CLIENT, keep_alive=True,
            )
        snap = aio.pipeline.flights.snapshot()
        new_flights = snap["flights"] - flights_before["flights"]
        new_followers = snap["followers"] - flights_before["followers"]
        rows.append(["slow_handler", "async", round(a_rps), a_p50, a_p99])
        meta["slow_handler_flights"] = new_flights
        meta["slow_handler_followers"] = new_followers
        # Sustained identical traffic must collapse into few flights.
        shape_check(
            new_followers > new_flights,
            f"coalescing saved too little: {new_flights} flights,"
            f" {new_followers} followers",
        )
    finally:
        _stop(aio, aio_thread, threaded, threaded_thread)

    with capsys.disabled():
        print_table(
            ["workload", "transport", "rps", "p50_ms", "p99_ms"],
            rows,
            title="E18: event-driven serving vs threaded baseline",
        )
        print(f"  meta: {meta}")
    record_bench(
        "e18_async",
        ["workload", "transport", "rps", "p50_ms", "p99_ms"],
        rows,
        meta=meta,
    )
