"""Ablation: structural-join edge ordering — preorder vs selectivity-greedy.

The binary-join baseline grows partial matches edge by edge, so the edge
*order* decides how large the partials get before selective branches trim
them.  The greedy plan always joins the adjacent edge with the smallest
child stream first.

Expected shape: identical answers; on twigs whose selective branch comes
*after* a wide branch in preorder, the greedy plan keeps the running
partial count (intermediate results) strictly smaller, at equal or better
latency.
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.structural_join import structural_join_match
from repro.twig.match import sort_matches
from repro.twig.parse import parse_twig

from conftest import shape_check

#: Wide branch listed first, selective branch second — preorder's worst case.
QUERIES = [
    ("wide-then-rare", '//item[./description//text][./location="china"]'),
    ("bidders-then-rare", "//open_auction[.//bidder/date][./itemref]"),
    ("names-then-profile", "//person[./name][./profile/education]/emailaddress"),
    ("rare-first-control", '//item[./location="china"][./description//text]'),
]


def test_ablation_join_order(xmark_db, benchmark, capsys):
    rows = []
    for name, query in QUERIES:
        pattern = parse_twig(query)
        streams = build_streams(pattern, xmark_db.streams)

        preorder_stats = AlgorithmStats()
        preorder = sort_matches(
            structural_join_match(pattern, streams, preorder_stats)
        )
        greedy_stats = AlgorithmStats()
        greedy = sort_matches(
            structural_join_match(pattern, streams, greedy_stats, reorder=True)
        )
        assert preorder == greedy  # plan choice never changes answers

        preorder_time = time_call(
            lambda: structural_join_match(pattern, streams)
        )
        greedy_time = time_call(
            lambda: structural_join_match(pattern, streams, reorder=True)
        )
        rows.append(
            [
                name,
                len(preorder),
                preorder_stats.intermediate_results,
                greedy_stats.intermediate_results,
                preorder_time * 1000,
                greedy_time * 1000,
            ]
        )

    pattern = parse_twig(QUERIES[0][1])
    streams = build_streams(pattern, xmark_db.streams)
    benchmark(lambda: structural_join_match(pattern, streams, reorder=True))

    with capsys.disabled():
        print_table(
            [
                "query",
                "matches",
                "preorder_interm",
                "greedy_interm",
                "preorder_ms",
                "greedy_ms",
            ],
            rows,
            title="\nAblation: structural-join edge order (preorder vs greedy)",
        )

    # Shape checks: greedy never does more intermediate work, and wins
    # strictly on the wide-branch-first twigs.
    shape_check(all(row[3] <= row[2] for row in rows))
    adversarial = [row for row in rows if row[0] != "rare-first-control"]
    shape_check(any(row[3] < row[2] for row in adversarial))
