"""E17 (Table): live write path — ingest throughput and read latency.

Two claims about the WAL/delta-segment write path (`repro.write`):

1. **Incremental ingest beats rebuild-per-batch.**  Inserting documents
   one at a time into a writable database costs one small delta-segment
   build (plus the occasional compaction) per insert, while the naive
   alternative re-indexes the whole corpus after every mutation.  The
   table records both modes' wall-clock and documents/second on the same
   insert stream; the gate is a clear throughput win for the write path.

2. **Reads stay live while writing.**  With the background writer
   applying a steady insert stream, concurrent twig searches keep
   answering from the atomically swapped views.  The table records the
   read-latency distribution idle vs under write load, plus the write
   throughput sustained meanwhile.

Correctness rides along at every step: after ingest, the live database's
answers must be byte-identical to a cold rebuild of the same logical
document (the write path's core contract — see
``tests/test_write_cross_check.py``).  Results are persisted via
``record_bench`` (``BENCH_e17_write.json``) for the nightly artifact
upload.
"""

from __future__ import annotations

import random
import statistics
import threading
import time

from repro.bench.harness import print_table, record_bench
from repro.engine.database import LotusXDatabase
from repro.write.writer import open_writable_database
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize

from conftest import SMOKE, shape_check

BASE_DOCS = 10 if SMOKE else 150
INSERTS = 12 if SMOKE else 120
READ_TRIALS = 15 if SMOKE else 80
QUERY = "//article[./author]/title"

_WORDS = [
    "xml", "twig", "pattern", "matching", "keyword", "search", "index",
    "label", "region", "stream", "join", "holistic", "ranking",
]
_AUTHORS = ["jiaheng lu", "chunbin lin", "tok wang ling", "bogdan cautis"]


def _record_xml(rng: random.Random) -> str:
    title = " ".join(rng.choice(_WORDS) for _ in range(rng.randint(2, 5)))
    authors = "".join(
        f"<author>{rng.choice(_AUTHORS)}</author>"
        for _ in range(rng.randint(1, 3))
    )
    return (
        f"<article key='k{rng.randint(0, 99999)}'><title>{title}</title>"
        f"{authors}<year>{rng.randint(1999, 2012)}</year></article>"
    )


def _base_xml(rng: random.Random) -> str:
    return "<dblp>" + "".join(_record_xml(rng) for _ in range(BASE_DOCS)) + "</dblp>"


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))] * 1000


def test_e17_incremental_ingest_vs_rebuild(tmp_path, capsys):
    rng = random.Random(17)
    base_xml = _base_xml(rng)
    inserts = [_record_xml(rng) for _ in range(INSERTS)]

    # Mode A: the write path — one delta apply per insert.
    database = open_writable_database(
        LotusXDatabase.from_string(base_xml),
        tmp_path / "e17.lxwal",
        synchronous=True,
    )
    started = time.perf_counter()
    for xml in inserts:
        database.writer.insert_document(xml)
    incremental_s = time.perf_counter() - started
    writer_counters = dict(database.writer.counters)

    # Correctness gate: byte-identical to the cold rebuild.
    live = database.search(QUERY, k=10).as_dict()
    cold_db = LotusXDatabase(database.writer._corpus.checkpoint_document())
    cold = cold_db.search(QUERY, k=10).as_dict()
    live.pop("elapsed_seconds"), cold.pop("elapsed_seconds")
    assert live == cold
    database.close()

    # Mode B: re-index the whole corpus after every insert.
    document = parse_string(base_xml)
    started = time.perf_counter()
    for xml in inserts:
        document.root.children.append(parse_string(xml).root)
        rebuilt = LotusXDatabase(parse_string(serialize(document)))
        rebuilt.search(QUERY, k=10)  # the rebuilt index must actually serve
    rebuild_s = time.perf_counter() - started

    headers = ["mode", "base_docs", "inserts", "total_s", "docs_per_s"]
    rows = [
        ["incremental", BASE_DOCS, INSERTS, incremental_s, INSERTS / incremental_s],
        ["rebuild-each", BASE_DOCS, INSERTS, rebuild_s, INSERTS / rebuild_s],
    ]
    with capsys.disabled():
        print_table(
            headers,
            rows,
            title="\nE17a: ingest throughput, write path vs rebuild-per-insert",
        )
    record_bench(
        "e17_write",
        headers,
        rows,
        meta={
            "query": QUERY,
            "writer_counters": writer_counters,
            "speedup": rebuild_s / incremental_s,
        },
    )
    shape_check(
        incremental_s < rebuild_s,
        f"write path ({incremental_s:.2f}s) should beat rebuild-per-insert"
        f" ({rebuild_s:.2f}s)",
    )


def test_e17_read_latency_while_writing(tmp_path, capsys):
    rng = random.Random(1717)
    database = open_writable_database(
        LotusXDatabase.from_string(_base_xml(rng)),
        tmp_path / "e17rw.lxwal",
    )  # background writer: reads and applies overlap
    try:
        def read_samples(trials: int) -> list[float]:
            samples = []
            for _ in range(trials):
                started = time.perf_counter()
                response = database.search(QUERY, k=10)
                samples.append(time.perf_counter() - started)
                assert response.total_matches > 0
            return samples

        idle = read_samples(READ_TRIALS)

        stop = threading.Event()
        applied = [0]

        def write_load() -> None:
            while not stop.is_set():
                seqno = database.writer.insert_document(_record_xml(rng))
                database.writer.wait_for(seqno, timeout=30)
                applied[0] += 1

        load = threading.Thread(target=write_load, daemon=True)
        load_started = time.perf_counter()
        load.start()
        busy = read_samples(READ_TRIALS)
        stop.set()
        load.join(timeout=30)
        load_s = time.perf_counter() - load_started
        database.writer.flush(timeout=30)
        assert not database.writer.wedged
        assert applied[0] > 0, "the write load never applied a batch"

        headers = ["reads", "trials", "p50_ms", "p95_ms", "writes_per_s"]
        rows = [
            ["idle", READ_TRIALS, _percentile(idle, 0.5), _percentile(idle, 0.95), 0.0],
            [
                "under-write-load",
                READ_TRIALS,
                _percentile(busy, 0.5),
                _percentile(busy, 0.95),
                applied[0] / load_s,
            ],
        ]
        with capsys.disabled():
            print_table(
                headers,
                rows,
                title="\nE17b: read latency idle vs under live write load",
            )
        record_bench(
            "e17_write_reads",
            headers,
            rows,
            meta={
                "query": QUERY,
                "writes_applied": applied[0],
                "median_idle_ms": statistics.median(idle) * 1000,
                "median_busy_ms": statistics.median(busy) * 1000,
            },
        )
    finally:
        database.close()
