"""E20 (Table): multi-tenant serving — quota isolation under a noisy
neighbor.

The serving claim behind ``/api/t/<tenant>/``: per-tenant admission
slices turn one tenant's overload into *that tenant's* 429s, not every
tenant's latency.  The drill replays the same two recorded sessions in
two topologies and compares only what changed:

1. **Dedicated baseline.**  The quiet tenant (wide-flat corpus, mixed
   replayed session) on its own server, while the noisy tenant (skewed
   corpus, search-only session, driven far past budget by an open-loop
   replay) runs against a *separate* server constrained to the same
   1-slot budget its quota grants later.  Both workloads run — this
   process hosts servers and clients alike, so the baseline must carry
   the same background CPU load as the contended phase; a GIL-bound
   interpreter cannot isolate tenants from each other's raw compute,
   and that is not what admission slices claim.

2. **Shared server.**  Both tenants on one server; the noisy tenant is
   pinned to a 1-slot quota.  The only variable versus phase 1 is the
   *shared* admission gate, coalescer, and event loop.

Acceptance gates:

* the quiet tenant's shared-server p99 stays within **2x** its
  dedicated baseline (``shape_check``, real mode only — toy corpora
  don't amortize);
* every 429 body observed in the shared phase names the noisy tenant,
  and the quiet tenant is never shed in either phase (plain asserts —
  correctness at every scale);
* the noisy tenant actually sheds on the shared server
  (``shape_check``), proving the drill drove it past quota rather than
  under it.

Workloads come from the replay harness (`repro.bench.replay`) over the
stress-shape generators (`repro.bench.generators`); results are
persisted via ``record_bench`` (``BENCH_e20_tenant.json``) for the
nightly artifact upload.
"""

from __future__ import annotations

import sys
import threading

from repro.bench.generators import (
    generate_skewed_xml,
    generate_wide_flat_xml,
)
from repro.bench.harness import print_table, record_bench
from repro.bench.replay import (
    REPORT_HEADERS,
    HttpClient,
    replay,
    replay_many,
    synthesize_session,
)
from repro.engine.database import LotusXDatabase
from repro.server.aio import make_async_server
from repro.server.pipeline import ServerConfig
from repro.tenant.registry import TenantRegistry

from conftest import SMOKE, shape_check

#: Corpus scale.  The quiet tenant serves the wide-flat shape (cheap
#: queries, pacing honored); the noisy tenant serves the skewed shape
#: and overloads its quota by *rate*, not by per-query weight.
NOISY_RECORDS = 40 if SMOKE else 100
QUIET_RECORDS = 40 if SMOKE else 300

#: Session shape: the noisy tenant offers several times more work than
#: its 1-slot budget can serve; the quiet tenant idles along.
NOISY_EVENTS = 60 if SMOKE else 900
QUIET_EVENTS = 15 if SMOKE else 300
NOISY_QPS = 60.0 if SMOKE else 120.0
QUIET_QPS = 10.0 if SMOKE else 30.0
NOISY_CONCURRENCY = 10
QUIET_CONCURRENCY = 3

#: Shared-server limits: the noisy slice (quota=1, queue share 2)
#: saturates quickly while the fair-share quiet slice stays roomy.
CONFIG = ServerConfig(max_concurrency=8, max_queue=4)

#: The noisy tenant's dedicated baseline server mirrors the budget its
#: quota grants on the shared server — same 1 slot, same queue depth —
#: so both phases carry identical background engine load.
NOISY_SOLO_CONFIG = ServerConfig(max_concurrency=1, max_queue=2)


def _start(registry: TenantRegistry, config: ServerConfig):
    server = make_async_server(registry, config=config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread) -> None:
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()


def test_e20_tenant_isolation(capsys):
    # Servers and replay clients share this interpreter; the default 5ms
    # GIL switch interval lets an unlucky quiet request stall behind
    # several full quanta of noisy engine work, which widens the p99
    # tail in *both* phases and makes their ratio noisy.  A finer
    # interval tightens the tail symmetrically for the measurement.
    previous_switch = sys.getswitchinterval()
    sys.setswitchinterval(0.001)
    try:
        _run_isolation_drill(capsys)
    finally:
        sys.setswitchinterval(previous_switch)


def _run_isolation_drill(capsys):
    noisy_db = LotusXDatabase.from_string(
        generate_skewed_xml(records=NOISY_RECORDS, seed=11)
    )
    quiet_db = LotusXDatabase.from_string(
        generate_wide_flat_xml(records=QUIET_RECORDS, seed=12)
    )
    noisy_session = synthesize_session(
        noisy_db, seed=21, events=NOISY_EVENTS, mix={"search": 1.0}
    )
    quiet_session = synthesize_session(quiet_db, seed=22, events=QUIET_EVENTS)

    rows = []
    meta = {
        "noisy_quota": 1,
        "config": {"max_concurrency": 8, "max_queue": 4},
        "smoke": SMOKE,
    }
    plans = lambda noisy_client, quiet_client: [  # noqa: E731
        ("noisy", noisy_client, noisy_session, NOISY_QPS, NOISY_CONCURRENCY),
        ("quiet", quiet_client, quiet_session, QUIET_QPS, QUIET_CONCURRENCY),
    ]

    # -------------------------------------------------- dedicated baseline
    quiet_registry = TenantRegistry()
    quiet_registry.add("quiet", quiet_db)
    noisy_registry = TenantRegistry()
    noisy_registry.add("noisy", noisy_db)
    quiet_server, quiet_thread = _start(quiet_registry, CONFIG)
    noisy_server, noisy_thread = _start(noisy_registry, NOISY_SOLO_CONFIG)
    try:
        quiet_client = HttpClient(*quiet_server.server_address, tenant="quiet")
        noisy_client = HttpClient(*noisy_server.server_address, tenant="noisy")
        replay(quiet_client, quiet_session[:5], qps=50.0, name="warmup")
        baseline = replay_many(plans(noisy_client, quiet_client))
    finally:
        _stop(quiet_server, quiet_thread)
        _stop(noisy_server, noisy_thread)
    solo = baseline["quiet"]
    assert solo.errors == 0 and baseline["noisy"].errors == 0
    assert solo.shed() == 0, dict(solo.status_counts)
    rows.append(["dedicated", *baseline["noisy"].as_row()])
    rows.append(["dedicated", *solo.as_row()])

    # ------------------------------------------------------ noisy neighbor
    registry = TenantRegistry()
    registry.add("noisy", noisy_db, quota=1)
    registry.add("quiet", quiet_db)
    server, thread = _start(registry, CONFIG)
    try:
        noisy_client = HttpClient(*server.server_address, tenant="noisy")
        quiet_client = HttpClient(*server.server_address, tenant="quiet")
        replay(quiet_client, quiet_session[:5], qps=50.0, name="warmup")
        reports = replay_many(plans(noisy_client, quiet_client))
    finally:
        _stop(server, thread)
    noisy, quiet = reports["noisy"], reports["quiet"]
    assert noisy.errors == 0 and quiet.errors == 0
    rows.append(["shared", *noisy.as_row()])
    rows.append(["shared", *quiet.as_row()])

    # Attribution: every 429 observed on the shared server must blame the
    # noisy tenant; the quiet tenant is never shed.  These are
    # correctness claims — they hold at toy scale too.
    blamed = dict(noisy.shed_tenants + quiet.shed_tenants)
    assert set(blamed) <= {"noisy"}, blamed
    assert quiet.shed() == 0, dict(quiet.status_counts)

    # The drill must actually overload the noisy slice...
    shape_check(
        noisy.shed() > 0,
        f"noisy tenant never shed ({dict(noisy.status_counts)})",
    )
    # ...while the quiet tenant's tail stays within 2x its dedicated
    # baseline.
    p99_solo = solo.percentile_ms(0.99)
    p99_multi = quiet.percentile_ms(0.99)
    meta["p99_solo_ms"] = round(p99_solo, 2)
    meta["p99_multi_ms"] = round(p99_multi, 2)
    meta["isolation_ratio"] = (
        round(p99_multi / p99_solo, 2) if p99_solo > 0 else None
    )
    meta["shed_blame"] = blamed
    shape_check(
        p99_multi <= 2.0 * p99_solo,
        f"quiet p99 {p99_multi:.1f}ms vs solo {p99_solo:.1f}ms (> 2x)",
    )

    with capsys.disabled():
        print_table(
            ["phase", *REPORT_HEADERS],
            rows,
            title="E20: noisy-neighbor quota isolation",
        )
        print(f"  meta: {meta}")
    record_bench("e20_tenant", ["phase", *REPORT_HEADERS], rows, meta=meta)
