"""E11 (Table): DataGuide stream pruning ("boosting holism").

Filtering each query node's stream down to its candidate DataGuide
positions before the holistic join (Chen, Lu, Ling — SIGMOD 2005) removes
elements at structurally impossible paths: exactly the elements that
TwigStack turns into useless path solutions under parent-child edges.

For each query we run TwigStack on plain vs guide-pruned streams and
report stream volume, elements scanned, intermediate path solutions, and
latency.  Answers are asserted identical.  Expected shape: big stream
reductions where a tag occurs at many paths but few are feasible (the
deep recursive Treebank corpus is the showcase), shrinking useless
intermediates at a small pruning cost.
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call
from repro.datasets import generate_treebank
from repro.engine.database import LotusXDatabase
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import sort_matches
from repro.twig.parse import parse_twig

from conftest import shape_check

import pytest

#: (corpus, query) pairs; xmark exercises schema-shaped data, treebank
#: deep same-tag recursion.
QUERIES = [
    ("xmark", "//person/profile/interest"),
    ("xmark", "//item[./payment]/name"),
    ("xmark", "//open_auction[./seller]/itemref"),
    ("treebank", "//sentence/S/NP/NN"),
    ("treebank", "//S/NP[./DT]/NN"),
    ("treebank", "//VP/NP/PP/IN"),
]


@pytest.fixture(scope="module")
def treebank_db():
    return LotusXDatabase(generate_treebank(sentences=120, seed=17))


def test_e11_guide_pruning(xmark_db, treebank_db, benchmark, capsys):
    rows = []
    for corpus, query in QUERIES:
        db = xmark_db if corpus == "xmark" else treebank_db
        pattern = parse_twig(query)

        plain_streams = build_streams(pattern, db.streams)
        pruned_streams = build_streams(pattern, db.streams, db.guide)

        plain_stats = AlgorithmStats()
        plain = sort_matches(twig_stack_match(pattern, plain_streams, plain_stats))
        pruned_stats = AlgorithmStats()
        pruned = sort_matches(
            twig_stack_match(pattern, pruned_streams, pruned_stats)
        )
        assert plain == pruned  # pruning never changes answers

        plain_volume = sum(len(s) for s in plain_streams.values())
        pruned_volume = sum(len(s) for s in pruned_streams.values())
        plain_time = time_call(lambda: twig_stack_match(pattern, plain_streams))
        pruned_time = time_call(
            lambda: (
                build_streams(pattern, db.streams, db.guide),
                twig_stack_match(pattern, pruned_streams),
            )
        )
        rows.append(
            [
                corpus,
                query,
                len(plain),
                plain_volume,
                pruned_volume,
                plain_stats.intermediate_results,
                pruned_stats.intermediate_results,
                plain_time * 1000,
                pruned_time * 1000,
            ]
        )

    pattern = parse_twig(QUERIES[3][1])
    benchmark(
        lambda: twig_stack_match(
            pattern, build_streams(pattern, treebank_db.streams, treebank_db.guide)
        )
    )

    with capsys.disabled():
        print_table(
            [
                "corpus",
                "query",
                "matches",
                "plain_stream",
                "pruned_stream",
                "plain_interm",
                "pruned_interm",
                "plain_ms",
                "pruned_ms",
            ],
            rows,
            title="\nE11: DataGuide stream pruning (pruned_ms includes pruning)",
        )

    # Shape checks: pruning never inflates streams or intermediates, and
    # on the recursive corpus it cuts streams substantially somewhere.
    shape_check(all(row[4] <= row[3] for row in rows))
    shape_check(all(row[6] <= row[5] for row in rows))
    treebank_rows = [row for row in rows if row[0] == "treebank"]
    shape_check(any(row[4] < row[3] * 0.8 for row in treebank_rows))
