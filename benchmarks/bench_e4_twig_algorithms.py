"""E4 (Figure): twig matching time across algorithms and query classes.

Regenerates the algorithm-comparison figure: evaluation time of the naive
tree-search baseline, binary structural joins, PathStack (paths only), and
holistic TwigStack, per query class (path / flat twig / deep twig), on the
XMark-like corpus, across corpus sizes.

Expected shape (see the honest-findings note in EXPERIMENTS.md): the
label-based algorithms beat naive tree navigation consistently — binary
structural joins by a wide margin — while TwigStack pays a Python-level
per-element overhead for its bounded intermediate results; *that* benefit
is measured directly in E5.  All algorithms must agree on every answer.
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call
from repro.bench.workloads import XMARK_QUERIES
from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.path_stack import path_stack_match
from repro.twig.algorithms.structural_join import structural_join_match
from repro.twig.algorithms.twig_stack import twig_stack_match

from conftest import XMARK_SIZES, shape_check

#: Naive re-walks subtrees per query node; cap where it still finishes fast.
NAIVE_SIZE_CAP = XMARK_SIZES[-1]


def _times_for(db, query, include_naive):
    pattern = query.pattern()
    streams = build_streams(pattern, db.streams)
    times = {
        "join": time_call(lambda: structural_join_match(pattern, streams)),
        "twig": time_call(lambda: twig_stack_match(pattern, streams)),
    }
    counts = {
        "join": len(structural_join_match(pattern, streams)),
        "twig": len(twig_stack_match(pattern, streams)),
    }
    if pattern.is_path():
        times["path"] = time_call(lambda: path_stack_match(pattern, streams))
        counts["path"] = len(path_stack_match(pattern, streams))
    if include_naive:
        times["naive"] = time_call(
            lambda: naive_match(pattern, db.labeled, db.term_index), repeats=1
        )
        counts["naive"] = len(naive_match(pattern, db.labeled, db.term_index))
    assert len(set(counts.values())) == 1, f"algorithms disagree on {query.name}"
    return times, counts["twig"]


def test_e4_algorithm_comparison(xmark_dbs, benchmark, capsys):
    rows = []
    for size in XMARK_SIZES:
        db = xmark_dbs[size]
        for query in XMARK_QUERIES:
            include_naive = size <= NAIVE_SIZE_CAP
            times, match_count = _times_for(db, query, include_naive)
            rows.append(
                [
                    size,
                    query.name,
                    query.query_class,
                    match_count,
                    times.get("naive", float("nan")) * 1000,
                    times["join"] * 1000,
                    times.get("path", float("nan")) * 1000,
                    times["twig"] * 1000,
                ]
            )

    db = xmark_dbs[XMARK_SIZES[-1]]
    deep = next(q for q in XMARK_QUERIES if q.query_class == "deep-twig")
    pattern = deep.pattern()
    streams = build_streams(pattern, db.streams)
    benchmark(lambda: twig_stack_match(pattern, streams))

    with capsys.disabled():
        print_table(
            [
                "items",
                "query",
                "class",
                "matches",
                "naive_ms",
                "join_ms",
                "pathstack_ms",
                "twigstack_ms",
            ],
            rows,
            title="\nE4: matching time per algorithm (nan = not applicable)",
        )

    # Shape checks on the largest corpus.
    large_rows = [row for row in rows if row[0] == XMARK_SIZES[-1]]
    # Binary structural joins over labeled streams beat naive navigation
    # decisively, in aggregate and on (almost) every query.
    naive_total = sum(row[4] for row in large_rows)
    join_total = sum(row[5] for row in large_rows)
    shape_check(join_total * 3 < naive_total)
    shape_check(
        sum(1 for row in large_rows if row[5] < row[4]) >= len(large_rows) - 1
    )
    # Every algorithm stays interactive on every workload query.
    shape_check(all(max(row[5], row[7]) < 1000 for row in large_rows))
