"""E2 (Figure): autocompletion latency vs prefix length and corpus size.

Regenerates the "on-the-fly" figure: one series per corpus size, median
completion latency (tag and value) as the typed prefix grows.  Expected
shape: sub-millisecond-to-few-ms latencies that *drop* (or stay flat) as
the prefix lengthens — longer prefixes reach smaller trie subtrees.
"""

from __future__ import annotations

import random
import statistics
import time

from repro.bench.harness import print_table
from repro.twig.parse import parse_twig

from conftest import DBLP_SIZES, shape_check

PREFIX_LENGTHS = (0, 1, 2, 3, 4)
PROBES_PER_POINT = 30


def _value_prefixes(db, rng: random.Random, length: int) -> list[str]:
    values = [value for value in db.term_index.values() if len(value) >= length]
    picks = rng.sample(values, min(PROBES_PER_POINT, len(values)))
    return [value[:length] for value in picks]


def _median_latency(fn, inputs) -> float:
    samples = []
    for value in inputs:
        started = time.perf_counter()
        fn(value)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) if samples else 0.0


def test_e2_completion_latency_series(dblp_dbs, benchmark, capsys):
    rng = random.Random(13)
    rows = []
    for size in DBLP_SIZES:
        db = dblp_dbs[size]
        pattern = parse_twig("//article/author")
        author_node = pattern.root.children[0]
        for length in PREFIX_LENGTHS:
            prefixes = _value_prefixes(db, rng, length)
            value_latency = _median_latency(
                lambda p: db.complete_value(pattern, author_node, p, k=10),
                prefixes,
            )
            tag_latency = _median_latency(
                lambda p: db.complete_tag(pattern, pattern.root, p[:length], k=10),
                prefixes,
            )
            rows.append(
                [size, length, value_latency * 1000, tag_latency * 1000]
            )

    db = dblp_dbs[DBLP_SIZES[-1]]
    pattern = parse_twig("//article/author")
    benchmark(
        lambda: db.complete_value(pattern, pattern.root.children[0], "jo", k=10)
    )

    with capsys.disabled():
        print_table(
            ["publications", "prefix_len", "value_ms", "tag_ms"],
            rows,
            title="\nE2: completion latency vs prefix length (series per size)",
        )

    # Shape check: every completion is interactive (well under 100 ms).
    shape_check(all(row[2] < 100 and row[3] < 100 for row in rows))
