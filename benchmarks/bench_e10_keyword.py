"""E10 (Table): schema-free keyword search (SLCA) latency and answer shape.

The extension feature for users who type nothing but words: latency of
SLCA computation + ranking across corpus sizes and term counts, plus a
sanity profile of the answers (SLCAs are never nested — asserted).

Expected shape: latency scales with the rarest term's posting list (not
the corpus), staying interactive throughout; more terms = fewer, larger
answers.
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call
from repro.keyword.slca import find_slcas

from conftest import DBLP_SIZES, shape_check

QUERIES = [
    ("1 term", "xml"),
    ("2 terms", "xml twig"),
    ("3 terms", "xml twig join"),
    ("rare+common", "holistic lu"),
]


def test_e10_keyword_search(dblp_dbs, benchmark, capsys):
    rows = []
    for size in DBLP_SIZES:
        db = dblp_dbs[size]
        for label, query in QUERIES:
            response = db.keyword_search(query, k=10)
            elapsed = time_call(lambda: db.keyword_search(query, k=10))

            # SLCA invariant: answers are never nested.
            slcas = find_slcas(db.labeled, db.term_index, response.terms)
            for first in slcas:
                for second in slcas:
                    if first is not second:
                        assert not first.region.is_ancestor_of(second.region)

            average_depth = (
                sum(hit.element.level for hit in response) / len(response)
                if len(response)
                else 0.0
            )
            rows.append(
                [
                    size,
                    label,
                    response.total_slcas,
                    round(average_depth, 1),
                    elapsed * 1000,
                ]
            )

    db = dblp_dbs[DBLP_SIZES[-1]]
    benchmark(lambda: db.keyword_search("xml twig", k=10))

    with capsys.disabled():
        print_table(
            ["publications", "query", "slcas", "avg_depth", "latency_ms"],
            rows,
            title="\nE10: SLCA keyword search (DBLP-like)",
        )

    # Shape checks: interactive latency everywhere; conjunctive semantics
    # shrink the answer set as terms are added.
    shape_check(all(row[4] < 200 for row in rows))
    for size in DBLP_SIZES:
        by_label = {row[1]: row[2] for row in rows if row[0] == size}
        shape_check(
            by_label["3 terms"] <= by_label["2 terms"] <= by_label["1 term"]
        )
