"""Ablation: per-path value tries vs global trie + post-filter.

DESIGN.md calls out the implementation choice behind position-aware value
completion: LotusX keeps one value trie per DataGuide path (what we ship)
instead of a single global trie whose completions are post-filtered
against the valid positions.  The post-filter strategy is implemented
here as the ablation baseline.

Expected shape: both are correct, but the post-filter baseline must
over-fetch (k' >> k) to survive filtering whenever the prefix is dominated
by values from other positions, making its latency grow with corpus-wide
prefix popularity while per-path tries stay flat.
"""

from __future__ import annotations

import random

from repro.autocomplete.context import candidate_positions
from repro.bench.harness import print_table, time_call
from repro.twig.parse import parse_twig

from conftest import shape_check

K = 10
OVERFETCH = 50  # the post-filter baseline's k'


def postfilter_complete(db, pattern, node, prefix, k=K):
    """Ablation baseline: global trie + validity post-filter."""
    positions = candidate_positions(pattern, db.guide)
    valid_paths = {p.node_id for p in positions[node.node_id]}
    results = []
    for value, count in db.completion_index.global_value_trie.complete(
        prefix, OVERFETCH
    ):
        if any(
            db.completion_index.complete_value_at([pid], value, 1)
            for pid in valid_paths
        ):
            results.append((value, count))
            if len(results) >= k:
                break
    return results


def test_ablation_completion_strategy(dblp_db, benchmark, capsys):
    rng = random.Random(3)
    pattern = parse_twig("//inproceedings/booktitle")
    node = pattern.root.children[0]

    # Prefixes drawn from values that occur at the completed position
    # (booktitles), mixed with corpus-wide prefixes that do not — the
    # post-filter baseline pays most on the latter.
    position_values = sorted(
        {
            e.element.direct_text.strip().lower()
            for e in dblp_db.labeled.stream("booktitle")
        }
    )
    other_values = sorted(dblp_db.term_index.values())
    prefixes = (
        [""]
        + [value[:2] for value in position_values[:6]]
        + [value[:2] for value in rng.sample(other_values, 5)]
    )

    rows = []
    for prefix in prefixes:
        per_path = dblp_db.complete_value(pattern, node, prefix, k=K)
        per_path_set = {c.text for c in per_path}
        filtered = postfilter_complete(dblp_db, pattern, node, prefix)
        filtered_set = {v for v, _ in filtered}

        per_path_time = time_call(
            lambda: dblp_db.complete_value(pattern, node, prefix, k=K)
        )
        filtered_time = time_call(
            lambda: postfilter_complete(dblp_db, pattern, node, prefix)
        )
        # Correctness: the baseline never finds values the per-path tries
        # missed (both draw from the same underlying occurrences).
        assert filtered_set <= per_path_set | filtered_set
        rows.append(
            [
                repr(prefix),
                len(per_path),
                len(filtered),
                per_path_time * 1000,
                filtered_time * 1000,
            ]
        )

    benchmark(lambda: dblp_db.complete_value(pattern, node, "", k=K))

    with capsys.disabled():
        print_table(
            [
                "prefix",
                "per_path_hits",
                "postfilter_hits",
                "per_path_ms",
                "postfilter_ms",
            ],
            rows,
            title="\nAblation: per-path tries vs global trie + post-filter",
        )

    # Shape check: the post-filter baseline can miss valid completions
    # (over-fetch bound) or cost more; the per-path strategy never returns
    # fewer hits than the baseline.
    shape_check(all(row[1] >= row[2] for row in rows))
