"""E8 (Table): query rewriting effectiveness on broken queries.

Takes working DBLP-like queries and *breaks* them the way users do —
wrong tag names, wrong axis assumptions, misspelled values — then measures
how often the rewrite engine recovers answers, at what penalty, and how
many candidate rewrites it had to evaluate.

Expected shape: high recovery rate (most breakages are one cheap
relaxation away), penalties concentrated at 1–3, small evaluation counts.
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call

from conftest import shape_check

#: (name, broken query, what's wrong with it)
BROKEN_QUERIES = [
    ("wrong-tag", "//article/writer", "'writer' should be 'author'"),
    ("wrong-tag-2", "//inproceedings/conference", "'conference' should be 'booktitle'"),
    ("wrong-axis", "//dblp/author", "authors are nested one record level deeper"),
    ("wrong-root", "//paper/title", "'paper' is not a DBLP record tag"),
    (
        "bad-value",
        '//article[./journal="journal of nothing"]/title',
        "no such journal value",
    ),
    (
        "impossible-combo",
        "//article[./booktitle]/title",
        "articles have journals, not booktitles",
    ),
    (
        "overconstrained",
        '//article[./year[.>=2011]][./journal="tods"][./title~"nonexistentword"]',
        "one predicate can never hold",
    ),
]


def test_e8_rewriting_recovery(dblp_db, benchmark, capsys):
    rows = []
    recovered = 0
    for name, query, _ in BROKEN_QUERIES:
        pattern = dblp_db.parse_query(query)
        assert dblp_db.matches(pattern) == [], f"{name} should start broken"

        outcome = dblp_db.rewriter.search_with_rewrites(
            pattern, lambda p: dblp_db.matches(p)
        )
        elapsed = time_call(
            lambda: dblp_db.rewriter.search_with_rewrites(
                pattern, lambda p: dblp_db.matches(p)
            ),
            repeats=1,
        )
        if outcome.found_any:
            recovered += 1
            candidate, matches = outcome.best()
            rows.append(
                [
                    name,
                    "yes",
                    candidate.penalty,
                    len(candidate.steps),
                    len(matches),
                    outcome.evaluated,
                    elapsed * 1000,
                ]
            )
        else:
            rows.append(
                [name, "no", "-", "-", 0, outcome.evaluated, elapsed * 1000]
            )

    pattern = dblp_db.parse_query(BROKEN_QUERIES[0][1])
    benchmark(
        lambda: dblp_db.rewriter.search_with_rewrites(
            pattern, lambda p: dblp_db.matches(p)
        )
    )

    with capsys.disabled():
        print_table(
            [
                "breakage",
                "recovered",
                "penalty",
                "steps",
                "answers",
                "patterns_evaluated",
                "latency_ms",
            ],
            rows,
            title="\nE8: rewrite recovery on broken DBLP queries",
        )
        print(f"recovery rate: {recovered}/{len(BROKEN_QUERIES)}")

    # Shape check: the engine recovers the large majority of breakages.
    shape_check(recovered >= len(BROKEN_QUERIES) - 1)
