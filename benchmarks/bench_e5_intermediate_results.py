"""E5 (Figure): intermediate-result size, binary joins vs holistic TwigStack.

The classical holistic-join result: binary structural joins materialize
per-edge pair lists that can dwarf the final answer, while TwigStack's
path solutions stay near the output size (exactly so for AD-only twigs).

For each AD-heavy query we report the number of intermediate results each
approach produced and the final match count.  Expected shape: the
join/twig intermediate ratio grows with nesting; TwigStack stays within a
small factor of the answer.
"""

from __future__ import annotations

from repro.bench.harness import print_table
from repro.bench.workloads import BLOWUP_QUERIES
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.structural_join import structural_join_match
from repro.twig.algorithms.twig_stack import twig_stack_match

from conftest import XMARK_SIZES, shape_check


def test_e5_intermediate_result_sizes(xmark_dbs, benchmark, capsys):
    rows = []
    for size in XMARK_SIZES:
        db = xmark_dbs[size]
        for query in BLOWUP_QUERIES:
            pattern = query.pattern()
            streams = build_streams(pattern, db.streams)

            join_stats = AlgorithmStats()
            join_matches = structural_join_match(pattern, streams, join_stats)
            twig_stats = AlgorithmStats()
            twig_matches = twig_stack_match(pattern, streams, twig_stats)
            assert len(join_matches) == len(twig_matches)

            ratio = join_stats.intermediate_results / max(
                1, twig_stats.intermediate_results
            )
            rows.append(
                [
                    size,
                    query.name,
                    len(twig_matches),
                    join_stats.intermediate_results,
                    twig_stats.intermediate_results,
                    ratio,
                ]
            )

    db = xmark_dbs[XMARK_SIZES[-1]]
    pattern = BLOWUP_QUERIES[0].pattern()
    streams = build_streams(pattern, db.streams)
    benchmark(lambda: twig_stack_match(pattern, streams))

    with capsys.disabled():
        print_table(
            [
                "items",
                "query",
                "matches",
                "join_intermediate",
                "twig_intermediate",
                "join/twig",
            ],
            rows,
            title="\nE5: intermediate results — binary joins vs TwigStack",
        )

    # Shape check: TwigStack never produces more intermediates than binary
    # joins on these AD-heavy twigs, and wins clearly somewhere.
    shape_check(all(row[4] <= row[3] for row in rows))
    shape_check(max(row[5] for row in rows) > 1.5)
