"""E9 (Table): TJFast's leaf-only scanning vs TwigStack.

TJFast (the extended-Dewey algorithm of the LotusX lineage) reads *only*
the leaf query nodes' streams; internal bindings come from label
decoding.  For twigs whose internal nodes have large streams — the common
case when the structural skeleton (``//site``, ``//item``) is broad and
the leaves are selective — the number of elements scanned collapses.

Expected shape: TJFast scans a fraction of TwigStack's elements on
internal-heavy twigs (equal answer sets, asserted), and its advantage in
elements-scanned grows with how unselective the internal nodes are.
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.tjfast import tjfast_match
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.parse import parse_twig

from conftest import shape_check

#: Twigs with broad internal skeletons and selective leaves.
QUERIES = [
    ("Q1", '//site//item[./location="china"]'),
    ("Q2", "//site//open_auction[./seller][./itemref]"),
    ("Q3", '//regions//item[./payment="cash"]/quantity'),
    ("Q4", "//site//person[./address/country]"),
    ("Q5", "//item[./description/parlist/listitem]"),
]


def test_e9_tjfast_leaf_scanning(xmark_db, benchmark, capsys):
    rows = []
    for name, query in QUERIES:
        pattern = parse_twig(query)
        streams = build_streams(pattern, xmark_db.streams)

        tj_stats = AlgorithmStats()
        tj_matches = tjfast_match(
            pattern, streams, xmark_db.term_index, tj_stats
        )
        ts_stats = AlgorithmStats()
        ts_matches = twig_stack_match(pattern, streams, ts_stats)
        assert len(tj_matches) == len(ts_matches)

        tj_time = time_call(
            lambda: tjfast_match(pattern, streams, xmark_db.term_index)
        )
        ts_time = time_call(lambda: twig_stack_match(pattern, streams))
        rows.append(
            [
                name,
                len(tj_matches),
                ts_stats.elements_scanned,
                tj_stats.elements_scanned,
                ts_stats.elements_scanned / max(1, tj_stats.elements_scanned),
                ts_time * 1000,
                tj_time * 1000,
            ]
        )

    pattern = parse_twig(QUERIES[0][1])
    streams = build_streams(pattern, xmark_db.streams)
    benchmark(lambda: tjfast_match(pattern, streams, xmark_db.term_index))

    with capsys.disabled():
        print_table(
            [
                "query",
                "matches",
                "twigstack_scanned",
                "tjfast_scanned",
                "scan_ratio",
                "twigstack_ms",
                "tjfast_ms",
            ],
            rows,
            title="\nE9: TJFast leaf-only scanning vs TwigStack (XMark-like)",
        )

    # Shape checks: TJFast never scans more, and wins clearly somewhere.
    shape_check(all(row[3] <= row[2] for row in rows))
    shape_check(max(row[4] for row in rows) >= 3.0)
