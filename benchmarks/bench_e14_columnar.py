"""E14 (Table): columnar stream kernels vs object-stream matching.

Gates the columnar rebuild of the twig hot path: every matching
algorithm re-run against per-tag ``array('q')`` label columns with
``seek_ge`` skip pointers must (a) return exactly the matches of its
object-stream twin on every workload query and (b) deliver a >= 3x
median speedup on the planner-chosen algorithm over the E4-class XMark
workload.  Also prints the compiled-plan cache effect (hit vs recompile)
as an informational table.

Results are persisted via ``record_bench`` (``BENCH_e14_columnar.json``)
for the nightly artifact upload.
"""

from __future__ import annotations

import statistics

from repro.bench.harness import print_table, record_bench, time_call
from repro.bench.workloads import XMARK_QUERIES
from repro.twig.algorithms.common import build_columnar_streams, build_streams
from repro.twig.algorithms.path_stack import (
    path_stack_match,
    path_stack_match_columnar,
)
from repro.twig.algorithms.structural_join import (
    structural_join_match,
    structural_join_match_columnar,
)
from repro.twig.algorithms.tjfast import tjfast_match, tjfast_match_columnar
from repro.twig.algorithms.twig_stack import (
    twig_stack_match,
    twig_stack_match_columnar,
)
from repro.twig.match import sort_matches
from repro.twig.planner import Algorithm

from conftest import XMARK_SIZES, shape_check


def _algorithm_runs(pattern, db, term_index):
    """(name, object_fn, columnar_fn) per applicable algorithm."""
    streams = build_streams(pattern, db.streams)
    views = build_columnar_streams(pattern, db.streams)
    runs = [
        (
            "twig",
            lambda: twig_stack_match(pattern, streams),
            lambda: twig_stack_match_columnar(pattern, views),
        ),
        (
            "join",
            lambda: structural_join_match(pattern, streams),
            lambda: structural_join_match_columnar(pattern, views),
        ),
        (
            "tjfast",
            lambda: tjfast_match(pattern, streams, term_index),
            lambda: tjfast_match_columnar(pattern, views, term_index),
        ),
    ]
    if pattern.is_path():
        runs.append(
            (
                "path",
                lambda: path_stack_match(pattern, streams),
                lambda: path_stack_match_columnar(pattern, views),
            )
        )
    return runs


def test_e14_columnar_vs_object(xmark_dbs, benchmark, capsys):
    db = xmark_dbs[XMARK_SIZES[-1]]
    term_index = db.term_index
    rows = []
    planned_ratios = []
    for query in XMARK_QUERIES:
        pattern = query.pattern()
        planned = "path" if pattern.is_path() else "twig"
        for name, object_fn, columnar_fn in _algorithm_runs(
            pattern, db, term_index
        ):
            # Correctness first: identical answers, then identical timing
            # protocol (median of 3) for both representations.
            object_matches = sort_matches(object_fn())
            columnar_matches = sort_matches(columnar_fn())
            assert object_matches == columnar_matches, (
                f"columnar {name} disagrees on {query.name}"
            )
            object_seconds = time_call(object_fn)
            columnar_seconds = time_call(columnar_fn)
            ratio = object_seconds / columnar_seconds if columnar_seconds else float("inf")
            if name == planned:
                planned_ratios.append(ratio)
            rows.append(
                [
                    query.name,
                    query.query_class,
                    name,
                    len(object_matches),
                    object_seconds * 1000,
                    columnar_seconds * 1000,
                    ratio,
                ]
            )

    deep = next(q for q in XMARK_QUERIES if q.query_class == "deep-twig")
    deep_pattern = deep.pattern()
    deep_views = build_columnar_streams(deep_pattern, db.streams)
    benchmark(lambda: twig_stack_match_columnar(deep_pattern, deep_views))

    headers = [
        "query",
        "class",
        "algorithm",
        "matches",
        "object_ms",
        "columnar_ms",
        "speedup",
    ]
    with capsys.disabled():
        print_table(
            headers,
            rows,
            title="\nE14: columnar vs object-stream matching"
            f" (XMark items={XMARK_SIZES[-1]})",
        )
    record_bench(
        "e14_columnar",
        headers,
        rows,
        meta={"items": XMARK_SIZES[-1], "repeats": 3},
    )

    # The tentpole gate: >= 3x median speedup for the planner-chosen
    # algorithm across the E4-class workload.
    median_ratio = statistics.median(planned_ratios)
    shape_check(
        median_ratio >= 3.0,
        f"columnar median speedup {median_ratio:.2f}x < 3x",
    )
    # Columnar must never lose badly on any (query, algorithm) cell.
    shape_check(all(row[-1] > 0.5 for row in rows))


def test_e14_plan_cache_effect(xmark_dbs, capsys):
    """Informational: compiled-plan cache hit vs full recompile."""
    db = xmark_dbs[XMARK_SIZES[-1]]
    rows = []
    for query in XMARK_QUERIES:
        pattern = db.parse_query(query.text)

        def run_cold():
            db._plan_cache.clear()
            db._evaluate(pattern, Algorithm.AUTO, None, False, None)

        def run_warm():
            db._evaluate(pattern, Algorithm.AUTO, None, False, None)

        run_warm()  # prime
        cold = time_call(run_cold)
        warm = time_call(run_warm)
        rows.append(
            [
                query.name,
                cold * 1000,
                warm * 1000,
                cold / warm if warm else float("inf"),
            ]
        )
    with capsys.disabled():
        print_table(
            ["query", "recompile_ms", "plan_hit_ms", "speedup"],
            rows,
            title="\nE14: compiled-plan cache effect (informational)",
        )
    # A plan hit skips stream building entirely, so it can never be
    # slower than recompiling in aggregate.
    shape_check(sum(row[1] for row in rows) > sum(row[2] for row in rows))
