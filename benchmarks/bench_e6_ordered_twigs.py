"""E6 (Table): order-sensitive twig queries — correctness and overhead.

The abstract claims support for "order sensitive queries".  For each
workload twig we evaluate the unordered and the ordered variant and report
match counts and evaluation-time overhead.  Expected shape: ordered
matching returns a subset of the unordered answers at single-digit-percent
to low-multiple overhead (the order check prunes during the merge phase).
"""

from __future__ import annotations

from repro.bench.harness import print_table, time_call
from repro.bench.workloads import ORDERED_QUERIES
from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import satisfies_order

from conftest import shape_check


def test_e6_ordered_overhead(dblp_db, benchmark, capsys):
    rows = []
    for query in ORDERED_QUERIES:
        unordered = query.pattern()
        ordered = query.pattern()
        ordered.ordered = True

        unordered_streams = build_streams(unordered, dblp_db.streams)
        ordered_streams = build_streams(ordered, dblp_db.streams)

        unordered_matches = twig_stack_match(unordered, unordered_streams)
        ordered_matches = twig_stack_match(ordered, ordered_streams)

        # Correctness: the ordered answer is exactly the order-satisfying
        # subset of the unordered answer.
        expected = [
            match for match in unordered_matches if satisfies_order(ordered, match)
        ]
        assert sorted(m.key() for m in ordered_matches) == sorted(
            m.key() for m in expected
        )

        unordered_time = time_call(
            lambda: twig_stack_match(unordered, unordered_streams)
        )
        ordered_time = time_call(lambda: twig_stack_match(ordered, ordered_streams))
        overhead = (ordered_time - unordered_time) / unordered_time * 100
        rows.append(
            [
                query.name,
                len(unordered_matches),
                len(ordered_matches),
                unordered_time * 1000,
                ordered_time * 1000,
                f"{overhead:+.0f}%",
            ]
        )

    pattern = ORDERED_QUERIES[0].pattern()
    pattern.ordered = True
    streams = build_streams(pattern, dblp_db.streams)
    benchmark(lambda: twig_stack_match(pattern, streams))

    with capsys.disabled():
        print_table(
            [
                "query",
                "unordered_matches",
                "ordered_matches",
                "unordered_ms",
                "ordered_ms",
                "overhead",
            ],
            rows,
            title="\nE6: order-sensitive twig queries (DBLP-like corpus)",
        )

    # Shape checks: ordering only filters, and never explodes cost.
    shape_check(all(row[2] <= row[1] for row in rows))
    shape_check(all(row[4] < row[3] * 3 for row in rows))
