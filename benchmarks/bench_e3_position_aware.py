"""E3 (Table): position-aware vs position-blind completion quality.

The abstract's core claim: candidates are proposed *for the position being
edited*.  For a set of query contexts, we compare

* the candidate-set size of position-aware completion vs the global
  (position-blind) baseline, and
* precision@k of the baseline — the fraction of its top-k candidates that
  are actually valid at the position (position-aware candidates are valid
  by construction, precision 1.0).

Expected shape: position-aware sets are much smaller, while the global
baseline pollutes its top-k with candidates that cannot occur at the
position.
"""

from __future__ import annotations

from repro.bench.harness import print_table
from repro.twig.parse import parse_twig

from conftest import shape_check

K = 10

#: (corpus, context query, anchor description).  The anchor is the pattern
#: root; completion proposes child tags under it.
TAG_CONTEXTS = [
    ("dblp", "//article", "child of article"),
    ("dblp", "//book", "child of book"),
    ("dblp", "//phdthesis", "child of phdthesis"),
    ("xmark", "//item", "child of item"),
    ("xmark", "//person", "child of person"),
    ("xmark", "//open_auction/bidder", "child of bidder"),
]

VALUE_CONTEXTS = [
    ("dblp", "//inproceedings/booktitle", "booktitle values"),
    ("dblp", "//article/journal", "journal values"),
    ("xmark", "//item/location", "location values"),
    ("xmark", "//person/profile/education", "education values"),
]


def _db(name, dblp_db, xmark_db):
    return dblp_db if name == "dblp" else xmark_db


def test_e3_tag_completion_precision(dblp_db, xmark_db, benchmark, capsys):
    rows = []
    for corpus, query, label in TAG_CONTEXTS:
        db = _db(corpus, dblp_db, xmark_db)
        pattern = parse_twig(query)
        anchor = pattern.nodes()[-1]
        aware = db.complete_tag(pattern, anchor, "", k=1000)
        blind = db.autocomplete.complete_tag_global("", k=1000)
        valid = {candidate.text for candidate in aware}
        blind_topk = [candidate.text for candidate in blind[:K]]
        precision = (
            sum(1 for tag in blind_topk if tag in valid) / len(blind_topk)
            if blind_topk
            else 0.0
        )
        rows.append(
            [corpus, label, len(aware), len(blind), round(precision, 2), 1.0]
        )

    pattern = parse_twig("//article")
    benchmark(lambda: dblp_db.complete_tag(pattern, pattern.root, "", k=10))

    with capsys.disabled():
        print_table(
            [
                "corpus",
                "context",
                "aware_set",
                "blind_set",
                f"blind_p@{K}",
                f"aware_p@{K}",
            ],
            rows,
            title="\nE3a: tag completion — position-aware vs global baseline",
        )

    # Shape checks: aware sets are strictly smaller; the blind top-k is
    # polluted in most contexts.
    shape_check(all(row[2] < row[3] for row in rows))
    shape_check(sum(1 for row in rows if row[4] < 1.0) >= len(rows) // 2)


def test_e3_value_completion_scoping(dblp_db, xmark_db, benchmark, capsys):
    rows = []
    for corpus, query, label in VALUE_CONTEXTS:
        db = _db(corpus, dblp_db, xmark_db)
        pattern = parse_twig(query)
        node = pattern.nodes()[-1]
        aware = db.complete_value(pattern, node, "", k=10_000)
        blind = db.autocomplete.complete_value_global("", k=10_000)
        valid = {candidate.text for candidate in aware}
        blind_topk = [candidate.text for candidate in blind[:K]]
        precision = (
            sum(1 for value in blind_topk if value in valid) / len(blind_topk)
            if blind_topk
            else 0.0
        )
        rows.append([corpus, label, len(aware), len(blind), round(precision, 2)])

    pattern = parse_twig("//article/journal")
    benchmark(
        lambda: dblp_db.complete_value(pattern, pattern.root.children[0], "", k=10)
    )

    with capsys.disabled():
        print_table(
            ["corpus", "context", "aware_values", "blind_values", f"blind_p@{K}"],
            rows,
            title="\nE3b: value completion — position-aware vs global baseline",
        )

    shape_check(all(row[2] < row[3] for row in rows))
