"""E7 (Table): ranking quality — combined score vs single-signal baselines.

The abstract claims "a new ranking strategy".  We build a corpus with
*planted graded relevance* so the ideal ranking is known:

* grade 3 — the query terms sit in a tightly-structured record (the
  predicate field is a direct child) with high term frequency;
* grade 2 — same structure but minimal term frequency (text signal can't
  separate it from grade 3; structure can't either — tf must);
* grade 1 — the terms are buried in a loosely-structured record (the
  field is nested two levels down): text looks identical to grade 2 but
  the structure is worse;
* grade 0 — records that don't match at all (never retrieved).

The query uses ancestor-descendant edges so all graded records match, and
we measure nDCG@10 and MRR of the LotusX combined scorer against the
text-only and structure-only baselines.  Expected shape: combined ≥ both
baselines, because each baseline is blind to one of the planted
distinctions.
"""

from __future__ import annotations

import math
import random

from repro.bench.harness import print_table
from repro.engine.database import LotusXDatabase
from repro.ranking.scorer import LotusXScorer
from repro.twig.parse import parse_twig
from repro.xmlio.tree import Document, Element

from conftest import shape_check

QUERY = '//record[.//field~"zenith"]//name'
K = 10


def build_ranking_corpus(seed: int = 21) -> tuple[LotusXDatabase, dict[str, int]]:
    """A corpus with planted relevance grades, keyed by record name."""
    rng = random.Random(seed)
    root = Element("collection")
    grades: dict[str, int] = {}

    def add_record(name: str, grade: int, nested: bool, tf: int) -> None:
        record = root.make_child("record")
        target = record
        if nested:
            target = record.make_child("wrapper").make_child("inner")
        field = target.make_child("field")
        field.append_text(" ".join(["zenith"] * tf + ["filler", "words"]))
        record.make_child("name").append_text(name)
        grades[name] = grade

    # Interleave record creation so document order carries no relevance
    # signal (otherwise tie-breaking by document order flatters every
    # scorer).
    plan: list[tuple[int, bool, int]] = (
        [(3, False, 3)] * 6  # grade 3: tight structure, rich text
        + [(2, False, 1)] * 6  # grade 2: tight structure, minimal text
        + [(1, True, 1)] * 6  # grade 1: loose structure, minimal text
    )
    noise_plan: list[tuple[int, bool, int]] = [(0, False, 0)] * 30
    full_plan = plan + noise_plan
    rng.shuffle(full_plan)
    names = {3: "gold", 2: "silver", 1: "bronze", 0: "noise"}
    for index, (grade, nested, tf) in enumerate(full_plan):
        name = f"{names[grade]}{index}"
        if grade == 0:
            record = root.make_child("record")
            record.make_child("field").append_text(
                " ".join(rng.choice(["alpha", "beta", "gamma"]) for _ in range(4))
            )
            record.make_child("name").append_text(name)
            grades[name] = 0
        else:
            add_record(name, grade, nested=nested, tf=tf)

    return LotusXDatabase(Document(root)), grades


def _ranking_for(db, scorer) -> list[str]:
    pattern = parse_twig(QUERY)
    matches = db.matches(pattern)
    ranked = scorer.rank(pattern, matches, db.term_index)
    names: list[str] = []
    seen: set[str] = set()
    for match, _ in ranked:
        name = match.output_elements(pattern)[0].element.text
        if name not in seen:
            seen.add(name)
            names.append(name)
    return names


def ndcg_at_k(ranking: list[str], grades: dict[str, int], k: int) -> float:
    gains = [grades.get(name, 0) for name in ranking[:k]]
    dcg = sum(gain / math.log2(rank + 2) for rank, gain in enumerate(gains))
    ideal = sorted(grades.values(), reverse=True)[:k]
    idcg = sum(gain / math.log2(rank + 2) for rank, gain in enumerate(ideal))
    return dcg / idcg if idcg else 0.0


def mrr(ranking: list[str], grades: dict[str, int]) -> float:
    best = max(grades.values())
    for rank, name in enumerate(ranking, start=1):
        if grades.get(name, 0) == best:
            return 1.0 / rank
    return 0.0


def test_e7_ranking_quality(benchmark, capsys):
    db, grades = build_ranking_corpus()
    scorers = {
        "text-only": LotusXScorer.text_only(),
        "structure-only": LotusXScorer.structure_only(),
        "LotusX combined": LotusXScorer(),
    }
    rows = []
    results = {}
    for name, scorer in scorers.items():
        ranking = _ranking_for(db, scorer)
        results[name] = (
            ndcg_at_k(ranking, grades, K),
            mrr(ranking, grades),
        )
        rows.append([name, round(results[name][0], 3), round(results[name][1], 3)])

    benchmark(lambda: _ranking_for(db, scorers["LotusX combined"]))

    with capsys.disabled():
        print_table(
            ["scorer", f"nDCG@{K}", "MRR"],
            rows,
            title="\nE7: ranking quality on the planted-relevance corpus",
        )

    combined_ndcg = results["LotusX combined"][0]
    shape_check(combined_ndcg >= results["text-only"][0])
    shape_check(combined_ndcg >= results["structure-only"][0])
    # And it must strictly beat at least one baseline (each is blind to
    # one planted distinction).
    shape_check(
        combined_ndcg
        > min(results["text-only"][0], results["structure-only"][0])
    )
