"""Ablation: best-first rewrite search vs breadth-first enumeration.

DESIGN.md calls out the rewrite engine's uniform-cost (best-first)
exploration.  The naive alternative enumerates rewrites breadth-first by
rule-application depth.  When the rule list happens to be sorted cheapest
first, BFS approximates penalty order and can even evaluate fewer
candidates — so the honest comparison is about *guarantees*: best-first
returns a minimum-penalty repair regardless of rule order, while BFS's
answer quality depends on it.  We therefore run BFS twice, with the
default (cheapest-first) and the reversed (most-expensive-first) rule
order, and show that best-first is invariant while reversed-order BFS
settles for strictly worse repairs.
"""

from __future__ import annotations

from collections import deque

from repro.bench.harness import print_table
from repro.rewrite.rules import default_rules

from conftest import shape_check

BROKEN_QUERIES = [
    ("wrong-tag", "//article/writer"),
    ("wrong-axis", "//dblp/author"),
    ("bad-value", '//article[./journal="journal of nothing"]/title'),
    (
        "overconstrained",
        '//article[./year[.>=2011]][./journal="tods"][./title~"nonexistentword"]',
    ),
]

MAX_EVALUATIONS = 200


def bfs_first_productive(pattern, rules, evaluator):
    """Breadth-first baseline: expand by application depth, not penalty."""
    seen = {pattern.signature()}
    queue = deque([(pattern, 0.0, 0)])
    evaluated = 0
    while queue and evaluated < MAX_EVALUATIONS:
        current, penalty, depth = queue.popleft()
        if depth > 0:
            evaluated += 1
            if evaluator(current):
                return penalty, evaluated
        if depth >= 3:
            continue
        for rule in rules:
            for step in rule.apply(current):
                signature = step.pattern.signature()
                if signature not in seen:
                    seen.add(signature)
                    queue.append((step.pattern, penalty + step.penalty, depth + 1))
    return None, evaluated


def best_first_productive(db, pattern):
    outcome = db.rewriter.search_with_rewrites(pattern, lambda p: db.matches(p))
    if outcome.found_any:
        candidate, _ = outcome.best()
        return candidate.penalty, outcome.evaluated - 1
    return None, outcome.evaluated - 1


def test_ablation_rewrite_search_order(dblp_db, benchmark, capsys):
    forward_rules = default_rules(dblp_db.guide)
    reversed_rules = list(reversed(forward_rules))
    rows = []
    for name, query in BROKEN_QUERIES:
        pattern = dblp_db.parse_query(query)
        assert not dblp_db.matches(pattern), f"{name} should start broken"
        best_penalty, best_evaluated = best_first_productive(dblp_db, pattern)
        bfs_penalty, bfs_evaluated = bfs_first_productive(
            pattern, forward_rules, lambda p: dblp_db.matches(p)
        )
        rev_penalty, rev_evaluated = bfs_first_productive(
            pattern, reversed_rules, lambda p: dblp_db.matches(p)
        )
        rows.append(
            [
                name,
                best_penalty if best_penalty is not None else "-",
                best_evaluated,
                bfs_penalty if bfs_penalty is not None else "-",
                bfs_evaluated,
                rev_penalty if rev_penalty is not None else "-",
                rev_evaluated,
            ]
        )

    pattern = dblp_db.parse_query(BROKEN_QUERIES[0][1])
    benchmark(lambda: best_first_productive(dblp_db, pattern))

    with capsys.disabled():
        print_table(
            [
                "breakage",
                "best_penalty",
                "best_eval",
                "bfs_penalty",
                "bfs_eval",
                "bfs_rev_penalty",
                "bfs_rev_eval",
            ],
            rows,
            title=(
                "\nAblation: best-first vs BFS (forward and reversed rule"
                " order)"
            ),
        )

    # Shape checks: best-first never settles for a worse repair than either
    # BFS variant, and the reversed rule order hurts BFS somewhere — the
    # guarantee best-first provides and BFS does not.
    numeric = [row for row in rows if row[1] != "-"]
    for row in numeric:
        if row[3] != "-":
            shape_check(row[1] <= row[3])
        if row[5] != "-":
            shape_check(row[1] <= row[5])
    shape_check(any(row[5] != "-" and row[5] > row[1] for row in numeric))
