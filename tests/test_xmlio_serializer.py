"""Serializer: rendering and parse→serialize→parse round trips."""

import pytest

from repro.xmlio.builder import parse_string
from repro.xmlio.errors import SerializationError
from repro.xmlio.serializer import node_to_string, serialize
from repro.xmlio.tree import Element, Text


class TestBasicRendering:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_attributes_escaped(self):
        element = Element("a", {"k": 'x"<y'})
        assert serialize(element) == '<a k="x&quot;&lt;y"/>'

    def test_text_escaped(self):
        element = Element("a")
        element.append_text("1 < 2 & 3")
        assert serialize(element) == "<a>1 &lt; 2 &amp; 3</a>"

    def test_xml_declaration(self):
        out = serialize(Element("a"), xml_declaration=True)
        assert out.startswith('<?xml version="1.0"')

    def test_invalid_tag_rejected(self):
        with pytest.raises(SerializationError):
            serialize(Element("bad tag"))

    def test_invalid_attribute_rejected(self):
        with pytest.raises(SerializationError):
            serialize(Element("a", {"bad name": "v"}))

    def test_node_to_string_for_text(self):
        assert node_to_string(Text("a<b")) == "a&lt;b"


class TestPrettyPrinting:
    def test_element_only_content_indented(self):
        doc = parse_string("<a><b><c/></b></a>")
        out = serialize(doc, indent="  ")
        assert "<a>\n  <b>\n    <c/>\n  </b>\n</a>" in out

    def test_mixed_content_not_indented(self):
        doc = parse_string("<a>text<b/>more</a>")
        out = serialize(doc, indent="  ")
        # Mixed content must stay byte-exact.
        assert "<a>text<b/>more</a>" in out


class TestRoundTrip:
    CASES = [
        "<a/>",
        "<a>text</a>",
        '<a k="v" j="w"><b/>tail</a>',
        "<a>one<b>two</b>three<c><d>four</d></c></a>",
        "<a>&lt;escaped&gt; &amp; fine</a>",
        '<r><x y="a&quot;b"/></r>',
    ]

    @pytest.mark.parametrize("xml", CASES)
    def test_serialize_parse_fixpoint(self, xml):
        doc = parse_string(xml)
        once = serialize(doc)
        twice = serialize(parse_string(once))
        assert once == twice

    @pytest.mark.parametrize("xml", CASES)
    def test_text_content_preserved(self, xml):
        doc = parse_string(xml)
        reparsed = parse_string(serialize(doc))
        assert doc.root.text == reparsed.root.text
        assert [e.tag for e in doc.iter()] == [e.tag for e in reparsed.iter()]
