"""The autocomplete completion cache: LRU hit/miss behavior, request
identity in the key, deadline bypass, and wholesale drop on hot reload."""

from __future__ import annotations

from repro.engine.database import LotusXDatabase
from repro.resilience.deadline import Deadline
from repro.server.reload import DatabaseHolder, ReloadSource
from repro.twig.pattern import Axis

from tests.conftest import SMALL_XML


def _fresh_db() -> LotusXDatabase:
    return LotusXDatabase.from_string(SMALL_XML)


def test_repeat_completion_hits_cache():
    db = _fresh_db()
    engine = db.autocomplete
    first = db.complete_tag(prefix="a")
    assert engine.cache_info() == {
        "entries": 1,
        "max_size": 256,
        "hits": 0,
        "misses": 1,
    }
    assert db.complete_tag(prefix="a") == first
    info = engine.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # Cached answers are defensive copies: mutating one does not poison
    # the next.
    got = db.complete_tag(prefix="a")
    got.clear()
    assert db.complete_tag(prefix="a") == first


def test_cache_key_is_full_request_identity():
    db = _fresh_db()
    engine = db.autocomplete
    pattern = db.parse_query("//article")
    db.complete_tag(pattern, pattern.root, prefix="t")
    db.complete_tag(pattern, pattern.root, prefix="ti")
    db.complete_tag(pattern, pattern.root, prefix="t", axis=Axis.DESCENDANT)
    db.complete_tag(pattern, pattern.root, prefix="t", k=3)
    db.complete_tag(prefix="t")
    info = engine.cache_info()
    assert info["entries"] == 5 and info["misses"] == 5 and info["hits"] == 0
    # Prefix normalization folds into the key: same question, new hit.
    db.complete_tag(pattern, pattern.root, prefix="  T ")
    assert engine.cache_info()["hits"] == 1


def test_value_completions_cached_too():
    db = _fresh_db()
    engine = db.autocomplete
    pattern = db.parse_query("//article/author")
    node = pattern.nodes()[-1]
    first = db.complete_value(pattern, node, prefix="j")
    assert db.complete_value(pattern, node, prefix="j") == first
    info = engine.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1


def test_deadline_requests_bypass_cache():
    db = _fresh_db()
    engine = db.autocomplete
    expected = db.complete_tag(prefix="a")
    baseline = engine.cache_info()
    # A generous deadline changes nothing about the answer, but the
    # result must not be cached (it could have been truncated) and a
    # cached answer must not short-circuit the cooperative checkpoints.
    got = db.complete_tag(prefix="a", deadline=Deadline.after_ms(60_000))
    assert got == expected
    assert engine.cache_info() == baseline


def test_truncated_results_never_cached():
    db = _fresh_db()
    engine = db.autocomplete
    deadline = Deadline(max_steps=1)
    truncated = db.complete_tag(prefix="", deadline=deadline)
    assert deadline.tripped
    assert engine.cache_info()["entries"] == 0
    # The full answer is computed fresh, not served from the truncated run.
    assert len(db.complete_tag(prefix="")) >= len(truncated)


def test_lru_eviction_at_capacity():
    db = _fresh_db()
    engine = db.autocomplete
    engine.CACHE_SIZE = 3
    for k in range(1, 5):
        db.complete_tag(prefix="a", k=k)
    assert engine.cache_info()["entries"] == 3
    # k=1 (the oldest) was evicted; k=4 (the newest) still hits.
    db.complete_tag(prefix="a", k=4)
    assert engine.cache_info()["hits"] == 1
    db.complete_tag(prefix="a", k=1)
    assert engine.cache_info()["misses"] == 5


def test_hot_reload_drops_completion_cache(tmp_path):
    corpus = tmp_path / "small.xml"
    corpus.write_text(SMALL_XML, encoding="utf-8")
    db = _fresh_db()
    holder = DatabaseHolder(db, ReloadSource("xml", str(corpus)))
    expected = db.complete_tag(prefix="a")
    db.complete_tag(prefix="a")
    assert db.autocomplete.cache_info()["hits"] == 1
    holder.reload()
    fresh = holder.current
    assert fresh is not db
    # The swapped-in database answers identically from a cold cache.
    assert fresh.autocomplete.cache_info() == {
        "entries": 0,
        "max_size": 256,
        "hits": 0,
        "misses": 0,
    }
    assert fresh.complete_tag(prefix="a") == expected
    assert fresh.autocomplete.cache_info()["misses"] == 1
