"""Query-context analysis: candidate positions in the DataGuide."""

import pytest

from repro.autocomplete.context import candidate_positions, is_satisfiable
from repro.summary.dataguide import DataGuide
from repro.twig.parse import parse_twig
from repro.xmlio.builder import parse_string


@pytest.fixture(scope="module")
def guide():
    return DataGuide.from_document(
        parse_string(
            "<dblp>"
            "<article><title>a</title><author>x</author></article>"
            "<book><title>b</title><editor><author>y</author></editor></book>"
            "<proceedings><editor><author>z</author></editor></proceedings>"
            "</dblp>"
        )
    )


def positions_paths(guide, query, tag=None):
    pattern = parse_twig(query)
    positions = candidate_positions(pattern, guide)
    if tag is None:
        node = pattern.root
    else:
        node = next(n for n in pattern.nodes() if n.tag == tag)
    return {"/".join(p.path) for p in positions[node.node_id]}


class TestTopDown:
    def test_root_positions_by_tag(self, guide):
        assert positions_paths(guide, "//author") == {
            "dblp/article/author",
            "dblp/book/editor/author",
            "dblp/proceedings/editor/author",
        }

    def test_child_axis_restricts(self, guide):
        assert positions_paths(guide, "//article/author", "author") == {
            "dblp/article/author"
        }

    def test_descendant_axis_spans_levels(self, guide):
        assert positions_paths(guide, "//book//author", "author") == {
            "dblp/book/editor/author"
        }

    def test_wildcard_root(self, guide):
        paths = positions_paths(guide, "//*/editor", "editor")
        assert paths == {"dblp/book/editor", "dblp/proceedings/editor"}


class TestBottomUpPruning:
    def test_parent_pruned_without_child_support(self, guide):
        # editor exists under book and proceedings, but only book has title.
        paths = positions_paths(guide, "//*[./title][./editor]")
        assert paths == {"dblp/book"}

    def test_sibling_constraints_interact(self, guide):
        # The author position must be reachable from the *same* parent
        # positions that also support title: article only.
        paths = positions_paths(guide, "//*[./title][./author]", "author")
        assert paths == {"dblp/article/author"}

    def test_deep_pruning_propagates(self, guide):
        # //*[.//author]/title: parents with a descendant author are
        # article, book, editor(×2), proceedings, dblp; of those, only
        # article and book have a title child.
        paths = positions_paths(guide, "//*[.//author]/title", "title")
        assert paths == {"dblp/article/title", "dblp/book/title"}


class TestSatisfiability:
    def test_satisfiable(self, guide):
        assert is_satisfiable(parse_twig("//book/editor/author"), guide)

    def test_wrong_axis_unsatisfiable(self, guide):
        assert not is_satisfiable(parse_twig("//book/author"), guide)

    def test_unknown_tag_unsatisfiable(self, guide):
        assert not is_satisfiable(parse_twig("//article/writer"), guide)

    def test_impossible_combination_unsatisfiable(self, guide):
        assert not is_satisfiable(parse_twig("//article[./editor]"), guide)

    def test_root_child_axis(self, guide):
        assert is_satisfiable(parse_twig("/dblp/article"), guide)
        assert not is_satisfiable(parse_twig("/article"), guide)
