"""The best-first rewrite engine."""

import pytest

from repro.rewrite.engine import QueryRewriter
from repro.rewrite.rules import default_rules
from repro.twig.parse import parse_twig


@pytest.fixture()
def rewriter(small_db):
    return QueryRewriter(default_rules(small_db.guide))


def evaluator_for(db):
    return lambda pattern: db.matches(pattern)


class TestCandidateGeneration:
    def test_candidates_in_penalty_order(self, rewriter):
        candidates = rewriter.candidates(parse_twig('//article[./writer="x"]/title'))
        penalties = [candidate.penalty for candidate in candidates]
        assert penalties == sorted(penalties)
        assert candidates  # something was generated

    def test_original_not_included(self, rewriter):
        pattern = parse_twig("//article/title")
        for candidate in rewriter.candidates(pattern):
            assert candidate.pattern.signature() != pattern.signature()
            assert candidate.steps

    def test_no_duplicate_signatures(self, rewriter):
        candidates = rewriter.candidates(parse_twig("//a/b/c"))
        signatures = [candidate.pattern.signature() for candidate in candidates]
        assert len(signatures) == len(set(signatures))

    def test_penalty_budget_respected(self, small_db):
        tight = QueryRewriter(default_rules(small_db.guide), max_penalty=1.0)
        for candidate in tight.candidates(parse_twig("//a/b/c")):
            assert candidate.penalty <= 1.0

    def test_expansion_budget_bounds_work(self, small_db):
        tiny = QueryRewriter(default_rules(small_db.guide), max_expansions=2)
        candidates = tiny.candidates(parse_twig("//a/b/c/d"))
        # Budget of 2 expansions: the original plus one candidate expanded.
        assert len(candidates) <= 20

    def test_multi_step_rewrites_compose(self, rewriter):
        candidates = rewriter.candidates(parse_twig("//a/b"))
        assert any(len(candidate.steps) >= 2 for candidate in candidates)

    def test_describe(self, rewriter):
        candidate = rewriter.candidates(parse_twig("//a/b"))[0]
        assert candidate.describe()


class TestSearchWithRewrites:
    def test_successful_query_returns_immediately(self, small_db, rewriter):
        outcome = rewriter.search_with_rewrites(
            parse_twig("//article/author"), evaluator_for(small_db)
        )
        assert outcome.original_succeeded
        assert outcome.evaluated == 1
        assert outcome.found_any
        candidate, matches = outcome.best()
        assert candidate.penalty == 0.0
        assert len(matches) == 3

    def test_empty_query_recovers_via_rewrite(self, small_db, rewriter):
        # //book/author fails (author is under editor); // relaxation fixes it.
        outcome = rewriter.search_with_rewrites(
            parse_twig("//book/author"), evaluator_for(small_db)
        )
        assert not outcome.original_succeeded
        assert outcome.found_any
        candidate, matches = outcome.best()
        assert candidate.penalty > 0.0
        assert matches

    def test_bad_tag_recovers_via_substitution_or_wildcard(self, small_db, rewriter):
        outcome = rewriter.search_with_rewrites(
            parse_twig("//article/writer"), evaluator_for(small_db)
        )
        assert outcome.found_any
        candidate, _ = outcome.best()
        assert candidate.steps

    def test_cheapest_productive_rewrite_first(self, small_db, rewriter):
        outcome = rewriter.search_with_rewrites(
            parse_twig("//book/author"), evaluator_for(small_db), max_productive=3
        )
        penalties = [candidate.penalty for candidate, _ in outcome.productive]
        assert penalties == sorted(penalties)

    def test_hopeless_query_exhausts_budget(self, small_db):
        rewriter = QueryRewriter(
            default_rules(small_db.guide), max_penalty=1.0, max_expansions=10
        )
        outcome = rewriter.search_with_rewrites(
            parse_twig('//zzz[./qqq="no such thing"]'), evaluator_for(small_db)
        )
        assert not outcome.found_any
        assert outcome.evaluated > 1

    def test_min_results_triggers_rewriting(self, small_db, rewriter):
        # The query has 1 result; min_results=5 forces rewrites to widen it.
        outcome = rewriter.search_with_rewrites(
            parse_twig("//book//author"),
            evaluator_for(small_db),
            min_results=5,
        )
        assert outcome.original_succeeded
        assert len(outcome.productive) > 1
