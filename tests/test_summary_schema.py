"""DTD-like schema inference."""

import pytest

from repro.summary.schema import infer_schema
from repro.xmlio.builder import parse_string


def schema_for(xml):
    return infer_schema(parse_string(xml))


class TestContentModels:
    def test_exactly_one(self):
        schema = schema_for("<r><a><b/></a><a><b/></a></r>")
        assert schema.profile("a").content_model() == "(b)"

    def test_optional(self):
        schema = schema_for("<r><a><b/></a><a/></r>")
        assert schema.profile("a").content_model() == "(b?)"

    def test_one_or_more(self):
        schema = schema_for("<r><a><b/><b/></a><a><b/></a></r>")
        assert schema.profile("a").content_model() == "(b+)"

    def test_zero_or_more(self):
        schema = schema_for("<r><a><b/><b/></a><a/></r>")
        assert schema.profile("a").content_model() == "(b*)"

    def test_optional_when_first_seen_late(self):
        # b appears only in the second <a>: min must be 0.
        schema = schema_for("<r><a/><a><b/></a></r>")
        assert schema.profile("a").content_model() == "(b?)"

    def test_text_only(self):
        schema = schema_for("<r><t>hello</t></r>")
        assert schema.profile("t").content_model() == "(#PCDATA)"

    def test_mixed_content(self):
        schema = schema_for("<r><p>text <em>mid</em> more</p></r>")
        assert schema.profile("p").content_model() == "(#PCDATA | em)*"

    def test_empty_element(self):
        schema = schema_for("<r><hr/></r>")
        assert schema.profile("hr").content_model() == "EMPTY"

    def test_child_order_is_first_seen(self):
        schema = schema_for("<r><a><x/><y/></a><a><y/><x/><z/></a></r>")
        assert schema.profile("a").child_order == ["x", "y", "z"]


class TestRendering:
    def test_to_dtd_lines(self):
        schema = schema_for("<cat><book><title>t</title></book></cat>")
        dtd = schema.to_dtd()
        assert "<!ELEMENT cat (book)>" in dtd
        assert "<!ELEMENT book (title)>" in dtd
        assert "<!ELEMENT title (#PCDATA)>" in dtd
        assert "document root: cat" in dtd

    def test_counts_annotated(self):
        schema = schema_for("<r><a/><a/><a/></r>")
        assert "x3" in schema.to_dtd()

    def test_tags_cover_document(self):
        schema = schema_for("<r><a><b/></a><c/></r>")
        assert set(schema.tags()) == {"r", "a", "b", "c"}

    def test_repr(self):
        schema = schema_for("<r/>")
        assert "root='r'" in repr(schema)


class TestOnGeneratedData:
    def test_dblp_schema_shape(self):
        from repro.datasets import generate_dblp

        schema = infer_schema(generate_dblp(publications=100, seed=2))
        article_model = schema.profile("article").content_model()
        assert article_model.startswith("(title, ")
        assert "author" in article_model
        # Authors repeat, so they must carry + or *.
        assert "author+" in article_model or "author*" in article_model
