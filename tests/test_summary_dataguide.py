"""DataGuide: one node per distinct path, correct counts, position queries."""

import pytest

from repro.summary.dataguide import DataGuide
from repro.xmlio.builder import parse_string


@pytest.fixture()
def guide():
    return DataGuide.from_document(
        parse_string(
            "<dblp>"
            "<article><title>a</title><author>x</author><author>y</author></article>"
            "<article><title>b</title></article>"
            "<book><title>c</title><editor><author>z</author></editor></book>"
            "</dblp>"
        )
    )


class TestStructure:
    def test_one_node_per_distinct_path(self, guide):
        paths = [node.path for node in guide.iter_nodes()]
        assert len(paths) == len(set(paths))
        assert len(guide) == 8

    def test_counts(self, guide):
        assert guide.node_for_path(("dblp",)).count == 1
        assert guide.node_for_path(("dblp", "article")).count == 2
        assert guide.node_for_path(("dblp", "article", "author")).count == 2
        assert guide.node_for_path(("dblp", "book", "editor", "author")).count == 1

    def test_text_counts(self, guide):
        assert guide.node_for_path(("dblp", "article", "title")).text_count == 2
        assert guide.node_for_path(("dblp",)).text_count == 0

    def test_missing_path(self, guide):
        assert guide.node_for_path(("dblp", "phdthesis")) is None

    def test_root_nodes(self, guide):
        assert [node.tag for node in guide.root_nodes] == ["dblp"]

    def test_node_by_id_roundtrip(self, guide):
        for node in guide.iter_nodes():
            assert guide.node(node.node_id) is node

    def test_depth(self, guide):
        assert guide.node_for_path(("dblp",)).depth == 1
        assert guide.node_for_path(("dblp", "book", "editor", "author")).depth == 4


class TestTagQueries:
    def test_all_tags(self, guide):
        assert guide.all_tags() == {"dblp", "article", "title", "author", "book", "editor"}

    def test_tag_count_sums_across_paths(self, guide):
        # 2 article authors + 1 editor author.
        assert guide.tag_count("author") == 3
        # titles under article (2) and book (1).
        assert guide.tag_count("title") == 3

    def test_nodes_with_tag(self, guide):
        paths = {node.path for node in guide.nodes_with_tag("author")}
        assert paths == {
            ("dblp", "article", "author"),
            ("dblp", "book", "editor", "author"),
        }


class TestPositionQueries:
    def test_child_tags_of(self, guide):
        article = guide.node_for_path(("dblp", "article"))
        assert guide.child_tags_of([article]) == {"title": 2, "author": 2}

    def test_child_tags_of_multiple_contexts(self, guide):
        contexts = [
            guide.node_for_path(("dblp", "article")),
            guide.node_for_path(("dblp", "book")),
        ]
        tags = guide.child_tags_of(contexts)
        assert tags["title"] == 3  # 2 article titles + 1 book title
        assert tags["editor"] == 1

    def test_descendant_tags_of(self, guide):
        book = guide.node_for_path(("dblp", "book"))
        assert guide.descendant_tags_of([book]) == {
            "title": 1,
            "editor": 1,
            "author": 1,
        }

    def test_child_tags_node_helpers(self, guide):
        book = guide.node_for_path(("dblp", "book"))
        assert book.child_tags() == ["title", "editor"]
        assert book.descendant_tags() == {"title", "editor", "author"}


class TestIncrementalBuild:
    def test_add_path_matches_document_build(self, guide):
        rebuilt = DataGuide()
        for node in guide.iter_nodes():
            rebuilt.add_path(node.path, node.count, node.text_count)
        assert len(rebuilt) == len(guide)
        for node in guide.iter_nodes():
            other = rebuilt.node_for_path(node.path)
            assert other is not None
            assert other.count == node.count
            assert other.text_count == node.text_count

    def test_multiple_documents_accumulate(self):
        guide = DataGuide()
        guide.add_document(parse_string("<r><a/></r>"))
        guide.add_document(parse_string("<r><a/><b/></r>"))
        assert guide.node_for_path(("r",)).count == 2
        assert guide.node_for_path(("r", "a")).count == 2
        assert guide.node_for_path(("r", "b")).count == 1
