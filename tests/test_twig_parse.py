"""The textual twig syntax parser."""

import pytest

from repro.twig.parse import TwigSyntaxError, parse_twig
from repro.twig.pattern import (
    Axis,
    ContainsPredicate,
    EqualsPredicate,
    RangePredicate,
)


class TestPaths:
    def test_single_node(self):
        pattern = parse_twig("//article")
        assert pattern.root.tag == "article"
        assert pattern.root.axis is Axis.DESCENDANT
        assert pattern.size == 1

    def test_root_child_axis(self):
        pattern = parse_twig("/dblp/article")
        assert pattern.root.axis is Axis.CHILD
        assert pattern.root.children[0].axis is Axis.CHILD

    def test_mixed_axes(self):
        pattern = parse_twig("//a/b//c")
        axes = [node.axis for node in pattern.nodes()]
        assert axes == [Axis.DESCENDANT, Axis.CHILD, Axis.DESCENDANT]

    def test_wildcard(self):
        pattern = parse_twig("//*/title")
        assert pattern.root.tag is None
        assert pattern.root.children[0].tag == "title"

    def test_default_output_is_last_main_step(self):
        pattern = parse_twig("//a/b/c")
        outputs = pattern.output_nodes()
        assert len(outputs) == 1
        assert outputs[0].tag == "c"

    def test_explicit_output_marker(self):
        pattern = parse_twig("//a[./b!]/c")
        assert [node.tag for node in pattern.output_nodes()] == ["b"]


class TestPredicates:
    def test_existence_branch(self):
        pattern = parse_twig("//a[./b][.//c]")
        children = pattern.root.children
        assert [child.tag for child in children] == ["b", "c"]
        assert children[0].axis is Axis.CHILD
        assert children[1].axis is Axis.DESCENDANT

    def test_bare_name_shorthand(self):
        assert (
            parse_twig("//a[b]").signature() == parse_twig("//a[./b]").signature()
        )

    def test_contains_predicate(self):
        pattern = parse_twig('//a[./t~"xml twig"]')
        predicate = pattern.root.children[0].predicate
        assert isinstance(predicate, ContainsPredicate)
        assert predicate.terms() == ("xml", "twig")

    def test_equals_string(self):
        pattern = parse_twig('//a[b="jiaheng lu"]')
        predicate = pattern.root.children[0].predicate
        assert isinstance(predicate, EqualsPredicate)
        assert predicate.value == "jiaheng lu"

    def test_numeric_equality_becomes_range(self):
        pattern = parse_twig("//a[year=2001]")
        predicate = pattern.root.children[0].predicate
        assert isinstance(predicate, RangePredicate)
        assert predicate.bound == 2001

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "!="])
    def test_range_operators(self, op):
        pattern = parse_twig(f"//a[year{op}2005]")
        predicate = pattern.root.children[0].predicate
        assert isinstance(predicate, RangePredicate)
        assert predicate.op.value == op

    def test_self_predicate(self):
        pattern = parse_twig('//title[.~"twig"]')
        assert isinstance(pattern.root.predicate, ContainsPredicate)

    def test_nested_branch_with_predicate(self):
        pattern = parse_twig('//a[./b[./c~"x"]]/d')
        b = pattern.root.children[0]
        assert b.tag == "b"
        assert b.children[0].tag == "c"
        assert isinstance(b.children[0].predicate, ContainsPredicate)
        assert pattern.root.children[1].tag == "d"

    def test_single_quoted_value(self):
        pattern = parse_twig("//a[b='x y']")
        assert isinstance(pattern.root.children[0].predicate, EqualsPredicate)

    def test_range_requires_number(self):
        with pytest.raises(ValueError, match="numeric"):
            parse_twig('//a[b<"text"]')


class TestOrdered:
    def test_ordered_prefix(self):
        pattern = parse_twig("ordered://a[./b][./c]")
        assert pattern.ordered

    def test_unordered_default(self):
        assert not parse_twig("//a[./b][./c]").ordered


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "article",          # missing axis
            "//",               # missing tag
            "//a[",             # unterminated predicate
            "//a[./b",          # unterminated predicate
            '//a[.~"x]',        # unterminated string
            "//a]b",            # trailing garbage
            "//a[.=]",          # missing value
            "//a[. ? 1]",       # bad operator
        ],
    )
    def test_rejected(self, text):
        with pytest.raises((TwigSyntaxError, ValueError)):
            parse_twig(text)

    def test_error_carries_offset(self):
        with pytest.raises(TwigSyntaxError) as info:
            parse_twig("//a[")
        assert info.value.position >= 3

    def test_duplicate_predicate_rejected(self):
        with pytest.raises(TwigSyntaxError, match="already has a predicate"):
            parse_twig('//a[.="x"][.="y"]')


class TestRoundTrip:
    QUERIES = [
        "//article",
        "/dblp/article//author",
        '//article[./title[.~"twig"]]',
        '//a[./b[.="v"]][.//c]/d',
        "ordered://a[./b][./c]",
        "//a[./year[.>=2005]]",
        "//*[./b!]",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_str_parse_fixpoint(self, query):
        pattern = parse_twig(query)
        assert parse_twig(str(pattern)).signature() == pattern.signature()
