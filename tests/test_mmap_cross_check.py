"""The seeded 400-case differential harness, served zero-copy.

Every case from the tier-1 harness matrix (ordered / optional /
negation / pruning, path and tree shapes) is round-tripped through a v3
snapshot and evaluated on an ``mmap``-backed database — monolithic and
2-shard — and must agree byte-for-byte (canonical region projection)
with the in-memory oracle.  This is the correctness backstop for the
zero-copy serving path: the int-only twig kernels, term postings, and
packed completion tries all run over ``memoryview`` slices of the
mapping here, not arrays.
"""

from __future__ import annotations

import pytest

from repro.engine.database import LotusXDatabase
from repro.engine.store import (
    is_mmap_backed,
    load_sharded_snapshot,
    load_snapshot,
    save_sharded_snapshot,
    save_snapshot,
)
from repro.shard.database import ShardedDatabase
from tests.test_shard_cross_check import SHARDS, _canonical
from tests.test_twig_cross_check import (
    HARNESS_BATCHES,
    HARNESS_CASES_PER_BATCH,
    _harness_document,
    _harness_pattern,
    _harness_shape,
)


@pytest.mark.parametrize("batch", range(HARNESS_BATCHES))
def test_mmap_mono_matches_agree_with_oracle(batch, tmp_path):
    for case in range(HARNESS_CASES_PER_BATCH):
        seed = batch * HARNESS_CASES_PER_BATCH + case
        shape = _harness_shape(case)
        prune = seed % 3 == 0
        oracle_db = LotusXDatabase(_harness_document(seed))
        path = tmp_path / f"case-{seed}.lxsnap"
        save_snapshot(oracle_db, path)
        mapped = load_snapshot(path, mmap="require")
        assert is_mmap_backed(mapped)
        pattern = _harness_pattern(seed, shape)
        context = f"seed={seed} shape={shape} prune={prune} pattern={pattern}"
        oracle = _canonical(oracle_db.matches(pattern, prune_streams=prune))
        got = _canonical(mapped.matches(pattern.copy(), prune_streams=prune))
        assert got == oracle, (
            f"mmap-backed database disagrees with oracle"
            f" ({len(got)} vs {len(oracle)} matches): {context}"
        )
        mapped.close()
        path.unlink()


@pytest.mark.parametrize("batch", range(HARNESS_BATCHES))
def test_mmap_sharded_matches_agree_with_oracle(batch, tmp_path):
    for case in range(HARNESS_CASES_PER_BATCH):
        seed = batch * HARNESS_CASES_PER_BATCH + case
        shape = _harness_shape(case)
        prune = seed % 3 == 0
        oracle_db = LotusXDatabase(_harness_document(seed))
        sharded = ShardedDatabase.from_document(
            _harness_document(seed), SHARDS, executor_mode="serial"
        )
        target = tmp_path / f"fleet-{seed}"
        save_sharded_snapshot(sharded, target)
        sharded.close()
        mapped = load_sharded_snapshot(target, executor_mode="serial", mmap=True)
        assert is_mmap_backed(mapped)
        pattern = _harness_pattern(seed, shape)
        context = f"seed={seed} shape={shape} prune={prune} pattern={pattern}"
        oracle = _canonical(oracle_db.matches(pattern, prune_streams=prune))
        got = _canonical(mapped.matches(pattern.copy(), prune_streams=prune))
        assert got == oracle, (
            f"mmap-backed 2-shard fleet disagrees with oracle"
            f" ({len(got)} vs {len(oracle)} matches): {context}"
        )
        mapped.close()
        for file in target.iterdir():
            file.unlink()
        target.rmdir()
