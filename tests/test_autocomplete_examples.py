"""Example-query suggestion."""

import pytest

from repro.autocomplete.examples import suggest_example_queries


class TestSuggestions:
    def test_all_verified_non_empty(self, small_db):
        for example in small_db.example_queries(k=5):
            assert small_db.matches(example.query), example.query

    def test_deterministic(self, small_db):
        first = [e.query for e in small_db.example_queries()]
        second = [e.query for e in small_db.example_queries()]
        assert first == second

    def test_k_respected(self, small_db):
        assert len(small_db.example_queries(k=2)) == 2

    def test_covers_distinct_record_types_first(self, dblp_db):
        examples = dblp_db.example_queries(k=6)
        parents = {e.query.split("/")[2].split("[")[0] for e in examples}
        assert len(parents) >= 2  # not all from one record type

    def test_value_predicate_examples_present(self, dblp_db):
        examples = dblp_db.example_queries(k=6)
        assert any("=" in e.query for e in examples)

    def test_descriptions_human_readable(self, small_db):
        for example in small_db.example_queries():
            assert "results" in example.description

    def test_raw_generator_suggests_parseable_queries(self, small_db):
        suggestions = suggest_example_queries(
            small_db.guide, small_db.completion_index, k=10
        )
        for suggestion in suggestions:
            small_db.parse_query(suggestion.query)  # must not raise

    def test_empty_ish_corpus(self):
        from repro.engine.database import LotusXDatabase

        db = LotusXDatabase.from_string("<r><a/></r>")  # no text anywhere
        assert db.example_queries() == []

    def test_api_endpoint(self, small_db):
        from repro.server.api import handle_examples

        data = handle_examples(small_db)
        assert data["examples"]
        assert {"query", "description"} <= set(data["examples"][0])
