"""Twig -> XPath / XQuery translation."""

import pytest

from repro.engine.translate import predicate_to_xpath, to_xpath, to_xquery
from repro.twig.parse import parse_twig
from repro.twig.pattern import (
    ComparisonOp,
    ContainsPredicate,
    EqualsPredicate,
    RangePredicate,
)


class TestPredicateTranslation:
    def test_contains(self):
        assert (
            predicate_to_xpath(ContainsPredicate("xml twig"))
            == 'contains(., "xml") and contains(., "twig")'
        )

    def test_equals(self):
        assert predicate_to_xpath(EqualsPredicate("Jiaheng Lu")) == '. = "jiaheng lu"'

    def test_range(self):
        assert predicate_to_xpath(RangePredicate(ComparisonOp.GE, 2005)) == (
            "number(.) >= 2005"
        )

    def test_range_eq_renders_single_equals(self):
        assert predicate_to_xpath(RangePredicate(ComparisonOp.EQ, 7)) == (
            "number(.) = 7"
        )


class TestXPath:
    @pytest.mark.parametrize(
        "twig,xpath",
        [
            ("//article", "//article"),
            ("//article/author", "//article/author"),
            ("/dblp//author", "/dblp//author"),
            ("//article[./title]/author", "//article[title]/author"),
            ("//article[.//title]/author", "//article[.//title]/author"),
            (
                '//article[./title~"twig"]/year',
                '//article[title[contains(., "twig")]]/year',
            ),
            ("//a[./b/c]/d", "//a[b[c]]/d"),
            ("//*[./b]", "//*[b]"),
        ],
    )
    def test_translation(self, twig, xpath):
        assert to_xpath(parse_twig(twig)) == xpath

    def test_output_node_is_selected(self):
        pattern = parse_twig("//article[./author!]/year")
        assert to_xpath(pattern) == "//article[year]/author"

    def test_self_predicate_on_spine(self):
        assert to_xpath(parse_twig('//title[.~"xml"]')) == (
            '//title[contains(., "xml")]'
        )

    def test_ordered_noted(self):
        xpath = to_xpath(parse_twig("ordered://a[./b][./c]"))
        assert "order-sensitive" in xpath


class TestXQuery:
    def test_root_output(self):
        xquery = to_xquery(parse_twig("//article[./year]"))
        assert xquery.splitlines()[0] == "for $m in doc($input)//article[year]"
        assert "{$m}" in xquery

    def test_non_root_output_bound(self):
        xquery = to_xquery(parse_twig("//article[./year]/title"))
        assert "let $o1 := $m/title" in xquery
        assert "return <hit>{$o1}</hit>" in xquery

    def test_multiple_outputs(self):
        xquery = to_xquery(parse_twig("//article[./title!][./author!]"))
        assert "let $o1" in xquery and "let $o2" in xquery
