"""Session undo/redo."""

import pytest

from repro.engine.session import QueryBuilderSession, SessionError


@pytest.fixture()
def session(small_db):
    return QueryBuilderSession(small_db)


class TestUndo:
    def test_undo_add_node(self, session):
        article = session.add_node("article")
        session.add_node("title", parent_id=article)
        assert session.pattern.size == 2
        session.undo()
        assert session.pattern.size == 1

    def test_undo_first_node_restores_empty_canvas(self, session):
        session.add_node("article")
        session.undo()
        assert session.pattern is None

    def test_undo_predicate(self, session):
        article = session.add_node("article")
        title = session.add_node("title", parent_id=article)
        session.set_predicate(title, "~", "twig")
        session.undo()
        assert session.pattern.find_node(title).predicate is None

    def test_undo_remove_node(self, session):
        article = session.add_node("article")
        title = session.add_node("title", parent_id=article)
        session.remove_node(title)
        assert session.pattern.size == 1
        session.undo()
        assert session.pattern.size == 2

    def test_undo_ordered_flag(self, session):
        article = session.add_node("article")
        session.add_node("title", parent_id=article)
        session.set_ordered(True)
        session.undo()
        assert not session.pattern.ordered

    def test_nothing_to_undo(self, session):
        with pytest.raises(SessionError, match="nothing to undo"):
            session.undo()

    def test_node_ids_survive_undo(self, session):
        article = session.add_node("article")
        title = session.add_node("title", parent_id=article)
        session.set_predicate(title, "~", "twig")
        session.undo()
        # The earlier handle still addresses the same node.
        session.set_predicate(title, "~", "xml")
        assert "xml" in str(session.pattern)


class TestRedo:
    def test_redo_restores(self, session):
        article = session.add_node("article")
        session.add_node("title", parent_id=article)
        session.undo()
        session.redo()
        assert session.pattern.size == 2

    def test_redo_cleared_by_new_gesture(self, session):
        article = session.add_node("article")
        session.add_node("title", parent_id=article)
        session.undo()
        session.add_node("author", parent_id=article)
        with pytest.raises(SessionError, match="nothing to redo"):
            session.redo()

    def test_undo_redo_roundtrip_preserves_query(self, session):
        article = session.add_node("article")
        title = session.add_node("title", parent_id=article)
        session.set_predicate(title, "~", "twig")
        before = session.query_text()
        session.undo()
        session.undo()
        session.redo()
        session.redo()
        assert session.query_text() == before

    def test_history_limit(self, session):
        session.HISTORY_LIMIT = 5
        article = session.add_node("article")
        for index in range(10):
            session.set_predicate(article, "~", f"term{index}")
        undone = 0
        while True:
            try:
                session.undo()
                undone += 1
            except SessionError:
                break
        assert undone == 5
