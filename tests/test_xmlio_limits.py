"""Resource limits in the XML layer: nesting depth and document size."""

import pytest

from repro.xmlio import XMLResourceLimitError
from repro.xmlio.builder import parse_file, parse_string
from repro.xmlio.parser import DEFAULT_MAX_DEPTH, PullParser, iter_events


def nested(depth: int) -> str:
    return "<a>" * depth + "</a>" * depth


class TestDepth:
    def test_default_rejects_degenerate_nesting(self):
        with pytest.raises(XMLResourceLimitError) as info:
            parse_string(nested(DEFAULT_MAX_DEPTH + 1))
        assert info.value.limit == DEFAULT_MAX_DEPTH

    def test_default_allows_deep_but_sane_nesting(self):
        document = parse_string(nested(DEFAULT_MAX_DEPTH))
        assert document.root.tag == "a"

    def test_custom_limit(self):
        text = "<a><b><c/></b></a>"
        with pytest.raises(XMLResourceLimitError):
            parse_string(text, max_depth=2)
        assert parse_string(text, max_depth=3).root.tag == "a"

    def test_none_disables_the_check(self):
        document = parse_string(nested(DEFAULT_MAX_DEPTH + 50), max_depth=None)
        assert document.root.tag == "a"

    def test_limit_applies_before_tree_materialization(self):
        # The pull parser itself raises, so even streaming consumers
        # (labeling, indexing) are protected.
        parser = PullParser(nested(5), max_depth=3)
        with pytest.raises(XMLResourceLimitError):
            list(parser)

    def test_iter_events_forwards_limits(self):
        with pytest.raises(XMLResourceLimitError):
            list(iter_events(nested(5), max_depth=3))


class TestSize:
    def test_oversized_string_rejected(self):
        with pytest.raises(XMLResourceLimitError) as info:
            parse_string("<a>hello</a>", max_size=5)
        assert info.value.limit == 5
        assert info.value.actual == len("<a>hello</a>")

    def test_size_none_disables_the_check(self):
        assert parse_string("<a>hello</a>", max_size=None).root.tag == "a"

    def test_oversized_file_rejected_before_decode(self, tmp_path):
        path = tmp_path / "big.xml"
        path.write_text("<a>" + "x" * 100 + "</a>")
        with pytest.raises(XMLResourceLimitError) as info:
            parse_file(path, max_size=50)
        assert "bytes" in str(info.value)

    def test_file_within_limit_parses(self, tmp_path):
        path = tmp_path / "ok.xml"
        path.write_text("<a>fine</a>")
        assert parse_file(path, max_size=1024).root.tag == "a"


class TestErrorShape:
    def test_is_an_xml_error(self):
        from repro.xmlio.errors import XMLError

        assert issubclass(XMLResourceLimitError, XMLError)

    def test_carries_limit_and_actual(self):
        error = XMLResourceLimitError("too big", limit=10, actual=20)
        assert error.limit == 10
        assert error.actual == 20
