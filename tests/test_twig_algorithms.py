"""Per-algorithm behaviour on hand-checkable documents.

Cross-algorithm agreement on random inputs lives in
``test_twig_cross_check.py``; these tests pin down *known* answers and
algorithm-specific properties (stats counters, blow-up behaviour,
PathStack's path-only contract).
"""

import pytest

from repro.index.element_index import StreamFactory
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.path_stack import path_stack_match
from repro.twig.algorithms.structural_join import (
    structural_join_match,
    structural_join_pairs,
)
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import sort_matches
from repro.twig.parse import parse_twig
from repro.twig.pattern import Axis
from repro.xmlio.builder import parse_string

XML = (
    "<dblp>"
    "<article><title>twig joins</title><author>lu</author><author>ling</author>"
    "<year>2002</year></article>"
    "<article><title>xml search</title><author>lin</author><year>2011</year></article>"
    "<book><editor><author>lu</author></editor><title>xml data</title>"
    "<year>2009</year></book>"
    "</dblp>"
)


@pytest.fixture(scope="module")
def ctx():
    labeled = label_document(parse_string(XML))
    term_index = TermIndex(labeled)
    return labeled, term_index, StreamFactory(labeled, term_index)


def run_all(ctx, query):
    labeled, term_index, factory = ctx
    pattern = parse_twig(query)
    streams = build_streams(pattern, factory)
    results = {
        "naive": sort_matches(naive_match(pattern, labeled, term_index)),
        "join": sort_matches(structural_join_match(pattern, streams)),
        "twig": sort_matches(twig_stack_match(pattern, streams)),
    }
    if pattern.is_path():
        results["path"] = sort_matches(path_stack_match(pattern, streams))
    return pattern, results


class TestKnownAnswers:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ("//article/author", 3),
            ("//dblp//author", 4),
            ("//book/author", 0),
            ("//book//author", 1),
            ('//article[./title~"twig"]', 1),
            ('//article[./author="lu"][./author="ling"]', 1),
            ("//article[year>=2005]/title", 1),
            ("//*[./author]", 4),  # 2 articles (3 authors) + editor (1)
            ("//dblp/book/editor/author", 1),
            ("//nosuchtag", 0),
        ],
    )
    def test_match_counts(self, ctx, query, expected):
        _, results = run_all(ctx, query)
        for name, matches in results.items():
            assert len(matches) == expected, (name, query)

    def test_all_algorithms_agree(self, ctx):
        for query in [
            "//article/author",
            "//dblp//author",
            '//article[./title~"xml"][./year]',
            "//*[./title][./year]",
            "//book//author",
        ]:
            _, results = run_all(ctx, query)
            baseline = results["naive"]
            for name, matches in results.items():
                assert matches == baseline, (name, query)


class TestStructuralJoinPairs:
    def test_descendant_pairs(self, ctx):
        labeled, _, _ = ctx
        pairs = structural_join_pairs(
            labeled.stream("dblp"), labeled.stream("author"), Axis.DESCENDANT
        )
        assert len(pairs) == 4

    def test_child_pairs_respect_level(self, ctx):
        labeled, _, _ = ctx
        pairs = structural_join_pairs(
            labeled.stream("book"), labeled.stream("author"), Axis.CHILD
        )
        assert pairs == []
        pairs = structural_join_pairs(
            labeled.stream("editor"), labeled.stream("author"), Axis.CHILD
        )
        assert len(pairs) == 1

    def test_self_join_excludes_identity(self, ctx):
        labeled, _, _ = ctx
        stream = labeled.stream("author")
        assert (
            structural_join_pairs(stream, stream, Axis.DESCENDANT) == []
        )

    def test_stats_count_pairs(self, ctx):
        labeled, _, _ = ctx
        stats = AlgorithmStats()
        structural_join_pairs(
            labeled.stream("article"), labeled.stream("author"), Axis.CHILD, stats
        )
        assert stats.intermediate_results == 3
        assert stats.elements_scanned == 2 + 4


class TestPathStack:
    def test_rejects_branching_patterns(self, ctx):
        _, _, factory = ctx
        pattern = parse_twig("//article[./title][./year]")
        streams = build_streams(pattern, factory)
        with pytest.raises(ValueError, match="linear path"):
            path_stack_match(pattern, streams)

    def test_single_node_pattern(self, ctx):
        _, _, factory = ctx
        pattern = parse_twig("//author")
        streams = build_streams(pattern, factory)
        assert len(path_stack_match(pattern, streams)) == 4


class TestTwigStackOptimality:
    def test_ad_only_twig_has_no_wasted_path_solutions(self, ctx):
        """For AD-only twigs, every TwigStack path solution joins into a
        final match (the I/O-optimality property)."""
        labeled, _, factory = ctx
        pattern = parse_twig("//article[.//author][.//year]")
        streams = build_streams(pattern, factory)
        stats = AlgorithmStats()
        matches = twig_stack_match(pattern, streams, stats)
        # Path solutions: one per (article, author) + one per (article, year).
        authors_under_articles = 3
        years_under_articles = 2
        assert stats.intermediate_results == (
            authors_under_articles + years_under_articles
        )
        assert len(matches) == 3  # 2 + 1 author/year combinations

    def test_stats_matches_counter(self, ctx):
        _, _, factory = ctx
        pattern = parse_twig("//article/author")
        streams = build_streams(pattern, factory)
        stats = AlgorithmStats()
        matches = twig_stack_match(pattern, streams, stats)
        assert stats.matches == len(matches) == 3


class TestExhaustedBranchRegression:
    def test_leaf_exhaustion_does_not_starve_sibling_branches(self):
        """Regression: when one leaf's stream is exhausted, get_next must
        not bubble it up — the other branch's leaf still has elements whose
        path solutions must be emitted (found by hypothesis)."""
        labeled = label_document(
            parse_string("<r><c><c><c><b><a><d><a/></d></a></b></c></c></c></r>")
        )
        factory = StreamFactory(labeled, TermIndex(labeled))
        pattern = parse_twig("//c[.//c[.//d[./*]]][.//a]")
        streams = build_streams(pattern, factory)
        matches = twig_stack_match(pattern, streams)
        oracle = naive_match(pattern, labeled, TermIndex(labeled))
        assert len(matches) == len(oracle) == 6
        assert sort_matches(matches) == sort_matches(oracle)


class TestRootPinning:
    def test_child_axis_root_pins_to_document_root(self, ctx):
        labeled, term_index, factory = ctx
        pattern = parse_twig("/article")
        streams = build_streams(pattern, factory)
        assert streams[pattern.root.node_id] == []
        assert twig_stack_match(pattern, streams) == []
        assert naive_match(pattern, labeled, term_index) == []

    def test_child_axis_root_matches_actual_root(self, ctx):
        labeled, term_index, factory = ctx
        pattern = parse_twig("/dblp/article")
        streams = build_streams(pattern, factory)
        matches = twig_stack_match(pattern, streams)
        assert len(matches) == 2
        assert matches == sort_matches(naive_match(pattern, labeled, term_index))


class TestWildcards:
    def test_wildcard_stream_and_matching(self, ctx):
        _, _, factory = ctx
        pattern = parse_twig("//*/editor")
        streams = build_streams(pattern, factory)
        matches = twig_stack_match(pattern, streams)
        assert len(matches) == 1  # only <book> is editor's parent
