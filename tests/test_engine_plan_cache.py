"""The compiled-plan cache: hit/miss accounting, independence from the
match cache, LRU eviction, generation-keyed invalidation on hot reload,
and the `/api/stats` cache payload."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp
from repro.engine.database import LotusXDatabase
from repro.server.api import handle_stats
from repro.server.reload import DatabaseHolder
from repro.twig.algorithms.common import AlgorithmStats
from repro.twig.planner import Algorithm


@pytest.fixture
def db() -> LotusXDatabase:
    return LotusXDatabase(generate_dblp(publications=12, seed=21))


def test_plan_cache_hits_and_misses(db):
    query = "//article[./title]/author"
    db.matches(query)
    assert db.counters["plan_cache_misses"] == 1
    assert db.counters["plan_cache_hits"] == 0
    # Second evaluation with stats bypasses the *match* cache but reuses
    # the compiled plan.
    db.matches(query, stats=AlgorithmStats())
    assert db.counters["plan_cache_misses"] == 1
    assert db.counters["plan_cache_hits"] == 1
    assert len(db._plan_cache) == 1


def test_plan_cache_key_discriminates(db):
    query = "//article/title"
    db.matches(query, stats=AlgorithmStats())
    db.matches(query, algorithm=Algorithm.TWIG_STACK, stats=AlgorithmStats())
    db.matches(query, prune_streams=True, stats=AlgorithmStats())
    db.matches("//article/year", stats=AlgorithmStats())
    assert db.counters["plan_cache_misses"] == 4
    assert db.counters["plan_cache_hits"] == 0
    assert len(db._plan_cache) == 4


def test_plan_cache_is_not_the_match_cache(db):
    query = "//inproceedings/author"
    first = db.matches(query)
    second = db.matches(query)
    assert second == first
    # The repeat was answered from the match cache without touching the
    # plan cache again.
    assert db.counters["match_cache_hits"] == 1
    assert db.counters["match_cache_misses"] == 1
    assert db.counters["plan_cache_misses"] == 1
    assert db.counters["plan_cache_hits"] == 0
    # Clearing the match cache forces re-execution, served by a plan hit.
    db._match_cache.clear()
    assert db.matches(query) == first
    assert db.counters["plan_cache_hits"] == 1


def test_plan_cache_evicts_lru(db):
    tags = sorted(db.labeled.tags())
    queries = [f"//{tag}" for tag in tags]
    # Fill past capacity with distinct signatures (small corpus, so
    # shrink the capacity instead of inventing hundreds of tags).
    db.PLAN_CACHE_SIZE = 4
    for query in queries[:5]:
        db.matches(query, stats=AlgorithmStats())
    assert len(db._plan_cache) == 4
    # The oldest plan fell out: evaluating it again is a miss.
    misses = db.counters["plan_cache_misses"]
    db.matches(queries[0], stats=AlgorithmStats())
    assert db.counters["plan_cache_misses"] == misses + 1
    # The most recent one is still a hit.
    hits = db.counters["plan_cache_hits"]
    db.matches(queries[4], stats=AlgorithmStats())
    assert db.counters["plan_cache_hits"] == hits + 1


def test_generation_stamp_invalidates_plans(db):
    holder = DatabaseHolder(db)
    assert db.serving_generation == 1
    query = "//article/title"
    db.matches(query, stats=AlgorithmStats())
    db.matches(query, stats=AlgorithmStats())
    assert db.counters["plan_cache_hits"] == 1
    # A swap restamps the generation; cached plans from the old
    # generation can no longer be served even to the same instance.
    holder.swap(db)
    assert db.serving_generation == 2
    db.matches(query, stats=AlgorithmStats())
    assert db.counters["plan_cache_hits"] == 1
    assert db.counters["plan_cache_misses"] == 2


def test_generation_advance_clears_stream_memo_and_completions(db):
    """Regression: stream-factory memo entries (and the completion
    cache) used to die only with the instance on hot reload — a swap
    installs a whole new database, so nothing ever went stale.  The
    live write path instead advances ``serving_generation`` on the
    *same* surviving instances (unchanged delta segments are kept), so
    the stamp move itself must shed every memoized filtered stream and
    cached completion list built under the old generation."""
    factory = db.streams
    factory.filtered_stream("article", lambda el: el.level == 1, key="drill")
    assert len(factory._filtered_cache) == 1
    db.complete_tag(prefix="a")
    assert db.autocomplete.cache_info()["entries"] >= 1
    db.matches("//article/title", stats=AlgorithmStats())
    assert db._plan_cache and db._match_cache is not None
    # A delta-segment apply restamps the generation without swapping
    # the instance: everything memoized under the old stamp must go.
    db.serving_generation = db.serving_generation + 1
    assert len(factory._filtered_cache) == 0
    assert not db._plan_cache
    assert not db._match_cache
    assert db.autocomplete.cache_info()["entries"] == 0
    # Re-stamping with the *same* value is a no-op (no cache churn).
    factory.filtered_stream("article", lambda el: el.level == 1, key="drill")
    db.serving_generation = db.serving_generation
    assert len(factory._filtered_cache) == 1


def test_parse_cache_counts(db):
    db.matches("//article/title")
    db.matches("//article/title")
    db.matches("//article/year")
    assert db.counters["parse_cache_misses"] == 2
    assert db.counters["parse_cache_hits"] == 1
    # Pattern objects bypass the parse cache entirely.
    db.matches(db.parse_query("//inproceedings"))
    assert db.counters["parse_cache_misses"] == 2
    assert db.counters["parse_cache_hits"] == 1


def test_cache_statistics_payload(db):
    db.matches("//article[./title]/author")
    db.complete_tag(prefix="a")
    stats = db.cache_statistics()
    assert stats["counters"]["plan_cache_misses"] == 1
    assert stats["counters"]["columnar_evaluations"] == 1
    assert stats["match_cache_entries"] == 1
    assert stats["plan_cache_entries"] == 1
    assert stats["parse_cache_entries"] == 1
    assert stats["columnar_enabled"] is True
    assert stats["autocomplete_cache"]["max_size"] == 256
    assert stats["autocomplete_cache"]["misses"] >= 1


def test_api_stats_exposes_caches(db):
    db.matches("//article/title")
    payload = handle_stats(db)
    caches = payload["caches"]
    assert caches == db.cache_statistics()
    assert caches["counters"]["match_cache_misses"] == 1
    assert caches["serving_generation"] == 0  # not behind a holder
