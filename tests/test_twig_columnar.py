"""Columnar twig kernels: agreement with the object-stream kernels,
plan-level representation selection, deadline behavior, the
object-stream fallback factory, and the filtered-stream memo."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp
from repro.engine.database import LotusXDatabase
from repro.index.element_index import StreamFactory
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.algorithms.common import AlgorithmStats
from repro.twig.match import sort_matches
from repro.twig.planner import Algorithm, evaluate

QUERIES = [
    "//article/title",
    "//inproceedings//author",
    "//article[./title]/author",
    "//article[./year]",
    "//*[./author]",
    "//dblp//article[./title][./author]",
    "ordered://article[./title][./author]",
    "//article[./note?]/title",
    "//article[not(/note)]",
]


@pytest.fixture(scope="module")
def db() -> LotusXDatabase:
    return LotusXDatabase(generate_dblp(publications=25, seed=13))


def _algorithms(pattern) -> list[Algorithm]:
    algorithms = [
        Algorithm.AUTO,
        Algorithm.STRUCTURAL_JOIN,
        Algorithm.TWIG_STACK,
        Algorithm.TJFAST,
    ]
    if pattern.is_path():
        algorithms.append(Algorithm.PATH_STACK)
    return algorithms


# ---------------------------------------------------------------------------
# Agreement: columnar and object kernels are interchangeable
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", QUERIES)
def test_columnar_agrees_with_object(db, query):
    pattern = db.parse_query(query)
    for algorithm in _algorithms(pattern):
        object_matches = sort_matches(
            evaluate(
                pattern, db.labeled, db.streams, algorithm, use_columnar=False
            )
        )
        columnar_matches = sort_matches(
            evaluate(
                pattern, db.labeled, db.streams, algorithm, use_columnar=True
            )
        )
        assert columnar_matches == object_matches, (query, algorithm)


@pytest.mark.parametrize("query", QUERIES)
def test_columnar_agrees_with_pruned_streams(db, query):
    pattern = db.parse_query(query)
    expected = sort_matches(
        evaluate(pattern, db.labeled, db.streams, use_columnar=False)
    )
    pruned = sort_matches(
        evaluate(
            pattern,
            db.labeled,
            db.streams,
            prune_streams=True,
            use_columnar=True,
        )
    )
    assert pruned == expected, query


def test_stats_note_records_representation(db):
    pattern = db.parse_query("//article[./title]/author")
    stats = AlgorithmStats()
    evaluate(pattern, db.labeled, db.streams, stats=stats, use_columnar=True)
    assert stats.notes["columnar"] == 1
    assert stats.elements_scanned > 0
    stats = AlgorithmStats()
    evaluate(pattern, db.labeled, db.streams, stats=stats, use_columnar=False)
    assert stats.notes["columnar"] == 0
    stats = AlgorithmStats()
    evaluate(
        pattern, db.labeled, db.streams, Algorithm.NAIVE, stats=stats
    )
    assert stats.notes["columnar"] == 0


def test_database_counts_columnar_evaluations(db):
    before = dict(db.counters)
    db.matches("//inproceedings/title", stats=AlgorithmStats())
    assert (
        db.counters["columnar_evaluations"]
        == before["columnar_evaluations"] + 1
    )
    assert db.counters["fallback_evaluations"] == before["fallback_evaluations"]


# ---------------------------------------------------------------------------
# Deadlines trip inside the columnar kernels
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "query, algorithm",
    [
        ("//article/title", Algorithm.PATH_STACK),
        ("//dblp//article/author", Algorithm.PATH_STACK),
        ("//article[./title]/author", Algorithm.TWIG_STACK),
        ("//article[./title]/author", Algorithm.STRUCTURAL_JOIN),
        ("//article[./title]/author", Algorithm.TJFAST),
    ],
)
def test_columnar_kernels_honor_deadlines(db, query, algorithm):
    pattern = db.parse_query(query)
    with pytest.raises(DeadlineExceeded):
        evaluate(
            pattern,
            db.labeled,
            db.streams,
            algorithm,
            deadline=Deadline(max_steps=5),
            use_columnar=True,
        )


def test_columnar_path_stack_salvages_partial(db):
    pattern = db.parse_query("//article/title")
    full = evaluate(pattern, db.labeled, db.streams, Algorithm.PATH_STACK)
    with pytest.raises(DeadlineExceeded) as info:
        evaluate(
            pattern,
            db.labeled,
            db.streams,
            Algorithm.PATH_STACK,
            deadline=Deadline(max_steps=10),
            use_columnar=True,
        )
    partial = info.value.partial
    assert partial
    assert {m.key() for m in partial} < {m.key() for m in full}


# ---------------------------------------------------------------------------
# The object-stream fallback factory (pre-columnar snapshots)
# ---------------------------------------------------------------------------


def test_fallback_factory_serves_object_streams(db):
    factory = StreamFactory(db.labeled, db.term_index, build_columnar=False)
    assert factory.supports_columnar() is False
    assert factory.columnar is None
    with pytest.raises(RuntimeError):
        factory.columnar_stream("article")
    pattern = db.parse_query("//article[./title]/author")
    stats = AlgorithmStats()
    matches = sort_matches(
        evaluate(pattern, db.labeled, factory, stats=stats)
    )
    assert stats.notes["columnar"] == 0
    assert matches == sort_matches(
        evaluate(pattern, db.labeled, db.streams, use_columnar=True)
    )


# ---------------------------------------------------------------------------
# Filtered-stream memoization (object + columnar)
# ---------------------------------------------------------------------------


def test_filtered_stream_memoized_by_tag_and_key(db):
    factory = StreamFactory(db.labeled, db.term_index)
    calls = []

    def young(el):
        calls.append(el)
        return True

    first = factory.filtered_stream("article", young, key="k1")
    scans = len(calls)
    assert scans == len(db.labeled.stream("article"))
    # Same (tag, key): served from the memo, filter not re-run.
    assert factory.filtered_stream("article", young, key="k1") is first
    assert len(calls) == scans
    # A different key or tag re-filters.
    assert factory.filtered_stream("article", young, key="k2") is not first
    factory.filtered_stream("author", young, key="k1")
    assert len(calls) > scans
    # No key: never memoized.
    assert factory.filtered_stream("article", young) is not first


def test_filtered_columnar_stream_memoized_separately(db):
    factory = StreamFactory(db.labeled, db.term_index)
    keep = lambda el: el.region.level >= 1  # noqa: E731
    object_view = factory.filtered_stream("article", keep, key="deep")
    columnar_view = factory.filtered_columnar_stream("article", keep, key="deep")
    # Same key, different representation namespaces.
    assert factory.filtered_columnar_stream("article", keep, key="deep") is (
        columnar_view
    )
    assert columnar_view.elements == object_view


def test_filtered_stream_memo_evicts_lru(db):
    factory = StreamFactory(db.labeled, db.term_index)
    keep = lambda el: True  # noqa: E731
    first = factory.filtered_stream("article", keep, key=0)
    for key in range(1, factory.FILTER_CACHE_SIZE + 1):
        factory.filtered_stream("article", keep, key=key)
    # The oldest entry fell out; a fresh list is built for it.
    assert factory.filtered_stream("article", keep, key=0) is not first
