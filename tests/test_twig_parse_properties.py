"""Property-based tests for the twig syntax (hypothesis).

Two properties:

* **round trip** — for any pattern the model can express (axes, wildcards,
  predicates of every kind, output markers, optional branches, ordered
  flag), ``parse_twig(str(pattern))`` reproduces the pattern's signature;
* **total parser** — arbitrary input never crashes with anything but
  :class:`TwigSyntaxError` / ``ValueError``.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.twig.parse import TwigSyntaxError, parse_twig
from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ComparisonOp,
    ContainsPredicate,
    EqualsPredicate,
    NotPredicate,
    RangePredicate,
    TwigPattern,
)

TAGS = ["alpha", "beta", "gamma", "d1", "x-y", "a.b"]
WORDS = ["red", "blue", "green", "deep"]


def _random_predicate(rng: random.Random):
    kind = rng.randrange(5)
    if kind == 0:
        return ContainsPredicate(
            tuple(rng.sample(WORDS, rng.randint(1, 2)))
        )
    if kind == 1:
        return NotPredicate(
            ContainsPredicate(tuple(rng.sample(WORDS, 1)))
        )
    if kind == 2:
        return EqualsPredicate(" ".join(rng.sample(WORDS, rng.randint(1, 2))))
    if kind == 3:
        op = rng.choice(
            [
                ComparisonOp.LT,
                ComparisonOp.LE,
                ComparisonOp.GT,
                ComparisonOp.GE,
                ComparisonOp.NE,
                ComparisonOp.EQ,
            ]
        )
        return RangePredicate(op, rng.randint(0, 3000))
    axis = Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT
    return AbsentBranchPredicate(rng.choice(TAGS), axis)


@st.composite
def patterns(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    pattern = TwigPattern(
        rng.choice(TAGS + [None]), ordered=rng.random() < 0.3
    )
    if rng.random() < 0.4:
        pattern.root.predicate = _random_predicate(rng)
    nodes = [pattern.root]
    for _ in range(draw(st.integers(0, 5))):
        parent = rng.choice(nodes)
        node = pattern.add_child(
            parent,
            rng.choice(TAGS + [None]),
            Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT,
            _random_predicate(rng) if rng.random() < 0.4 else None,
            is_output=rng.random() < 0.2,
            optional=rng.random() < 0.2 and parent.optional is False,
        )
        nodes.append(node)
    # The renderer emits the nested-bracket form, whose main path is just
    # the root — so the parser's default-output rule marks the root when
    # no node carries "!".  Normalize the generated pattern the same way
    # to make the round trip exact.
    if not any(node.is_output for node in pattern.nodes()):
        pattern.root.is_output = True
    return pattern


@given(patterns())
@settings(max_examples=300, deadline=None)
def test_render_parse_roundtrip(pattern):
    reparsed = parse_twig(str(pattern))
    assert reparsed.signature() == pattern.signature(), str(pattern)


@given(
    st.text(
        alphabet='/[]()!?~=<>."abcxyz0123456789 ordered:*@',
        min_size=0,
        max_size=40,
    )
)
@settings(max_examples=500, deadline=None)
def test_parser_is_total(text):
    try:
        parse_twig(text)
    except (TwigSyntaxError, ValueError):
        pass  # the only acceptable failures
