"""Benchmark smoke tests: every ``benchmarks/bench_*.py`` must *run*.

Benchmarks are code too — imports rot, fixtures drift, and an API change
can silently strand an experiment until someone next tries to reproduce
a table.  Each test here runs one bench file in a subprocess with
``LOTUSX_BENCH_SMOKE=1``, which shrinks every corpus to a toy size (see
``benchmarks/conftest.py``): the run takes seconds, exercises the full
code path, and skips only the scale-sensitive ``shape_check`` claims
that are meaningless on toy data.

Slow-marked: ``pytest -m slow tests/test_bench_smoke.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_FILES = sorted(path.name for path in BENCH_DIR.glob("bench_*.py"))


def test_bench_files_discovered():
    # Guard the glob itself: an empty parametrize list would silently
    # pass while covering nothing.
    assert len(BENCH_FILES) >= 16


@pytest.mark.slow
@pytest.mark.parametrize("bench_file", BENCH_FILES)
def test_bench_runs_at_smoke_scale(bench_file: str) -> None:
    env = os.environ.copy()
    env["LOTUSX_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            bench_file,
            "-q",
            "-x",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
        ],
        cwd=BENCH_DIR,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{bench_file} failed at smoke scale:\n"
        f"--- stdout ---\n{result.stdout}\n--- stderr ---\n{result.stderr}"
    )
