"""The replica fleet: health, selection, retries, hedging, breakers.

These tests drive :class:`ReplicaFleet` directly with stub "databases"
(the fleet never interprets them — tasks receive them verbatim), using
the fault harness at the per-replica sites
``fleet.replica.<shard>.<replica>`` exactly like production drills do.
"""

import random
import time

import pytest

from repro.fleet import FleetConfig, HealthPolicy, HealthTracker, LatencyWindow
from repro.fleet.fleet import ReplicaFleet
from repro.fleet.health import DEAD, HEALTHY, SUSPECT
from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded, ShardsUnavailable
from repro.resilience.retry import RetryPolicy

#: Fast-retry config used throughout: no real backoff sleeps.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


def make_fleet(shards=2, replicas=2, **config_kwargs) -> ReplicaFleet:
    config_kwargs.setdefault("retry", FAST_RETRY)
    config_kwargs.setdefault("hedge_ms", 0.0)  # hedging off unless asked
    config = FleetConfig(replicas=replicas, **config_kwargs)
    databases = [f"shard-{i}" for i in range(shards)]
    return ReplicaFleet(databases, config, rng=random.Random(42))


class TestHealthTracker:
    def test_consecutive_failures_walk_the_states(self):
        tracker = HealthTracker(HealthPolicy(suspect_after=1, dead_after=3))
        assert tracker.state == HEALTHY
        tracker.record_failure()
        assert tracker.state == SUSPECT
        tracker.record_failure()
        tracker.record_failure()
        assert tracker.state == DEAD

    def test_one_success_resets(self):
        tracker = HealthTracker(HealthPolicy(suspect_after=1, dead_after=2))
        tracker.record_failure()
        tracker.record_failure()
        assert tracker.state == DEAD
        tracker.record_success()
        assert tracker.state == HEALTHY

    def test_probe_pacing(self):
        now = [0.0]
        tracker = HealthTracker(
            HealthPolicy(probe_interval_s=0.25), clock=lambda: now[0]
        )
        assert not tracker.probe_due()  # healthy: never probed
        tracker.record_failure()
        assert tracker.probe_due()  # non-healthy, never probed
        tracker.note_probe()
        assert not tracker.probe_due()  # paced
        now[0] += 0.3
        assert tracker.probe_due()


class TestLatencyWindow:
    def test_percentile_of_empty_window_is_none(self):
        assert LatencyWindow().percentile(0.95) is None

    def test_percentile_reads(self):
        window = LatencyWindow(size=100)
        for ms in range(1, 101):
            window.record(ms / 1000.0)
        assert window.percentile(0.95) == pytest.approx(0.096)
        assert len(window) == 100

    def test_bounded_size(self):
        window = LatencyWindow(size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            window.record(value)
        assert len(window) == 4
        assert window.percentile(0.0) == 2.0  # 1.0 aged out


class TestRouting:
    def test_plain_call_returns_task_result(self):
        fleet = make_fleet()
        try:
            assert fleet.call(1, lambda db: db.upper()) == "SHARD-1"
            assert fleet.counters["calls"] == 1
        finally:
            fleet.close()

    def test_replicas_share_the_shard_database(self):
        fleet = make_fleet(shards=1, replicas=3)
        try:
            group = fleet.groups[0]
            assert len(group.replicas) == 3
            assert len({id(r.database) for r in group.replicas}) == 1
        finally:
            fleet.close()

    def test_failed_replica_is_retried_on_its_peer(self):
        fleet = make_fleet(shards=1, replicas=2)
        try:
            faults.install_spec("fleet.replica.0.0:error=down")
            assert fleet.call(0, lambda db: db) == "shard-0"
            assert fleet.counters["retries"] >= 1
            assert fleet.counters["failures"] >= 1
        finally:
            fleet.close()

    def test_unhealthy_replica_ranked_behind_peer(self):
        fleet = make_fleet(shards=1, replicas=2)
        try:
            faults.install_spec("fleet.replica.0.0:error=down,times=1")
            fleet.call(0, lambda db: db)  # replica 0 fails, 1 salvages
            faults.clear()
            replica0, replica1 = fleet.groups[0].replicas
            assert replica0.health.state != HEALTHY
            # Ranked selection now prefers replica 1 regardless of the
            # round-robin rotation.
            for _ in range(4):
                assert fleet.groups[0].pick() is replica1
        finally:
            fleet.close()

    def test_group_down_raises_shards_unavailable(self):
        fleet = make_fleet(shards=2, replicas=2)
        try:
            faults.install_spec(
                "fleet.replica.1.0:error=down;fleet.replica.1.1:error=down"
            )
            with pytest.raises(ShardsUnavailable) as excinfo:
                fleet.call(1, lambda db: db)
            assert excinfo.value.down == (1,)
            assert excinfo.value.site == "fleet.group.1"
            assert fleet.counters["groups_down"] == 1
            # The sibling shard still answers.
            assert fleet.call(0, lambda db: db) == "shard-0"
        finally:
            fleet.close()

    def test_deadline_exceeded_propagates_for_salvage(self):
        fleet = make_fleet(shards=1, replicas=2)
        try:
            deadline = Deadline.none()
            # The injected fault exhausts the budget at the replica site;
            # the task notices at its own cooperative checkpoint, exactly
            # like a real shard evaluation would.
            faults.install_spec("fleet.replica.0.*:exhaust=1")

            def task(db):
                deadline.check("fleet.test.task")
                return db

            with pytest.raises(DeadlineExceeded):
                fleet.call(0, task, deadline)
            # Budget exhaustion is the caller's problem, not the
            # replica's: no failure is charged to its health.
            assert fleet.groups[0].replicas[0].health.state == HEALTHY
        finally:
            fleet.close()


class TestBreakerIntegration:
    def test_hammered_replica_trips_and_is_skipped(self):
        # Health thresholds are set out of reach so ranked selection does
        # not shield the failing replica — this isolates the breaker.
        fleet = make_fleet(
            shards=1,
            replicas=2,
            breaker_min_calls=2,
            breaker_failure_threshold=0.5,
            breaker_cooldown_ms=60_000.0,
            suspect_after=50,
            dead_after=50,
        )
        try:
            faults.install_spec("fleet.replica.0.0:error=down")
            for _ in range(4):
                assert fleet.call(0, lambda db: db) == "shard-0"
            replica0 = fleet.groups[0].replicas[0]
            assert replica0.breaker.state == "open"
            failures_when_tripped = replica0.failures
            # Once open, replica 0 is skipped outright: no new failures.
            for _ in range(4):
                fleet.call(0, lambda db: db)
            assert replica0.failures == failures_when_tripped
        finally:
            fleet.close()

    def test_breaker_recovery_via_half_open_probe(self):
        now = [0.0]
        config = FleetConfig(
            replicas=2,
            retry=FAST_RETRY,
            hedge_ms=0.0,
            breaker_min_calls=1,
            breaker_failure_threshold=0.1,
            breaker_cooldown_ms=1_000.0,
        )
        fleet = ReplicaFleet(
            ["shard-0"], config, clock=lambda: now[0], rng=random.Random(1)
        )
        try:
            faults.install_spec("fleet.replica.0.0:error=down,times=1")
            fleet.call(0, lambda db: db)
            replica0 = fleet.groups[0].replicas[0]
            assert replica0.breaker.state == "open"
            now[0] += 1.5  # cooldown elapses -> half-open admits a probe
            for _ in range(4):
                fleet.call(0, lambda db: db)
            assert replica0.breaker.state == "closed"
        finally:
            fleet.close()


class TestHedging:
    def test_slow_primary_is_hedged_and_secondary_wins(self):
        fleet = make_fleet(shards=1, replicas=2, hedge_ms=20.0)
        try:
            faults.install_spec("fleet.replica.0.0:latency=0.25")
            started = time.perf_counter()
            assert fleet.call(0, lambda db: db) == "shard-0"
            elapsed = time.perf_counter() - started
            assert elapsed < 0.2  # did not wait out the slow primary
            assert fleet.counters["hedged_requests"] == 1
            assert fleet.counters["hedge_wins"] == 1
        finally:
            fleet.close()

    def test_fast_primary_never_hedges(self):
        fleet = make_fleet(shards=1, replicas=2, hedge_ms=200.0)
        try:
            for _ in range(5):
                assert fleet.call(0, lambda db: db) == "shard-0"
            assert fleet.counters["hedged_requests"] == 0
        finally:
            fleet.close()

    def test_hedged_failure_still_answers_from_any_leg(self):
        # The hedged-to replica is down; the slow primary still wins.
        fleet = make_fleet(shards=1, replicas=2, hedge_ms=10.0)
        try:
            faults.install_spec(
                "fleet.replica.0.0:latency=0.05;fleet.replica.0.1:error=down"
            )
            assert fleet.call(0, lambda db: db) == "shard-0"
        finally:
            fleet.close()

    def test_both_legs_down_is_group_down(self):
        fleet = make_fleet(shards=1, replicas=2, hedge_ms=5.0)
        try:
            faults.install_spec(
                "fleet.replica.0.0:latency=0.02,error=down;"
                "fleet.replica.0.1:error=down"
            )
            with pytest.raises(ShardsUnavailable):
                fleet.call(0, lambda db: db)
        finally:
            fleet.close()


class TestLifecycleAndStats:
    def test_close_is_idempotent_and_rejects_calls(self):
        fleet = make_fleet()
        fleet.close()
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.call(0, lambda db: db)

    def test_stats_shape(self):
        fleet = make_fleet(shards=2, replicas=2)
        try:
            fleet.call(0, lambda db: db)
            stats = fleet.stats()
            assert stats["replicas_per_shard"] == 2
            assert stats["hedging"] is False
            assert len(stats["groups"]) == 2
            replica = stats["groups"][0]["replicas"][0]
            assert replica["site"] == "fleet.replica.0.0"
            assert {"health", "breaker", "calls", "p95_ms"} <= replica.keys()
            for counter in (
                "calls",
                "failures",
                "retries",
                "hedged_requests",
                "hedge_wins",
                "breaker_skips",
                "probes",
                "groups_down",
            ):
                assert counter in stats["counters"]
        finally:
            fleet.close()

    def test_probes_repair_health_off_the_request_path(self):
        now = [0.0]
        config = FleetConfig(
            replicas=2,
            retry=FAST_RETRY,
            hedge_ms=0.0,
            probe_interval_ms=0.0,
        )
        fleet = ReplicaFleet(["shard-0"], config, rng=random.Random(9))
        try:
            faults.install_spec("fleet.replica.0.0:error=down,times=1")
            fleet.call(0, lambda db: db)
            replica0 = fleet.groups[0].replicas[0]
            assert replica0.health.state != HEALTHY
            faults.clear()
            # The next call schedules a probe; the probe (fault-free now)
            # marks the replica healthy again without routing load to it.
            fleet.call(0, lambda db: db)
            for _ in range(50):
                if replica0.health.state == HEALTHY:
                    break
                time.sleep(0.01)
            assert replica0.health.state == HEALTHY
        finally:
            fleet.close()
