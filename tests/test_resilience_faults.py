"""The fault-injection harness itself: registration, matching, kinds."""

import time

import pytest

from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded


class BoomError(RuntimeError):
    pass


class TestRegistry:
    def test_inactive_by_default(self):
        assert not faults.active()
        faults.fire("anything")  # no-op

    def test_inject_and_clear(self):
        faults.inject("a.site", error=BoomError("x"))
        assert faults.active()
        faults.clear()
        assert not faults.active()
        faults.fire("a.site")  # cleared fault no longer strikes

    def test_remove_single_fault(self):
        first = faults.inject("a", error=BoomError())
        faults.inject("b", error=BoomError())
        faults.remove(first)
        assert faults.active()  # "b" still registered
        faults.fire("a")  # removed fault is inert
        with pytest.raises(BoomError):
            faults.fire("b")

    def test_injected_context_manager(self):
        with faults.injected("ctx.site", error=BoomError()):
            with pytest.raises(BoomError):
                faults.fire("ctx.site")
        assert not faults.active()
        faults.fire("ctx.site")


class TestMatching:
    def test_exact_site_match(self):
        with faults.injected("twig.twig_stack", error=BoomError()):
            faults.fire("twig.path_stack")  # different site: no strike
            with pytest.raises(BoomError):
                faults.fire("twig.twig_stack")

    def test_wildcard_match(self):
        with faults.injected("twig.*", error=BoomError()):
            faults.fire("keyword.slca")
            with pytest.raises(BoomError):
                faults.fire("twig.merge")


class TestDeterminism:
    def test_times_limits_strikes(self):
        with faults.injected("s", error=BoomError(), times=2) as fault:
            with pytest.raises(BoomError):
                faults.fire("s")
            with pytest.raises(BoomError):
                faults.fire("s")
            faults.fire("s")  # third hit passes through
            assert fault.fired == 2
            assert fault.hits == 3

    def test_skip_delays_first_strike(self):
        with faults.injected("s", error=BoomError(), skip=2):
            faults.fire("s")
            faults.fire("s")
            with pytest.raises(BoomError):
                faults.fire("s")

    def test_skip_then_times(self):
        with faults.injected("s", error=BoomError(), skip=1, times=1):
            faults.fire("s")
            with pytest.raises(BoomError):
                faults.fire("s")
            faults.fire("s")


class TestKinds:
    def test_error_class_is_instantiated(self):
        with faults.injected("s", error=BoomError):
            with pytest.raises(BoomError):
                faults.fire("s")

    def test_latency_sleeps(self):
        with faults.injected("s", latency_s=0.05):
            started = time.perf_counter()
            faults.fire("s")
            assert time.perf_counter() - started >= 0.04

    def test_exhaust_deadline_trips_without_waiting(self):
        deadline = Deadline.none()
        with faults.injected("s", exhaust_deadline=True):
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                deadline.check("s")
            assert time.perf_counter() - started < 0.1  # no real sleep
        assert deadline.tripped

    def test_exhaust_without_deadline_is_harmless(self):
        with faults.injected("s", exhaust_deadline=True):
            faults.fire("s", deadline=None)

    def test_deadline_check_is_a_fault_point(self):
        deadline = Deadline.none()
        with faults.injected("my.loop", error=BoomError()):
            with pytest.raises(BoomError):
                deadline.check("my.loop")


class TestSpecParsing:
    def test_single_error_entry(self):
        (fault,) = faults.parse_spec("fleet.replica.0.1:error=crash")
        assert fault.site == "fleet.replica.0.1"
        assert isinstance(fault.error, RuntimeError)
        assert str(fault.error) == "crash"

    def test_multiple_entries_and_options(self):
        parsed = faults.parse_spec(
            "a:latency=0.05,times=3;b.*:error=x,skip=2;c:exhaust=1;d:exit=9"
        )
        assert [fault.site for fault in parsed] == ["a", "b.*", "c", "d"]
        assert parsed[0].latency_s == 0.05
        assert parsed[0].times == 3
        assert parsed[1].skip == 2
        assert parsed[2].exhaust_deadline is True
        assert parsed[3].exit_code == 9

    def test_empty_and_whitespace_entries_are_skipped(self):
        assert faults.parse_spec("") == []
        assert faults.parse_spec(" ; ;") == []

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_spec("site:frobnicate=1")

    def test_missing_site_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_spec(":error=x")

    def test_install_spec_registers_and_strikes(self):
        faults.install_spec("spec.site:error=boom,times=1")
        with pytest.raises(RuntimeError, match="boom"):
            faults.fire("spec.site")
        faults.fire("spec.site")  # times=1 exhausted

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.FAULT_SPEC_ENV, "env.site:error=zap")
        installed = faults.install_from_env()
        assert len(installed) == 1
        with pytest.raises(RuntimeError, match="zap"):
            faults.fire("env.site")

    def test_install_from_env_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv(faults.FAULT_SPEC_ENV, raising=False)
        assert faults.install_from_env() == []
