"""Property-based tests for labeling invariants (hypothesis).

On arbitrary random documents, every label kind must agree with the tree
and with the other kinds: region containment == tree ancestry == Dewey
prefixing == extended-Dewey prefixing, document order is shared, and
extended Dewey decodes every element's tag path exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling.assign import label_document
from repro.xmlio.tree import Document, Element

TAGS = ["a", "b", "c", "d", "e"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(0, 30))
    root = Element("root")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        child = parent.make_child(rng.choice(TAGS))
        pool.append(child)
        if len(pool) > 8:
            pool.pop(0)
    return Document(root)


@given(documents())
@settings(max_examples=150, deadline=None)
def test_extended_dewey_decodes_every_path(document):
    labeled = label_document(document)
    for element in labeled.elements:
        assert labeled.decoder.decode(element.xdewey) == element.element.path()


@given(documents())
@settings(max_examples=100, deadline=None)
def test_all_label_kinds_agree_on_ancestry(document):
    labeled = label_document(document)
    elements = labeled.elements
    for first in elements:
        first_descendants = set(map(id, first.element.iter_descendants()))
        for second in elements:
            truth = id(second.element) in first_descendants
            assert first.region.is_ancestor_of(second.region) == truth
            assert first.dewey.is_ancestor_of(second.dewey) == truth
            assert first.xdewey.is_ancestor_of(second.xdewey) == truth


@given(documents())
@settings(max_examples=100, deadline=None)
def test_document_order_is_shared(document):
    labeled = label_document(document)
    by_region = sorted(labeled.elements, key=lambda e: e.region)
    by_dewey = sorted(labeled.elements, key=lambda e: e.dewey)
    by_xdewey = sorted(labeled.elements, key=lambda e: e.xdewey)
    assert by_region == by_dewey == by_xdewey == labeled.elements


@given(documents())
@settings(max_examples=100, deadline=None)
def test_region_levels_and_subtree_sizes(document):
    labeled = label_document(document)
    for element in labeled.elements:
        assert element.region.level == len(element.element.path()) - 1
        descendants = sum(1 for _ in element.element.iter_descendants())
        width = element.region.end - element.region.start - 1
        assert width == 2 * descendants


@given(documents())
@settings(max_examples=100, deadline=None)
def test_dataguide_counts_sum_to_element_count(document):
    labeled = label_document(document)
    assert sum(node.count for node in labeled.guide.iter_nodes()) == len(labeled)
    for node in labeled.guide.iter_nodes():
        occurrences = sum(
            1 for e in labeled.elements if e.element.path() == node.path
        )
        assert occurrences == node.count
