"""Property-based tests for labeling invariants (hypothesis).

On arbitrary random documents, every label kind must agree with the tree
and with the other kinds: region containment == tree ancestry == Dewey
prefixing == extended-Dewey prefixing, document order is shared, and
extended Dewey decodes every element's tag path exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling.assign import label_document
from repro.xmlio.tree import Document, Element

TAGS = ["a", "b", "c", "d", "e"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(0, 30))
    root = Element("root")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        child = parent.make_child(rng.choice(TAGS))
        pool.append(child)
        if len(pool) > 8:
            pool.pop(0)
    return Document(root)


@given(documents())
@settings(max_examples=150, deadline=None)
def test_extended_dewey_decodes_every_path(document):
    labeled = label_document(document)
    for element in labeled.elements:
        assert labeled.decoder.decode(element.xdewey) == element.element.path()


@given(documents())
@settings(max_examples=100, deadline=None)
def test_all_label_kinds_agree_on_ancestry(document):
    labeled = label_document(document)
    elements = labeled.elements
    for first in elements:
        first_descendants = set(map(id, first.element.iter_descendants()))
        for second in elements:
            truth = id(second.element) in first_descendants
            assert first.region.is_ancestor_of(second.region) == truth
            assert first.dewey.is_ancestor_of(second.dewey) == truth
            assert first.xdewey.is_ancestor_of(second.xdewey) == truth


@given(documents())
@settings(max_examples=100, deadline=None)
def test_document_order_is_shared(document):
    labeled = label_document(document)
    by_region = sorted(labeled.elements, key=lambda e: e.region)
    by_dewey = sorted(labeled.elements, key=lambda e: e.dewey)
    by_xdewey = sorted(labeled.elements, key=lambda e: e.xdewey)
    assert by_region == by_dewey == by_xdewey == labeled.elements


@given(documents())
@settings(max_examples=100, deadline=None)
def test_region_levels_and_subtree_sizes(document):
    labeled = label_document(document)
    for element in labeled.elements:
        assert element.region.level == len(element.element.path()) - 1
        descendants = sum(1 for _ in element.element.iter_descendants())
        width = element.region.end - element.region.start - 1
        assert width == 2 * descendants


@given(documents())
@settings(max_examples=100, deadline=None)
def test_dataguide_counts_sum_to_element_count(document):
    labeled = label_document(document)
    assert sum(node.count for node in labeled.guide.iter_nodes()) == len(labeled)
    for node in labeled.guide.iter_nodes():
        occurrences = sum(
            1 for e in labeled.elements if e.element.path() == node.path
        )
        assert occurrences == node.count


# ----------------------------------------------------------------------
# Gap allocation (the write path's incremental labeling substrate)
# ----------------------------------------------------------------------
#
# The live write path leans on two promises from :mod:`repro.labeling.region`:
# existing labels are never touched until :class:`GapExhausted` says the
# gap is genuinely too small (the relabel trigger), and labels assigned
# into a gap are exactly what the full labeler would have produced at
# that position (the dense-label/byte-identity requirement).

import pytest

from repro.labeling.region import (
    GapExhausted,
    Region,
    RegionAllocator,
    TickBlock,
    label_subtree_into_gap,
    subtree_tick_width,
)


def _assert_allocator_invariants(allocator: RegionAllocator) -> None:
    """Blocks are even-width, inside the interval, sorted, and disjoint."""
    for block in allocator.blocks:
        assert block.width > 0 and block.width % 2 == 0
        assert block.base >= allocator.lo + 1
        if allocator.hi is not None:
            assert block.limit <= allocator.hi
    for left, right in zip(allocator.blocks, allocator.blocks[1:]):
        assert left.limit <= right.base


@given(st.integers(0, 2**32 - 1), st.booleans())
@settings(max_examples=120, deadline=None)
def test_allocator_random_ops_preserve_disjoint_sorted_blocks(seed, bounded):
    """Model check over random allocate/release/resize sequences.

    ``GapExhausted`` exactness: an operation raises it if and only if the
    gap reported beforehand cannot hold the request — and a refused
    operation changes nothing.
    """
    rng = random.Random(seed)
    hi = rng.randrange(21, 201) if bounded else None
    allocator = RegionAllocator(0, hi)
    for _ in range(80):
        snapshot = [(block.base, block.width) for block in allocator.blocks]
        roll = rng.random()
        if roll < 0.45 or not allocator.blocks:
            width = 2 * rng.randint(1, 6)
            after = (
                rng.choice([None, *allocator.blocks])
                if rng.random() < 0.8
                else None
            )
            fits = allocator.gap_after(after) >= width
            if fits:
                block = allocator.allocate(width, after)
                assert block.width == width
                assert block in allocator.blocks
            else:
                with pytest.raises(GapExhausted):
                    allocator.allocate(width, after)
                assert [
                    (block.base, block.width) for block in allocator.blocks
                ] == snapshot
        elif roll < 0.65:
            width = 2 * rng.randint(1, 8)
            fits = allocator.gap_after(
                allocator.blocks[-1] if allocator.blocks else None
            ) >= width
            if fits:
                block = allocator.allocate_tail(width)
                assert block is allocator.blocks[-1]
            else:
                with pytest.raises(GapExhausted):
                    allocator.allocate_tail(width)
        elif roll < 0.8:
            victim = rng.choice(allocator.blocks)
            allocator.release(victim)
            assert victim not in allocator.blocks
        else:
            block = rng.choice(allocator.blocks)
            width = 2 * rng.randint(1, 8)
            grow = width - block.width
            fits = grow <= 0 or allocator.gap_after(block) >= grow
            if fits:
                base_before = block.base
                allocator.resize(block, width)
                assert (block.base, block.width) == (base_before, width)
            else:
                with pytest.raises(GapExhausted):
                    allocator.resize(block, width)
                assert [
                    (candidate.base, candidate.width)
                    for candidate in allocator.blocks
                ] == snapshot
        _assert_allocator_invariants(allocator)


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_allocation_never_moves_existing_blocks(seed):
    """The no-relabel promise: until ``GapExhausted``, every previously
    allocated block keeps its exact base and width."""
    rng = random.Random(seed)
    allocator = RegionAllocator(0, rng.randrange(41, 161))
    placed: list[tuple[TickBlock, int, int]] = []
    while True:
        width = 2 * rng.randint(1, 5)
        after = rng.choice([None, *allocator.blocks]) if allocator.blocks else None
        try:
            block = allocator.allocate(width, after)
        except GapExhausted:
            break
        placed.append((block, block.base, block.width))
        for earlier, base, earlier_width in placed:
            assert (earlier.base, earlier.width) == (base, earlier_width)
    assert all(
        (block.base, block.width) == (base, width)
        for block, base, width in placed
    )


def _random_subtree(rng: random.Random, size: int) -> Element:
    root = Element(rng.choice(TAGS))
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        pool.append(parent.make_child(rng.choice(TAGS)))
    return root


@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 20),
    st.integers(0, 50),
    st.integers(0, 6),
)
@settings(max_examples=120, deadline=None)
def test_gap_labels_equal_full_labeler_at_that_position(seed, size, lo, level):
    """Dense-label equivalence: ``label_subtree_into_gap`` must emit, for
    every node, exactly the full labeler's region shifted by the gap
    start — this is what makes delta segments byte-identical to a
    from-scratch rebuild."""
    rng = random.Random(seed)
    subtree = _random_subtree(rng, size)
    need = subtree_tick_width(subtree)
    labels = label_subtree_into_gap(subtree, lo, lo + need + 1, level)

    oracle = label_document(Document(_random_subtree(random.Random(seed), size)))
    assert len(labels) == len(oracle.elements) == size + 1
    for (node, region), expected in zip(labels, oracle.elements):
        assert node.tag == expected.element.tag
        assert region.start == expected.region.start + lo + 1
        assert region.end == expected.region.end + lo + 1
        assert region.level == expected.region.level + level


@given(st.integers(0, 2**32 - 1), st.integers(0, 25), st.integers(0, 40))
@settings(max_examples=120, deadline=None)
def test_gap_labels_are_dense_ordered_and_contained(seed, size, lo):
    """Structural invariants inside the gap: every tick used exactly
    once, preorder document order, containment == ancestry, and nothing
    labeled outside ``(lo, hi)``."""
    rng = random.Random(seed)
    subtree = _random_subtree(rng, size)
    need = subtree_tick_width(subtree)
    hi = lo + need + 1
    labels = label_subtree_into_gap(subtree, lo, hi, 3)

    ticks = sorted(
        tick for _, region in labels for tick in (region.start, region.end)
    )
    assert ticks == list(range(lo + 1, lo + 1 + need))  # dense, inside the gap
    assert all(lo < region.start < region.end < hi for _, region in labels)
    starts = [region.start for _, region in labels]
    assert starts == sorted(starts)  # preorder == document order

    regions = {id(node): region for node, region in labels}
    for node, region in labels:
        for descendant in node.iter_descendants():
            assert region.is_ancestor_of(regions[id(descendant)])
        for child in node.child_elements():
            assert regions[id(child)].is_child_of(region)


@given(st.integers(0, 2**32 - 1), st.integers(1, 20), st.integers(0, 30))
@settings(max_examples=100, deadline=None)
def test_gap_exhausted_exactly_when_gap_too_small(seed, size, slack):
    """``GapExhausted`` iff the gap holds fewer than ``2 * n`` ticks; a
    refused call labels nothing."""
    rng = random.Random(seed)
    subtree = _random_subtree(rng, size - 1)  # size elements total
    need = subtree_tick_width(subtree)
    assert need == 2 * size

    # One tick short must refuse; exact fit and anything larger must work.
    with pytest.raises(GapExhausted):
        label_subtree_into_gap(subtree, 10, 10 + need, 0)
    exact = label_subtree_into_gap(subtree, 10, 10 + need + 1, 0)
    assert len(exact) == size
    roomy = label_subtree_into_gap(subtree, 10, 10 + need + 1 + slack, 0)
    assert [region for _, region in roomy] == [region for _, region in exact]
    unbounded = label_subtree_into_gap(subtree, 10, None, 0)
    assert [region for _, region in unbounded] == [region for _, region in exact]


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_random_insert_positions_keep_all_subtree_labels_disjoint(seed):
    """End-to-end gap-insertion drill: subtrees allocated at arbitrary
    positions get labels that never overlap any earlier subtree's, and
    earlier labels survive verbatim — relabeling is needed only once
    ``GapExhausted`` fires."""
    rng = random.Random(seed)
    allocator = RegionAllocator(0, 2 * rng.randrange(30, 90))
    labeled_blocks: list[tuple[TickBlock, list[Region]]] = []
    for _ in range(30):
        subtree = _random_subtree(rng, rng.randint(0, 4))
        width = subtree_tick_width(subtree)
        after = rng.choice([None, *allocator.blocks]) if allocator.blocks else None
        try:
            block = allocator.allocate(width, after)
        except GapExhausted:
            continue  # the write path would trigger a relabel here
        labels = label_subtree_into_gap(subtree, block.base - 1, block.limit, 1)
        regions = [region for _, region in labels]
        assert all(
            block.base <= region.start < region.end < block.limit
            for region in regions
        )
        for _, earlier in labeled_blocks:
            for mine in regions:
                assert not any(mine.overlaps(old) for old in earlier)
        labeled_blocks.append((block, regions))
    assert labeled_blocks, "schedule never managed a single insertion"
