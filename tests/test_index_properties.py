"""Property-based tests for the index layer (hypothesis).

The term index's subtree operations must agree with brute-force text
scans, and position-aware completion must be exactly the occurrences at
the DataGuide positions.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.term_index import TermIndex
from repro.index.text import tokenize
from repro.labeling.assign import label_document
from repro.xmlio.tree import Document, Element

TAGS = ["x", "y", "z"]
WORDS = ["apple", "pear", "plum", "fig"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(1, 25))
    root = Element("root")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        child = parent.make_child(rng.choice(TAGS))
        if rng.random() < 0.6:
            child.append_text(
                " ".join(rng.choice(WORDS) for _ in range(rng.randint(1, 3)))
            )
        pool.append(child)
        if len(pool) > 6:
            pool.pop(0)
    return Document(root)


def _subtree_tokens(element):
    """Tokens of a subtree, tokenized per element (concatenating text
    across elements would merge adjacent tokens)."""
    tokens = []
    for node in element.element.iter():
        tokens.extend(tokenize(node.direct_text))
    return tokens


@given(documents(), st.sampled_from(WORDS))
@settings(max_examples=150, deadline=None)
def test_subtree_contains_matches_bruteforce(document, term):
    labeled = label_document(document)
    index = TermIndex(labeled)
    for element in labeled.elements:
        truth = term in _subtree_tokens(element)
        assert index.subtree_contains(element, term) == truth


@given(documents(), st.sampled_from(WORDS))
@settings(max_examples=100, deadline=None)
def test_subtree_term_frequency_matches_bruteforce(document, term):
    labeled = label_document(document)
    index = TermIndex(labeled)
    for element in labeled.elements:
        truth = _subtree_tokens(element).count(term)
        assert index.subtree_term_frequency(element, term) == truth


@given(documents())
@settings(max_examples=100, deadline=None)
def test_document_frequency_matches_bruteforce(document):
    labeled = label_document(document)
    index = TermIndex(labeled)
    for term in WORDS:
        truth = sum(
            1
            for element in labeled.elements
            if term in tokenize(element.element.direct_text)
        )
        assert index.document_frequency(term) == truth


@given(documents())
@settings(max_examples=75, deadline=None)
def test_value_postings_match_bruteforce(document):
    labeled = label_document(document)
    index = TermIndex(labeled)
    for element in labeled.elements:
        text = " ".join(element.element.direct_text.lower().split())
        if text:
            assert element.order in index.elements_with_value(text)
