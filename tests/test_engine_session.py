"""The query-builder session (headless GUI model)."""

import pytest

from repro.engine.session import QueryBuilderSession, SessionError
from repro.twig.pattern import Axis


@pytest.fixture()
def session(small_db):
    return QueryBuilderSession(small_db)


class TestCanvasLifecycle:
    def test_empty_canvas_rejects_queries(self, session):
        with pytest.raises(SessionError, match="empty"):
            session.query_text()
        with pytest.raises(SessionError):
            session.run()

    def test_first_node_creates_pattern(self, session):
        node_id = session.add_node("article")
        assert session.pattern is not None
        assert session.pattern.root.node_id == node_id

    def test_second_root_rejected(self, session):
        session.add_node("article")
        with pytest.raises(SessionError, match="already has a root"):
            session.add_node("book")

    def test_unknown_parent_rejected(self, session):
        session.add_node("article")
        with pytest.raises(SessionError, match="no query node"):
            session.add_node("title", parent_id=999)

    def test_reset(self, session):
        session.add_node("article")
        session.reset()
        assert session.pattern is None

    def test_remove_root_clears_canvas(self, session):
        root = session.add_node("article")
        session.remove_node(root)
        assert session.pattern is None

    def test_remove_subtree(self, session):
        root = session.add_node("article")
        title = session.add_node("title", parent_id=root)
        session.add_node("author", parent_id=root)
        session.remove_node(title)
        assert session.pattern.size == 2


class TestBuildAndRun:
    def test_full_gui_flow(self, session):
        # The canonical demo flow: suggestions -> nodes -> predicate -> run.
        first_suggestions = session.suggest_tags(prefix="art")
        assert first_suggestions[0].text == "article"

        article = session.add_node("article")
        tag_candidates = {c.text for c in session.suggest_tags(parent_id=article)}
        assert "title" in tag_candidates and "booktitle" not in tag_candidates

        title = session.add_node("title", parent_id=article)
        value_candidates = session.suggest_values(title, "holistic")
        assert value_candidates and "holistic" in value_candidates[0].text

        session.set_predicate(title, "~", "twig")
        author = session.add_node("author", parent_id=article)
        session.set_output(author)

        assert session.preview_count() == 2
        assert session.is_satisfiable()
        response = session.run(k=10)
        assert len(response) == 2
        assert {hit.primary.tag for hit in response} == {"author"}

    def test_set_axis(self, session):
        book = session.add_node("book")
        author = session.add_node("author", parent_id=book)
        assert session.preview_count() == 0
        session.set_axis(author, Axis.DESCENDANT)
        assert session.preview_count() == 1

    def test_root_axis_change_rejected(self, session):
        root = session.add_node("book")
        with pytest.raises(SessionError, match="no incoming edge"):
            session.set_axis(root, Axis.CHILD)

    def test_predicates(self, session):
        article = session.add_node("article")
        year = session.add_node("year", parent_id=article)
        session.set_predicate(year, ">=", "2010")
        assert session.preview_count() == 1
        session.clear_predicate(year)
        assert session.preview_count() == 2

    def test_ordered_flag(self, session):
        article = session.add_node("article")
        session.add_node("author", parent_id=article)
        session.add_node("year", parent_id=article)
        count_unordered = session.preview_count()
        session.set_ordered(True)
        assert session.query_text().startswith("ordered:")
        assert session.preview_count() == count_unordered  # authors precede years

    def test_order_constraint(self, session):
        article = session.add_node("article")
        year = session.add_node("year", parent_id=article)
        author = session.add_node("author", parent_id=article)
        session.add_order_constraint(year, author)  # year before author: never
        assert session.preview_count() == 0

    def test_wildcard_node(self, session):
        anything = session.add_node(None)
        session.add_node("booktitle", parent_id=anything)
        assert session.preview_count() == 2

    def test_translations(self, session):
        article = session.add_node("article")
        session.add_node("title", parent_id=article)
        assert "//article" in session.to_xpath()
        assert "for $m" in session.to_xquery()

    def test_unsatisfiable_detected(self, session):
        article = session.add_node("article")
        session.add_node("publisher", parent_id=article)
        assert not session.is_satisfiable()

    def test_run_with_rewrite_recovers(self, session):
        article = session.add_node("article")
        session.add_node("publisher", parent_id=article)
        response = session.run()
        assert response.used_rewrites
        assert response.results
