"""Multi-document collections."""

import pytest

from repro.engine.database import LotusXDatabase


@pytest.fixture(scope="module")
def files(tmp_path_factory):
    base = tmp_path_factory.mktemp("collection")
    first = base / "journals.xml"
    first.write_text(
        "<dblp><article><title>twig joins</title><author>lu</author></article></dblp>",
        encoding="utf-8",
    )
    second = base / "conferences.xml"
    second.write_text(
        "<dblp><inproceedings><title>lotusx</title><author>lin</author>"
        "</inproceedings></dblp>",
        encoding="utf-8",
    )
    return [first, second]


class TestCollections:
    def test_queries_span_all_files(self, files):
        db = LotusXDatabase.from_files(files)
        assert len(db.matches("//author")) == 2
        assert db.document.root.tag == "collection"

    def test_custom_collection_tag(self, files):
        db = LotusXDatabase.from_files(files, collection_tag="library")
        assert len(db.matches("/library/dblp")) == 2

    def test_source_attribute_filtering(self, files):
        db = LotusXDatabase.from_files(files, expand_attributes=True)
        matches = db.matches('//dblp[./@source="journals.xml"]//author')
        assert len(matches) == 1

    def test_annotate_source_disabled(self, files):
        db = LotusXDatabase.from_files(
            files, annotate_source=False, expand_attributes=True
        )
        assert db.matches("//dblp/@source") == []

    def test_completion_spans_collection(self, files):
        db = LotusXDatabase.from_files(files)
        pattern = db.parse_query("//dblp")
        tags = {c.text for c in db.complete_tag(pattern, pattern.root, "")}
        assert tags == {"article", "inproceedings"}

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError, match="at least one path"):
            LotusXDatabase.from_files([])

    def test_statistics_cover_collection(self, files):
        db = LotusXDatabase.from_files(files)
        # collection + 2 dblp + 2 records + 2 titles + 2 authors
        assert db.statistics().element_count == 9
