"""Weighted trie and top-k completion, including a brute-force property."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.trie import Trie


@pytest.fixture()
def loaded():
    trie = Trie()
    for key, weight in [
        ("author", 10),
        ("article", 25),
        ("art", 3),
        ("booktitle", 7),
        ("book", 12),
        ("year", 40),
    ]:
        trie.add(key, weight)
    return trie


class TestBasics:
    def test_len_counts_distinct_keys(self, loaded):
        assert len(loaded) == 6

    def test_weight_lookup(self, loaded):
        assert loaded.weight("article") == 25
        assert loaded.weight("absent") == 0

    def test_contains(self, loaded):
        assert "book" in loaded
        assert "boo" not in loaded  # prefix but not a key

    def test_add_accumulates(self):
        trie = Trie()
        trie.add("x", 2)
        trie.add("x", 3)
        assert trie.weight("x") == 5
        assert len(trie) == 1

    def test_nonpositive_weight_rejected(self):
        trie = Trie()
        with pytest.raises(ValueError):
            trie.add("x", 0)

    def test_empty_key_supported(self):
        trie = Trie()
        trie.add("", 4)
        assert trie.weight("") == 4
        assert len(trie) == 1


class TestCompletion:
    def test_orders_by_weight(self, loaded):
        assert [k for k, _ in loaded.complete("a")] == ["article", "author", "art"]

    def test_prefix_filters(self, loaded):
        assert [k for k, _ in loaded.complete("boo")] == ["book", "booktitle"]

    def test_k_limits(self, loaded):
        assert len(loaded.complete("", k=2)) == 2
        assert [k for k, _ in loaded.complete("", k=2)] == ["year", "article"]

    def test_missing_prefix_empty(self, loaded):
        assert loaded.complete("zzz") == []

    def test_k_zero(self, loaded):
        assert loaded.complete("a", k=0) == []

    def test_exact_key_is_candidate(self, loaded):
        assert ("book", 12) in loaded.complete("book")

    def test_ties_break_alphabetically(self):
        trie = Trie()
        for key in ["beta", "alpha", "gamma"]:
            trie.add(key, 5)
        assert [k for k, _ in trie.complete("")] == ["alpha", "beta", "gamma"]


class TestIteration:
    def test_iter_prefix_lexicographic(self, loaded):
        keys = [k for k, _ in loaded.iter_prefix("a")]
        assert keys == sorted(keys)
        assert keys == ["art", "article", "author"]

    def test_items_covers_everything(self, loaded):
        assert len(list(loaded.items())) == len(loaded)


# ---------------------------------------------------------------------------
# Property: complete() == brute-force top-k
# ---------------------------------------------------------------------------

keys = st.text(alphabet="abc", min_size=0, max_size=6)


@given(
    entries=st.lists(st.tuples(keys, st.integers(1, 50)), max_size=40),
    prefix=st.text(alphabet="abc", max_size=3),
    k=st.integers(1, 10),
)
@settings(max_examples=200, deadline=None)
def test_complete_matches_bruteforce(entries, prefix, k):
    trie = Trie()
    weights: dict[str, int] = {}
    for key, weight in entries:
        trie.add(key, weight)
        weights[key] = weights.get(key, 0) + weight
    expected = sorted(
        ((key, weight) for key, weight in weights.items() if key.startswith(prefix)),
        key=lambda item: (-item[1], item[0]),
    )[:k]
    assert trie.complete(prefix, k) == expected


def test_complete_large_random_against_bruteforce():
    rng = random.Random(9)
    trie = Trie()
    weights: dict[str, int] = {}
    for _ in range(2000):
        key = "".join(rng.choice("abcdef") for _ in range(rng.randint(1, 8)))
        weight = rng.randint(1, 100)
        trie.add(key, weight)
        weights[key] = weights.get(key, 0) + weight
    for prefix in ["", "a", "ab", "abc", "f", "zzz"]:
        expected = sorted(
            (
                (key, weight)
                for key, weight in weights.items()
                if key.startswith(prefix)
            ),
            key=lambda item: (-item[1], item[0]),
        )[:10]
        assert trie.complete(prefix, 10) == expected
