"""Cross-feature interaction tests.

Each feature is tested in isolation elsewhere; real users combine them.
These tests pin down the combinations: attributes × rewriting, optional ×
ordered, collections × keyword search, store × attributes, negation ×
completion, guide pruning × negation, and so on.
"""

import pytest

from repro.engine.database import LotusXDatabase
from repro.engine.store import load_database, save_database

XML_A = (
    '<dblp><article key="a1"><title>twig joins</title><author>lu</author>'
    "<note>award</note></article>"
    '<article key="a2"><title>xml search</title><author>lin</author></article>'
    "</dblp>"
)
XML_B = (
    '<dblp><book key="b1"><title>twig handbook</title>'
    "<editor><author>ling</author></editor></book></dblp>"
)


class TestAttributesTimesOtherFeatures:
    @pytest.fixture(scope="class")
    def db(self):
        return LotusXDatabase.from_string(XML_A, expand_attributes=True)

    def test_attribute_query_with_rewriting(self, db):
        # @key exists; @isbn doesn't — substitution finds @key.
        response = db.search("//article/@isbn")
        assert response.used_rewrites
        assert response.results

    def test_attribute_in_optional_branch(self, db):
        matches = db.matches("//article[./note?]/@key")
        assert len(matches) == 2

    def test_attribute_negation(self, db):
        # Every article has @key, so absence matches nothing.
        assert db.matches("//article[not(./@key)]") == []

    def test_attribute_with_keyword_search(self, db):
        # Attribute values participate in keyword search like any text.
        response = db.keyword_search("a1 twig")
        assert response.total_slcas == 1
        assert response.hits[0].element.tag == "article"

    def test_attribute_guide_pruning(self, db):
        assert len(db.matches("//article/@key", prune_streams=True)) == 2


class TestOptionalTimesOrdered:
    @pytest.fixture(scope="class")
    def db(self):
        return LotusXDatabase.from_string(
            "<r><rec><x>1</x><y>2</y></rec><rec><y>3</y><x>4</x></rec>"
            "<rec><x>5</x></rec></r>"
        )

    def test_ordered_with_optional_branch(self, db):
        # x then optional y, ordered: rec1 (x<y) binds y; rec2 (y<x)
        # cannot bind y in order, so y stays unbound but the match lives;
        # rec3 has no y at all.
        pattern = db.parse_query("ordered://rec[./x][./y?]")
        matches = db.matches(pattern)
        assert len(matches) == 3
        y_id = pattern.root.children[1].node_id
        bound = [m for m in matches if y_id in m.assignments]
        assert len(bound) == 1

    def test_required_ordered_still_filters(self, db):
        assert len(db.matches("ordered://rec[./x][./y]")) == 1


class TestCollectionsTimesFeatures:
    @pytest.fixture(scope="class")
    def db(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("interactions")
        first = base / "a.xml"
        first.write_text(XML_A, encoding="utf-8")
        second = base / "b.xml"
        second.write_text(XML_B, encoding="utf-8")
        return LotusXDatabase.from_files(
            [first, second], expand_attributes=True
        )

    def test_keyword_search_spans_collection(self, db):
        response = db.keyword_search("twig")
        assert response.total_slcas == 2  # one title per source file

    def test_twig_across_sources_with_attribute_filter(self, db):
        matches = db.matches('//dblp[./@source="b.xml"]//author')
        assert len(matches) == 1

    def test_rewriting_in_collection(self, db):
        response = db.search("//book/author")  # needs // through editor
        assert response.used_rewrites
        assert response.results

    def test_completion_in_collection_is_position_aware(self, db):
        pattern = db.parse_query("//book")
        texts = {c.text for c in db.complete_tag(pattern, pattern.root, "")}
        assert "editor" in texts and "note" not in texts


class TestStoreTimesFeatures:
    def test_store_roundtrip_preserves_negation_and_optional(self, tmp_path):
        db = LotusXDatabase.from_string(XML_A)
        save_database(db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        assert len(loaded.matches("//article[not(./note)]")) == 1
        assert len(loaded.matches("//article[./note?]/title")) == 2

    def test_store_roundtrip_of_attribute_expanded_db(self, tmp_path):
        # The store records the expansion flag in its manifest and
        # re-applies it on load, so attribute queries survive the trip.
        db = LotusXDatabase.from_string(XML_A, expand_attributes=True)
        save_database(db, tmp_path / "store")
        loaded = load_database(tmp_path / "store")
        assert loaded.expanded_attributes
        assert len(loaded.matches("//article/@key")) == 2


class TestNegationTimesCompletion:
    @pytest.fixture(scope="class")
    def db(self):
        return LotusXDatabase.from_string(XML_A)

    def test_completion_under_negated_pattern(self, db):
        pattern = db.parse_query("//article[not(./note)]")
        texts = {c.text for c in db.complete_tag(pattern, pattern.root, "")}
        # Position analysis ignores value/negation predicates by design:
        # candidates reflect structure, predicates filter at match time.
        assert "title" in texts

    def test_rewrite_escapes_contradiction(self, db):
        # A self-contradictory query: has note and not note.
        response = db.search("//article[./note][not(./note)]/title")
        assert response.used_rewrites
        assert response.results


class TestKeywordTimesAlgorithms:
    def test_keyword_results_confirmable_by_twig(self):
        db = LotusXDatabase.from_string(XML_A)
        slca = db.keyword_search("twig lu").hits[0].element
        # The SLCA can be re-derived with an equivalent twig query.
        twig_matches = db.matches('//article[.~"twig lu"]')
        assert slca.order in {
            m.element(0).order for m in twig_matches
        }


class TestPruningTimesEverything:
    @pytest.fixture(scope="class")
    def db(self):
        return LotusXDatabase.from_string(XML_A, expand_attributes=True)

    @pytest.mark.parametrize(
        "query",
        [
            "//article[./note?]/title",
            "//article[not(./note)]",
            '//article[./@key="a1"]/title',
            "ordered://article[./title][./author]",
        ],
    )
    def test_pruning_preserves_answers_across_features(self, db, query):
        plain = [m.key() for m in db.matches(query)]
        pruned = [m.key() for m in db.matches(query, prune_streams=True)]
        assert plain == pruned
