"""Sharded snapshot persistence: layout, integrity, and warm-start."""

from __future__ import annotations

import json

import pytest

from repro.datasets import generate_dblp_xml
from repro.engine.database import LotusXDatabase
from repro.engine.store import (
    SHARD_MANIFEST,
    SnapshotFormatError,
    SnapshotVersionError,
    is_sharded_snapshot,
    load_sharded_snapshot,
    read_sharded_snapshot_info,
    save_sharded_snapshot,
    shard_file_name,
)
from repro.shard.database import ShardedDatabase


@pytest.fixture(scope="module")
def corpus_xml():
    return generate_dblp_xml(80, 5)


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory, corpus_xml):
    path = tmp_path_factory.mktemp("snap") / "fleet"
    database = ShardedDatabase.from_string(corpus_xml, 3, executor_mode="serial")
    info = save_sharded_snapshot(database, path)
    database.close()
    return path, info


def test_sharded_snapshot_layout(snapshot_dir):
    path, info = snapshot_dir
    assert is_sharded_snapshot(path)
    assert not is_sharded_snapshot(path / SHARD_MANIFEST)
    assert info.shard_count == 3
    for index in range(3):
        assert (path / shard_file_name(index)).is_file()
    # Aggregated section sizes cover every standard snapshot section.
    assert set(info.section_sizes) >= {"labels", "terms", "completion"}
    assert info.size_bytes == sum(shard.size_bytes for shard in info.shards)


def test_read_sharded_snapshot_info_matches_save(snapshot_dir):
    path, info = snapshot_dir
    read_back = read_sharded_snapshot_info(path)
    assert read_back.shard_count == info.shard_count
    assert read_back.element_count == info.element_count
    assert read_back.section_sizes == info.section_sizes


def test_warm_start_serves_identically(snapshot_dir, corpus_xml):
    path, _ = snapshot_dir
    mono = LotusXDatabase.from_string(corpus_xml)
    loaded = load_sharded_snapshot(path, executor_mode="serial")
    try:
        assert loaded.shard_count == 3
        assert loaded.statistics().as_dict() == mono.statistics().as_dict()
        query = '//article[./title~"xml"]/author'
        expected = mono.search(query, k=5)
        got = loaded.search(query, k=5)
        assert [r.as_dict() for r in got.results] == [
            r.as_dict() for r in expected.results
        ]
        kw_expected = mono.keyword_search("twig join", k=5)
        kw_got = loaded.keyword_search("twig join", k=5)
        assert kw_got.as_dict() == kw_expected.as_dict()
    finally:
        loaded.close()


def test_manifest_format_is_validated(tmp_path, snapshot_dir):
    bad = tmp_path / "bad-fleet"
    bad.mkdir()
    (bad / SHARD_MANIFEST).write_text(json.dumps({"format": "other"}))
    with pytest.raises(SnapshotFormatError):
        read_sharded_snapshot_info(bad)

    path, _ = snapshot_dir
    manifest = json.loads((path / SHARD_MANIFEST).read_text())
    manifest["format_version"] = 999
    future = tmp_path / "future-fleet"
    future.mkdir()
    (future / SHARD_MANIFEST).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotVersionError):
        read_sharded_snapshot_info(future)


def test_plain_file_is_not_sharded(tmp_path):
    plain = tmp_path / "plain.lxsnap"
    plain.write_bytes(b"not a directory")
    assert not is_sharded_snapshot(plain)
    assert not is_sharded_snapshot(tmp_path / "missing")
