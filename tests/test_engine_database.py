"""The LotusXDatabase facade: search, ranking, rewriting, explain."""

import pytest

from repro.engine.database import LotusXDatabase
from repro.twig.planner import Algorithm


class TestConstruction:
    def test_from_string(self, small_db):
        assert len(small_db.labeled) == 31

    def test_from_file(self, tmp_path):
        path = tmp_path / "tiny.xml"
        path.write_text("<r><a>x</a></r>", encoding="utf-8")
        db = LotusXDatabase.from_file(path)
        assert len(db.labeled) == 2

    def test_statistics(self, small_db):
        stats = small_db.statistics()
        assert stats.element_count == 31
        assert stats.distinct_tags == 11


class TestMatches:
    def test_string_query(self, small_db):
        assert len(small_db.matches("//article/author")) == 3

    def test_pattern_query(self, small_db):
        pattern = small_db.parse_query("//article/author")
        assert len(small_db.matches(pattern)) == 3

    def test_matches_sorted(self, small_db):
        matches = small_db.matches("//dblp//author")
        keys = [match.order_key() for match in matches]
        assert keys == sorted(keys)

    def test_algorithm_override(self, small_db):
        for algorithm in Algorithm:
            assert len(small_db.matches("//article/author", algorithm)) == 3


class TestSearch:
    def test_basic_search(self, small_db):
        response = small_db.search('//article[./title~"twig"]/author')
        assert len(response) == 2
        assert response.total_matches == 2
        assert not response.used_rewrites
        assert response.elapsed_seconds > 0

    def test_results_ranked(self, small_db):
        response = small_db.search("//dblp//author", k=20)
        scores = [hit.score.combined for hit in response]
        assert scores == sorted(scores, reverse=True)

    def test_k_caps_results(self, small_db):
        response = small_db.search("//dblp//author", k=3)
        assert len(response) == 3
        assert response.total_matches == 9

    def test_distinct_outputs(self, small_db):
        # Two authors on the same article yield one result per author
        # element (output = author), not per full embedding.
        response = small_db.search("//inproceedings/author", k=20)
        xpaths = [hit.xpath for hit in response]
        assert len(xpaths) == len(set(xpaths)) == 5

    def test_empty_query_rewrites(self, small_db):
        response = small_db.search("//book/author")  # author is under editor
        assert response.used_rewrites
        assert response.results
        assert response.results[0].rewrite_steps
        assert response.results[0].score.rewrite_penalty > 0

    def test_rewrite_disabled(self, small_db):
        response = small_db.search("//book/author", rewrite=False)
        assert not response.used_rewrites
        assert len(response) == 0

    def test_rewritten_results_rank_below_exact(self, small_db):
        # min_results high enough to force rewrites alongside exact hits.
        response = small_db.search("//article/author", k=20, min_results=10)
        exact = [hit for hit in response if not hit.rewrite_steps]
        rewritten = [hit for hit in response if hit.rewrite_steps]
        assert exact and rewritten
        assert min(h.score.combined for h in exact) >= max(
            h.score.combined for h in rewritten
        ) or all(
            e.score.combined >= rewritten[0].score.combined for e in exact
        )

    def test_search_response_as_dict(self, small_db):
        data = small_db.search("//article/title").as_dict()
        assert data["query"]
        assert isinstance(data["results"], list)
        assert data["results"][0]["xpath"].startswith("/dblp")


class TestProfile:
    def test_profile_reports_all_algorithms(self, small_db):
        data = small_db.profile("//article[./author]/title")
        names = {row["algorithm"] for row in data["profiles"]}
        assert names == {"structural-join", "twig-stack", "tjfast"}
        for row in data["profiles"]:
            assert row["matches"] == 3  # one embedding per (author, title)
            assert row["median_ms"] >= 0

    def test_profile_includes_pathstack_for_paths(self, small_db):
        data = small_db.profile("//article/author")
        names = [row["algorithm"] for row in data["profiles"]]
        assert "path-stack" in names

    def test_profile_carries_plan(self, small_db):
        data = small_db.profile("//article/author")
        assert data["xpath"] == "//article/author"
        assert data["nodes"]


class TestTranslationAndExplain:
    def test_to_xpath(self, small_db):
        xpath = small_db.to_xpath('//article[./title~"twig"]/author')
        assert xpath == '//article[title[contains(., "twig")]]/author'

    def test_to_xquery(self, small_db):
        xquery = small_db.to_xquery("//article/title")
        assert xquery.startswith("for $m in doc($input)//article")
        assert "return" in xquery

    def test_explain(self, small_db):
        plan = small_db.explain("//article[./author][./year]")
        assert plan["algorithm"] == "twig-stack"
        assert len(plan["nodes"]) == 3
        sizes = {node["tag"]: node["stream_size"] for node in plan["nodes"]}
        assert sizes["article"] == 2
        assert sizes["author"] == 9
        assert plan["nodes"][0]["positions"] == ["/dblp/article"]
