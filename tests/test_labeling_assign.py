"""Label assignment: all label kinds agree with the tree structure."""

import pytest

from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string


@pytest.fixture()
def labeled():
    return label_document(
        parse_string(
            "<r><a><b>x</b><c/></a><a><b>y</b></a><d><a><b>z</b></a></d></r>"
        )
    )


class TestBasicAssignment:
    def test_every_element_labeled(self, labeled):
        assert len(labeled) == labeled.document.count_elements()

    def test_elements_in_document_order(self, labeled):
        starts = [element.region.start for element in labeled.elements]
        assert starts == sorted(starts)

    def test_root_label(self, labeled):
        root = labeled.elements[0]
        assert root.region.level == 0
        assert root.dewey.components == ()
        assert root.parent is None

    def test_levels_match_depth(self, labeled):
        for element in labeled.elements:
            assert element.region.level == len(element.element.path()) - 1

    def test_parent_links(self, labeled):
        for element in labeled.elements:
            if element.parent is not None:
                assert element.parent.element is element.element.parent
                assert element.parent.region.is_parent_of(element.region)

    def test_dewey_matches_sibling_positions(self, labeled):
        for element in labeled.elements:
            if element.parent is not None:
                expected = element.element.sibling_index() + 1
                assert element.dewey.components[-1] == expected

    def test_path_node_matches_path(self, labeled):
        for element in labeled.elements:
            assert element.path_node.path == element.element.path()


class TestConsistencyAcrossLabelKinds:
    def test_region_and_dewey_agree_on_ancestry(self, labeled):
        elements = labeled.elements
        for first in elements:
            for second in elements:
                assert first.region.is_ancestor_of(second.region) == (
                    first.dewey.is_ancestor_of(second.dewey)
                )

    def test_region_and_xdewey_agree_on_ancestry(self, labeled):
        elements = labeled.elements
        for first in elements:
            for second in elements:
                assert first.region.is_ancestor_of(second.region) == (
                    first.xdewey.is_ancestor_of(second.xdewey)
                )

    def test_all_orders_agree(self, labeled):
        by_region = sorted(labeled.elements, key=lambda e: e.region)
        by_dewey = sorted(labeled.elements, key=lambda e: e.dewey)
        by_xdewey = sorted(labeled.elements, key=lambda e: e.xdewey)
        assert by_region == by_dewey == by_xdewey == labeled.elements


class TestLookup:
    def test_label_of(self, labeled):
        b = labeled.document.root.find("a").find("b")
        assert labeled.label_of(b).element is b

    def test_label_of_foreign_element_raises(self, labeled):
        from repro.xmlio.tree import Element

        with pytest.raises(KeyError):
            labeled.label_of(Element("stranger"))

    def test_stream_in_document_order(self, labeled):
        stream = labeled.stream("b")
        assert len(stream) == 3
        starts = [element.region.start for element in stream]
        assert starts == sorted(starts)

    def test_stream_missing_tag_empty(self, labeled):
        assert labeled.stream("zzz") == []

    def test_tags(self, labeled):
        assert labeled.tags() == {"r", "a", "b", "c", "d"}
