"""Negation: ``!~`` value predicates and ``not(...)`` structural absence."""

import pytest

from repro.engine.database import LotusXDatabase
from repro.twig.parse import TwigSyntaxError, parse_twig
from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ContainsPredicate,
    NotPredicate,
)
from repro.twig.planner import Algorithm

XML = (
    "<dblp>"
    "<article><title>twig joins</title><author>lu</author></article>"
    "<article><title>xml search</title></article>"
    "<article><title>twig gui</title></article>"
    "<book><title>data</title><editor><author>x</author></editor></book>"
    "</dblp>"
)


@pytest.fixture(scope="module")
def db():
    return LotusXDatabase.from_string(XML)


class TestParsing:
    def test_not_contains_operator(self):
        pattern = parse_twig('//title[.!~"twig"]')
        predicate = pattern.root.predicate
        assert isinstance(predicate, NotPredicate)
        assert isinstance(predicate.inner, ContainsPredicate)

    def test_structural_not_child(self):
        pattern = parse_twig("//article[not(./author)]")
        predicate = pattern.root.predicate
        assert isinstance(predicate, AbsentBranchPredicate)
        assert predicate.tag == "author"
        assert predicate.axis is Axis.CHILD

    def test_structural_not_descendant(self):
        pattern = parse_twig("//book[not(.//author)]")
        assert pattern.root.predicate.axis is Axis.DESCENDANT

    def test_bare_slash_form(self):
        assert (
            parse_twig("//a[not(/b)]").signature()
            == parse_twig("//a[not(./b)]").signature()
        )

    def test_not_requires_concrete_tag(self):
        with pytest.raises(TwigSyntaxError, match="concrete tag"):
            parse_twig("//a[not(./*)]")

    def test_not_requires_axis(self):
        with pytest.raises(TwigSyntaxError, match="'/' or '//'"):
            parse_twig("//a[not(b)]")

    def test_output_marker_still_works_before_operators(self):
        pattern = parse_twig('//a[./b!~"x"]')
        # '!' belongs to '!~', not the output marker.
        assert pattern.output_nodes() == [pattern.root]

    @pytest.mark.parametrize(
        "query",
        [
            '//title[.!~"twig"]',
            "//article[not(./author)]",
            "//book[not(.//author)]/title",
            '//a[./b!~"x y"][not(/c)]/d',
        ],
    )
    def test_roundtrip(self, query):
        pattern = parse_twig(query)
        assert parse_twig(str(pattern)).signature() == pattern.signature()

    def test_double_negation_rejected(self):
        with pytest.raises(ValueError, match="double negation"):
            NotPredicate(NotPredicate(ContainsPredicate("x")))


class TestSemantics:
    @pytest.mark.parametrize(
        "query,expected",
        [
            ('//article[./title!~"twig"]', 1),
            ('//title[.!~"xml"]', 3),
            ("//article[not(./author)]", 2),
            ("//book[not(./author)]", 1),
            ("//book[not(.//author)]", 0),
            ("//*[not(.//author)]/title", 2),
            ('//article[not(./author)][./title~"twig"]', 1),
        ],
    )
    def test_counts(self, db, query, expected):
        assert len(db.matches(query)) == expected

    def test_all_algorithms_agree(self, db):
        for query in [
            '//article[./title!~"twig"]',
            "//article[not(./author)]/title",
            "//*[not(./editor)][./title]",
        ]:
            results = {
                algorithm: [m.key() for m in db.matches(query, algorithm)]
                for algorithm in (
                    Algorithm.NAIVE,
                    Algorithm.STRUCTURAL_JOIN,
                    Algorithm.TWIG_STACK,
                    Algorithm.TJFAST,
                )
            }
            baseline = results[Algorithm.NAIVE]
            for algorithm, keys in results.items():
                assert keys == baseline, (algorithm, query)

    def test_negation_contributes_no_ranking_terms(self, db):
        pattern = parse_twig('//article[./title!~"twig"]')
        assert pattern.all_terms() == ()

    def test_not_predicate_never_relaxed_to_contains(self, db):
        from repro.rewrite.rules import EqualsToContains

        pattern = parse_twig('//article[./title!~"twig"]')
        assert list(EqualsToContains().apply(pattern)) == []

    def test_search_with_negation(self, db):
        response = db.search("//article[not(./author)]/title", rewrite=False)
        assert len(response) == 2
