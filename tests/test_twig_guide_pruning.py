"""DataGuide stream pruning: soundness and effect."""

import pytest

from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import sort_matches
from repro.twig.planner import Algorithm


class TestPrunedStreams:
    def test_prunes_infeasible_positions(self, small_db):
        # author occurs under article, inproceedings and book/editor; the
        # pattern pins it under book.
        pattern = small_db.parse_query("//book//author")
        plain = build_streams(pattern, small_db.streams)
        pruned = build_streams(pattern, small_db.streams, small_db.guide)
        author_id = pattern.nodes()[1].node_id
        assert len(plain[author_id]) == 9
        assert len(pruned[author_id]) == 1

    def test_identical_answers(self, small_db):
        for query in [
            "//book//author",
            "//article[./title][./year]",
            '//inproceedings[./booktitle="icde"]/author',
            "//*[./editor]",
        ]:
            pattern = small_db.parse_query(query)
            plain = sort_matches(
                twig_stack_match(pattern, build_streams(pattern, small_db.streams))
            )
            pruned = sort_matches(
                twig_stack_match(
                    pattern,
                    build_streams(pattern, small_db.streams, small_db.guide),
                )
            )
            assert plain == pruned, query

    def test_unsatisfiable_pattern_gets_empty_streams(self, small_db):
        pattern = small_db.parse_query("//article/publisher")
        pruned = build_streams(pattern, small_db.streams, small_db.guide)
        assert pruned[pattern.nodes()[1].node_id] == []

    def test_planner_flag(self, small_db):
        plain = small_db.matches("//book//author")
        pruned = small_db.matches("//book//author", prune_streams=True)
        assert plain == pruned

    def test_planner_flag_all_algorithms(self, small_db):
        for algorithm in (
            Algorithm.TWIG_STACK,
            Algorithm.STRUCTURAL_JOIN,
            Algorithm.PATH_STACK,
            Algorithm.TJFAST,
        ):
            assert (
                len(
                    small_db.matches(
                        "//dblp//author", algorithm, prune_streams=True
                    )
                )
                == 9
            )
