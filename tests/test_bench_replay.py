"""The workload-replay soak harness and the stress-shape generators.

Determinism (same seed, same session, same corpus), JSONL round-trips,
client scoping, open-loop pacing, the report arithmetic the noisy-
neighbor bench gates on, and the generators' contract: every canned
query is satisfiable on its own corpus shape.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.generators import (
    DEEP_RECURSIVE_QUERIES,
    SKEWED_QUERIES,
    STRESS_SHAPES,
    WIDE_FLAT_QUERIES,
    generate_deep_recursive,
    generate_deep_recursive_xml,
    generate_skewed_xml,
    generate_wide_flat_xml,
)
from repro.bench.replay import (
    ReplayEvent,
    ReplayReport,
    PipelineClient,
    load_events,
    replay,
    replay_many,
    save_events,
    synthesize_session,
)
from repro.engine.database import LotusXDatabase
from repro.server.pipeline import RequestPipeline
from repro.xmlio.serializer import serialize


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


class TestGenerators:
    def test_deterministic_in_seed(self):
        assert generate_deep_recursive_xml(8, 6, seed=3) == (
            generate_deep_recursive_xml(8, 6, seed=3)
        )
        assert generate_wide_flat_xml(40, seed=3) == (
            generate_wide_flat_xml(40, seed=3)
        )
        assert generate_skewed_xml(50, seed=3) != (
            generate_skewed_xml(50, seed=4)
        )

    def test_deep_recursive_actually_recurses(self):
        document = generate_deep_recursive(chains=4, depth=10, seed=1)
        xml = serialize(document)
        assert xml.count("<section") >= 4 * 7  # depth jitter floors at 2/3
        database = LotusXDatabase.from_string(xml)
        deep = database.matches(database.parse_query("//section//leaf"))
        assert deep  # the recursion axis is exercised

    def test_skewed_head_dominates_tail(self):
        xml = generate_skewed_xml(records=200, seed=7)
        assert xml.count("<record") > 3 * xml.count("<anomaly")

    @pytest.mark.parametrize(
        "name,xml_fn,queries",
        STRESS_SHAPES,
        ids=[shape[0] for shape in STRESS_SHAPES],
    )
    def test_every_canned_query_is_satisfiable(self, name, xml_fn, queries):
        database = LotusXDatabase.from_string(xml_fn(seed=42))
        for query in queries:
            matches = database.matches(database.parse_query(query.text))
            assert matches, f"{name}: {query.name} found nothing"

    def test_query_tuples_match_their_shapes(self):
        assert {q.name[0] for q in DEEP_RECURSIVE_QUERIES} == {"R"}
        assert {q.name[0] for q in WIDE_FLAT_QUERIES} == {"W"}
        assert {q.name[0] for q in SKEWED_QUERIES} == {"S"}

    def test_size_validation(self):
        with pytest.raises(ValueError):
            generate_deep_recursive(chains=-1)
        with pytest.raises(ValueError):
            generate_deep_recursive(chains=1, depth=0)


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def wide_db() -> LotusXDatabase:
    return LotusXDatabase.from_string(generate_wide_flat_xml(40, seed=9))


class TestSynthesize:
    def test_deterministic_in_seed(self, wide_db):
        first = synthesize_session(wide_db, seed=5, events=30)
        second = synthesize_session(wide_db, seed=5, events=30)
        assert first == second
        assert first != synthesize_session(wide_db, seed=6, events=30)

    def test_mix_controls_the_kinds(self, wide_db):
        searches = synthesize_session(
            wide_db, seed=5, events=20, mix={"search": 1.0}
        )
        assert {event.path for event in searches} == {"/api/search"}
        mixed = synthesize_session(wide_db, seed=5, events=60)
        paths = {event.path for event in mixed}
        assert paths == {"/api/search", "/api/keyword", "/api/complete"}

    def test_keystroke_bursts_grow_prefixes(self, wide_db):
        session = synthesize_session(
            wide_db, seed=1, events=20, mix={"complete": 1.0}
        )
        prefixes = [event.payload["prefix"] for event in session]
        # Bursts: each tag contributes successive prefixes "e", "en", …
        assert any(
            len(b) == len(a) + 1 and b.startswith(a)
            for a, b in zip(prefixes, prefixes[1:])
        )

    def test_every_event_is_answerable(self, wide_db):
        pipeline = RequestPipeline(wide_db)
        client = PipelineClient(pipeline)
        for event in synthesize_session(wide_db, seed=3, events=40):
            status, _ = client.send(event)
            assert status == 200, event

    def test_round_trip_through_jsonl(self, wide_db, tmp_path):
        session = synthesize_session(wide_db, seed=2, events=25)
        path = tmp_path / "session.jsonl"
        save_events(session, str(path))
        assert load_events(str(path)) == session
        # One event per line, every line parseable on its own.
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(session)
        assert all(json.loads(line)["path"] for line in lines)

    def test_negative_events_rejected(self, wide_db):
        with pytest.raises(ValueError):
            synthesize_session(wide_db, events=-1)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


class _ScriptedClient:
    """A client answering from a canned script, for report arithmetic."""

    def __init__(self, script):
        import threading

        self._script = list(script)
        self._lock = threading.Lock()

    def send(self, event: ReplayEvent):
        with self._lock:
            status, body = self._script.pop(0)
        if isinstance(status, Exception):
            raise status
        return status, body


class TestReplay:
    def test_replays_everything_in_process(self, wide_db):
        pipeline = RequestPipeline(wide_db)
        session = synthesize_session(wide_db, seed=4, events=20)
        report = replay(
            PipelineClient(pipeline), session, qps=500.0, concurrency=2
        )
        assert report.sent == len(session)
        assert report.errors == 0
        assert report.ok() == len(session)
        assert len(report.latencies_s) == len(session)

    def test_tenant_scoping_reaches_the_tenant(self, wide_db):
        from repro.tenant.registry import TenantRegistry

        registry = TenantRegistry()
        registry.add("w", wide_db)
        pipeline = RequestPipeline(registry)
        client = PipelineClient(pipeline, tenant="w")
        status, _ = client.send(
            ReplayEvent("/api/search", {"query": "//entry/code", "k": 2})
        )
        assert status == 200
        assert registry.get("w").requests == 1
        # An unknown tenant surfaces the structured 404, not an error.
        status, body = PipelineClient(pipeline, tenant="nope").send(
            ReplayEvent("/api/search", {"query": "//entry", "k": 1})
        )
        assert status == 404
        assert json.loads(body)["code"] == "unknown_tenant"

    def test_open_loop_pacing_holds_the_offered_rate(self, wide_db):
        import time

        pipeline = RequestPipeline(wide_db)
        session = synthesize_session(
            wide_db, seed=4, events=10, mix={"complete": 1.0}
        )[:10]
        started = time.perf_counter()
        report = replay(PipelineClient(pipeline), session, qps=40.0)
        elapsed = time.perf_counter() - started
        # Event i is due at i/qps: the last is due at 9/40 = 0.225s, so
        # the run cannot finish much faster than the schedule…
        assert elapsed >= (len(session) - 1) / 40.0 - 0.01
        assert report.sent == len(session)
        # …and achieved_qps reflects the pacing, not raw engine speed.
        assert report.achieved_qps < 100.0

    def test_report_percentiles_and_shed_blame(self):
        shed_body = json.dumps({"error": "x", "tenant": "noisy"}).encode()
        script = [(200, b"{}")] * 8 + [
            (429, shed_body),
            (429, b"not json"),
        ]
        report = replay(
            _ScriptedClient(script),
            [ReplayEvent("/api/search", {"q": i}) for i in range(10)],
            qps=10_000.0,
            concurrency=1,
        )
        assert report.ok() == 8
        assert report.shed() == 2
        assert dict(report.shed_tenants) == {"noisy": 1, None: 1}
        assert report.percentile_ms(0.5) >= 0.0
        assert report.percentile_ms(0.99) >= report.percentile_ms(0.5)

    def test_client_exceptions_are_counted_not_raised(self):
        script = [(200, b"{}"), (RuntimeError("boom"), None), (200, b"{}")]
        report = replay(
            _ScriptedClient(script),
            [ReplayEvent("/api/search", {"q": i}) for i in range(3)],
            qps=10_000.0,
            concurrency=1,
        )
        assert report.errors == 1
        assert report.sent == 2

    def test_empty_percentile_is_zero(self):
        assert ReplayReport(name="x").percentile_ms(0.99) == 0.0
        assert ReplayReport(name="x").achieved_qps == 0.0

    def test_validation(self, wide_db):
        client = PipelineClient(RequestPipeline(wide_db))
        with pytest.raises(ValueError):
            replay(client, [], qps=0.0)
        with pytest.raises(ValueError):
            replay(client, [], qps=1.0, concurrency=0)

    def test_replay_many_runs_plans_concurrently(self, wide_db):
        pipeline = RequestPipeline(wide_db)
        session = synthesize_session(wide_db, seed=4, events=10)
        reports = replay_many(
            [
                ("one", PipelineClient(pipeline), session, 400.0),
                ("two", PipelineClient(pipeline), session, 400.0, 2),
            ]
        )
        assert sorted(reports) == ["one", "two"]
        assert reports["one"].sent == len(session)
        assert reports["two"].sent == len(session)
        assert reports["one"].name == "one"
