"""The position-aware autocompletion engine."""

import pytest

from repro.autocomplete.candidates import CandidateKind
from repro.twig.parse import parse_twig
from repro.twig.pattern import Axis


class TestTagCompletion:
    def test_first_node_uses_whole_corpus(self, small_db):
        candidates = small_db.complete_tag(prefix="a")
        texts = {c.text for c in candidates}
        assert texts == {"article", "author"}

    def test_position_aware_child_tags(self, small_db):
        pattern = parse_twig("//article")
        candidates = small_db.complete_tag(pattern, pattern.root, "")
        texts = {c.text for c in candidates}
        assert texts == {"title", "author", "year", "journal"}
        assert "booktitle" not in texts  # only under inproceedings
        assert "publisher" not in texts  # only under book

    def test_position_aware_respects_whole_pattern(self, small_db):
        # With [./booktitle] in the twig, the anchor can only be an
        # inproceedings, even though its tag is a wildcard.
        pattern = parse_twig("//*[./booktitle]")
        candidates = small_db.complete_tag(pattern, pattern.root, "")
        texts = {c.text for c in candidates}
        assert texts == {"title", "author", "year", "booktitle"}

    def test_descendant_axis_widens_pool(self, small_db):
        pattern = parse_twig("//book")
        child_tags = {
            c.text for c in small_db.complete_tag(pattern, pattern.root, "")
        }
        descendant_tags = {
            c.text
            for c in small_db.complete_tag(
                pattern, pattern.root, "", axis=Axis.DESCENDANT
            )
        }
        assert "author" not in child_tags  # author is under editor
        assert "author" in descendant_tags

    def test_prefix_filters(self, small_db):
        pattern = parse_twig("//article")
        candidates = small_db.complete_tag(pattern, pattern.root, "jo")
        assert [c.text for c in candidates] == ["journal"]

    def test_counts_reflect_positions(self, small_db):
        pattern = parse_twig("//article")
        candidates = {
            c.text: c.count
            for c in small_db.complete_tag(pattern, pattern.root, "")
        }
        assert candidates["author"] == 3  # only article authors counted

    def test_unsatisfiable_context_gives_nothing(self, small_db):
        pattern = parse_twig("//article[./publisher]")
        assert small_db.complete_tag(pattern, pattern.root, "") == []

    def test_sample_paths_attached(self, small_db):
        candidates = small_db.complete_tag(prefix="auth")
        assert candidates[0].sample_paths
        assert all(p.startswith("/dblp") for p in candidates[0].sample_paths)

    def test_k_limits(self, small_db):
        pattern = parse_twig("//article")
        assert len(small_db.complete_tag(pattern, pattern.root, "", k=2)) == 2


class TestValueCompletion:
    def test_position_aware_values(self, small_db):
        pattern = parse_twig("//inproceedings/booktitle")
        node = pattern.root.children[0]
        candidates = small_db.complete_value(pattern, node, "")
        assert {c.text for c in candidates} == {"icde", "edbt"}
        assert all(c.kind is CandidateKind.VALUE for c in candidates)

    def test_position_excludes_other_paths(self, small_db):
        # "jiaheng lu" appears as article author, inproceedings author and
        # book editor author; anchored under article only one path counts.
        pattern = parse_twig("//article/author")
        node = pattern.root.children[0]
        candidates = small_db.complete_value(pattern, node, "jia")
        assert len(candidates) == 1
        assert candidates[0].count == 1  # one article by jiaheng lu

    def test_global_counts_are_larger(self, small_db):
        global_candidates = small_db.autocomplete.complete_value_global("jia")
        assert global_candidates[0].count == 4

    def test_token_mode(self, small_db):
        pattern = parse_twig("//article/title")
        node = pattern.root.children[0]
        candidates = small_db.complete_value(
            pattern, node, "x", whole_values=False
        )
        assert [c.text for c in candidates] == ["xml"]
        assert candidates[0].kind is CandidateKind.TERM

    def test_value_completion_on_wildcard_anchor(self, small_db):
        pattern = parse_twig("//*")
        candidates = small_db.complete_value(pattern, pattern.root, "icde")
        assert [c.text for c in candidates] == ["icde"]


class TestScoring:
    def test_score_monotone_in_count(self, small_db):
        from repro.autocomplete.scoring import candidate_score

        assert candidate_score(10, "a", "abc") > candidate_score(2, "a", "abc")

    def test_longer_typed_prefix_scores_higher(self, small_db):
        from repro.autocomplete.scoring import candidate_score

        assert candidate_score(5, "abc", "abcd") > candidate_score(5, "a", "abcd")

    def test_zero_count_scores_zero(self):
        from repro.autocomplete.scoring import candidate_score

        assert candidate_score(0, "a", "abc") == 0.0

    def test_candidates_sorted_by_score(self, small_db):
        candidates = small_db.complete_tag(prefix="")
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_as_dict(self, small_db):
        candidate = small_db.complete_tag(prefix="ti")[0]
        data = candidate.as_dict()
        assert data["text"] == "title"
        assert data["kind"] == "tag"
        assert isinstance(data["count"], int)
