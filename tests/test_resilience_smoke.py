"""The acceptance scenario: a tight deadline on an adversarial twig over
a generated Treebank corpus yields a fast, truncated — but well-formed —
HTTP 200, not a timeout error."""

import json
import threading
import time
import urllib.request

import pytest

from repro.datasets import generate_treebank_xml
from repro.engine.database import LotusXDatabase
from repro.server.app import make_server

#: Deep recursive nesting makes ``//NP//NP//NP//NP`` explode: thousands
#: of matches whose enumeration and ranking far exceed a 50ms budget.
ADVERSARIAL_QUERY = "//NP//NP//NP//NP"


@pytest.fixture(scope="module")
def treebank_db():
    return LotusXDatabase.from_string(
        generate_treebank_xml(sentences=120, seed=7, max_depth=14)
    )


@pytest.fixture(scope="module")
def base_url(treebank_db):
    server = make_server(treebank_db, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def post(base_url, path, payload):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def test_direct_search_truncates_within_budget(treebank_db):
    response = treebank_db.search(ADVERSARIAL_QUERY, k=10, timeout_ms=50)
    assert response.truncated is True
    assert "deadline" in response.degraded
    assert len(response.results) <= 10
    # Whatever made it through is well-formed and scored.
    for result in response.results:
        assert result.match.assignments
        assert result.score.combined >= 0.0


def test_http_search_with_tight_deadline_is_fast_200(base_url):
    started = time.perf_counter()
    status, data = post(
        base_url,
        "/api/search",
        {"query": ADVERSARIAL_QUERY, "k": 10, "timeout_ms": 50},
    )
    elapsed = time.perf_counter() - started
    assert status == 200
    assert data["truncated"] is True
    assert "deadline" in data["degraded"]
    assert len(data["results"]) <= 10
    # ~2x the 50ms deadline plus generous scheduling slack.
    assert elapsed < 0.5


def test_generous_deadline_is_not_truncated(base_url):
    status, data = post(
        base_url,
        "/api/search",
        {"query": "//NP/VP", "k": 5, "timeout_ms": 30_000},
    )
    assert status == 200
    assert data["truncated"] is False
    assert data["degraded"] == []
