"""Property-based tests for the rewrite engine (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rewrite.engine import QueryRewriter
from repro.rewrite.rules import default_rules
from repro.summary.dataguide import DataGuide
from repro.twig.pattern import Axis, TwigPattern
from repro.xmlio.builder import parse_string

GUIDE = DataGuide.from_document(
    parse_string(
        "<dblp><article><title>t</title><author>a</author><year>y</year>"
        "</article><book><editor><author>a</author></editor></book></dblp>"
    )
)

TAGS = ["dblp", "article", "title", "author", "year", "book", "editor", "zzz"]


@st.composite
def patterns(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    pattern = TwigPattern(rng.choice(TAGS))
    nodes = [pattern.root]
    for _ in range(draw(st.integers(0, 3))):
        parent = rng.choice(nodes)
        axis = Axis.CHILD if rng.random() < 0.6 else Axis.DESCENDANT
        nodes.append(pattern.add_child(parent, rng.choice(TAGS), axis))
    return pattern


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_candidates_sorted_by_penalty_and_distinct(pattern):
    rewriter = QueryRewriter(default_rules(GUIDE), max_expansions=30)
    candidates = rewriter.candidates(pattern)
    penalties = [candidate.penalty for candidate in candidates]
    assert penalties == sorted(penalties)
    signatures = [candidate.pattern.signature() for candidate in candidates]
    assert len(signatures) == len(set(signatures))
    assert all(
        candidate.pattern.signature() != pattern.signature()
        for candidate in candidates
    )


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_penalties_within_budget_and_steps_consistent(pattern):
    budget = 4.0
    rewriter = QueryRewriter(
        default_rules(GUIDE), max_penalty=budget, max_expansions=30
    )
    for candidate in rewriter.candidates(pattern):
        assert 0 < candidate.penalty <= budget
        assert len(candidate.steps) >= 1


@given(patterns())
@settings(max_examples=75, deadline=None)
def test_rules_never_mutate_the_input_pattern(pattern):
    signature = pattern.signature()
    rewriter = QueryRewriter(default_rules(GUIDE), max_expansions=20)
    rewriter.candidates(pattern)
    assert pattern.signature() == signature


@given(patterns())
@settings(max_examples=75, deadline=None)
def test_rewrites_stay_structurally_valid(pattern):
    rewriter = QueryRewriter(default_rules(GUIDE), max_expansions=20)
    for candidate in rewriter.candidates(pattern):
        rewritten = candidate.pattern
        # Tree invariants survive every rule application.
        for node in rewritten.nodes():
            for child in node.children:
                assert child.parent is node
        ids = [node.node_id for node in rewritten.nodes()]
        assert len(ids) == len(set(ids))
        assert rewritten.output_nodes()  # an output always exists
