"""Inverted term index: postings, subtree containment, values, numbers."""

import pytest

from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string


@pytest.fixture()
def indexed():
    doc = parse_string(
        "<dblp>"
        "<article><title>twig joins</title><author>jiaheng lu</author>"
        "<year>2002</year></article>"
        "<article><title>xml search twig</title><author>chunbin lin</author>"
        "<year>2011</year></article>"
        "<note>twig twig twig</note>"
        "</dblp>"
    )
    labeled = label_document(doc)
    return labeled, TermIndex(labeled)


class TestPostings:
    def test_document_frequency(self, indexed):
        _, index = indexed
        assert index.document_frequency("twig") == 3
        assert index.document_frequency("joins") == 1
        assert index.document_frequency("absent") == 0

    def test_lookup_is_case_insensitive(self, indexed):
        _, index = indexed
        assert index.document_frequency("TWIG") == 3

    def test_term_frequency_recorded(self, indexed):
        _, index = indexed
        note_posting = index.postings("twig")[-1]
        assert note_posting.tf == 3

    def test_postings_in_document_order(self, indexed):
        _, index = indexed
        orders = [posting.order for posting in index.postings("twig")]
        assert orders == sorted(orders)

    def test_idf_decreases_with_frequency(self, indexed):
        _, index = indexed
        assert index.idf("joins") > index.idf("twig") > 0

    def test_totals(self, indexed):
        _, index = indexed
        assert index.text_element_count == 7
        assert index.total_tokens == 14
        assert "twig" in set(index.vocabulary())


class TestSubtreeContainment:
    def test_subtree_contains(self, indexed):
        labeled, index = indexed
        first_article = labeled.stream("article")[0]
        assert index.subtree_contains(first_article, "joins")
        assert index.subtree_contains(first_article, "jiaheng")
        assert not index.subtree_contains(first_article, "chunbin")

    def test_root_subtree_contains_everything(self, indexed):
        labeled, index = indexed
        root = labeled.elements[0]
        for term in ["twig", "jiaheng", "2011", "search"]:
            assert index.subtree_contains(root, term)

    def test_leaf_subtree_is_itself(self, indexed):
        labeled, index = indexed
        title = labeled.stream("title")[0]
        assert index.subtree_contains(title, "twig")
        assert not index.subtree_contains(title, "jiaheng")

    def test_subtree_contains_all(self, indexed):
        labeled, index = indexed
        second_article = labeled.stream("article")[1]
        assert index.subtree_contains_all(second_article, ["xml", "chunbin"])
        assert not index.subtree_contains_all(second_article, ["xml", "jiaheng"])
        assert index.subtree_contains_all(second_article, [])

    def test_subtree_term_frequency(self, indexed):
        labeled, index = indexed
        root = labeled.elements[0]
        assert index.subtree_term_frequency(root, "twig") == 5
        note = labeled.stream("note")[0]
        assert index.subtree_term_frequency(note, "twig") == 3

    def test_subtree_postings_window(self, indexed):
        labeled, index = indexed
        first_article = labeled.stream("article")[0]
        postings = index.subtree_postings(first_article, "twig")
        assert len(postings) == 1

    def test_subtree_order_range_covers_descendants(self, indexed):
        labeled, index = indexed
        first_article = labeled.stream("article")[0]
        low, high = index.subtree_order_range(first_article)
        assert high - low == 4  # article + title + author + year


class TestValuesAndNumbers:
    def test_elements_with_value(self, indexed):
        labeled, index = indexed
        orders = index.elements_with_value("jiaheng lu")
        assert len(orders) == 1
        assert labeled.elements[orders[0]].tag == "author"

    def test_value_lookup_normalizes(self, indexed):
        _, index = indexed
        assert index.elements_with_value("  Jiaheng   LU ") != []

    def test_has_value(self, indexed):
        labeled, index = indexed
        author = labeled.stream("author")[0]
        assert index.has_value(author, "jiaheng lu")
        assert not index.has_value(author, "chunbin lin")

    def test_value_count(self, indexed):
        _, index = indexed
        assert index.value_count("twig joins") == 1
        assert index.value_count("nope") == 0

    def test_numeric_values(self, indexed):
        labeled, index = indexed
        years = labeled.stream("year")
        assert index.numeric_value(years[0]) == 2002.0
        assert index.numeric_value(years[1]) == 2011.0

    def test_non_numeric_is_none(self, indexed):
        labeled, index = indexed
        title = labeled.stream("title")[0]
        assert index.numeric_value(title) is None
