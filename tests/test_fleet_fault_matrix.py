"""Differential fault drills: the fleet under injected replica failures.

The acceptance bar for the replica fleet: with one replica of every
shard crashed (or hung), the seeded differential harness must still
return answers *byte-identical* to the monolithic oracle — resilience
machinery (retries, health ranking, hedging, breakers) may cost
latency, never correctness.  And when every replica of a group is down,
the response degrades (flagged partial) instead of failing.

CI runs this module with ``LOTUSX_FAULT_SPEC`` variants as the
fault-matrix smoke job; the spec in the environment is installed on top
of the per-test faults, which must not disturb these invariants either.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp_xml
from repro.engine.database import LotusXDatabase
from repro.fleet import FleetConfig
from repro.resilience import faults
from repro.resilience.errors import ShardsUnavailable
from repro.resilience.retry import RetryPolicy
from repro.shard.database import ShardedDatabase
from tests.test_shard_cross_check import SHARDS, _canonical
from tests.test_twig_cross_check import (
    HARNESS_BATCHES,
    HARNESS_CASES_PER_BATCH,
    _harness_document,
    _harness_pattern,
    _harness_shape,
)

#: Every 5th harness seed: 80 differential cases per drill — enough to
#: cover every shape in the matrix while keeping the fault drills inside
#: the tier-1 budget (the full 400 runs fault-free in
#: ``test_shard_cross_check``).
DRILL_SEEDS = range(0, HARNESS_BATCHES * HARNESS_CASES_PER_BATCH, 5)

#: No backoff sleeps inside the drill loop.
FAST_FLEET = FleetConfig(
    replicas=2,
    retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0),
    hedge_ms=0.0,
)

#: One replica of every shard is crashed; its peer must carry the load.
CRASH_SPEC = "fleet.replica.*.0:error=injected replica crash"


def _drill_pair(seed: int):
    mono = LotusXDatabase(_harness_document(seed))
    sharded = ShardedDatabase.from_document(
        _harness_document(seed),
        SHARDS,
        executor_mode="serial",
        replicas=2,
        fleet_config=FAST_FLEET,
    )
    return mono, sharded


def test_one_replica_of_each_shard_crashed_is_invisible():
    faults.install_spec(CRASH_SPEC)
    for seed in DRILL_SEEDS:
        shape = _harness_shape(seed % HARNESS_CASES_PER_BATCH)
        prune = seed % 3 == 0
        mono, sharded = _drill_pair(seed)
        pattern = _harness_pattern(seed, shape)
        oracle = _canonical(mono.matches(pattern, prune_streams=prune))
        got = _canonical(sharded.matches(pattern.copy(), prune_streams=prune))
        assert got == oracle, (
            f"fleet with crashed replicas disagrees with mono:"
            f" seed={seed} shape={shape} prune={prune} pattern={pattern}"
        )
        sharded.close()


def test_one_replica_of_each_shard_hung_is_invisible():
    """Hung (not crashed) replicas: hedging fires the healthy peer.

    A smaller seed subset — every hang costs real wall-clock until the
    hedge trigger fires.
    """
    config = FleetConfig(
        replicas=2,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0),
        hedge_ms=10.0,
        # Keep the hung replica in rotation so hedging (not health
        # ranking) is what the drill exercises.
        suspect_after=50,
        dead_after=50,
    )
    faults.install_spec("fleet.replica.*.0:latency=0.2")
    for seed in range(0, 100, 20):
        shape = _harness_shape(seed % HARNESS_CASES_PER_BATCH)
        mono = LotusXDatabase(_harness_document(seed))
        sharded = ShardedDatabase.from_document(
            _harness_document(seed),
            SHARDS,
            executor_mode="serial",
            replicas=2,
            fleet_config=config,
        )
        pattern = _harness_pattern(seed, shape)
        oracle = _canonical(mono.matches(pattern))
        got = _canonical(sharded.matches(pattern.copy()))
        assert got == oracle, f"seed={seed} shape={shape} pattern={pattern}"
        sharded.close()


# ---------------------------------------------------------------------------
# Whole-group loss: degraded salvage, not 500s
# ---------------------------------------------------------------------------


@pytest.fixture()
def fleet_corpus():
    xml_text = generate_dblp_xml(120, 11)
    sharded = ShardedDatabase.from_string(
        xml_text,
        3,
        executor_mode="thread",
        replicas=2,
        fleet_config=FleetConfig(
            replicas=2,
            retry=RetryPolicy(
                max_attempts=2, base_delay_s=0.0, max_delay_s=0.0
            ),
            hedge_ms=0.0,
        ),
    )
    yield sharded
    sharded.close()


def test_dead_group_degrades_search_instead_of_failing(fleet_corpus):
    faults.install_spec(
        "fleet.replica.1.0:error=down;fleet.replica.1.1:error=down"
    )
    response = fleet_corpus.search("//article/title", k=10, rewrite=False)
    assert "shard-1-unavailable" in response.degraded
    assert response.truncated
    assert response.results  # the surviving shards' answers are served
    as_dict = response.as_dict()
    assert as_dict["degraded"] == list(response.degraded)


def test_dead_group_degrades_keyword_search(fleet_corpus):
    faults.install_spec(
        "fleet.replica.2.0:error=down;fleet.replica.2.1:error=down"
    )
    # "database query" routes to all three shards (term presence), so
    # killing group 2 is guaranteed to be observed.
    response = fleet_corpus.keyword_search("database query", k=10)
    assert "shard-2-unavailable" in response.degraded
    assert response.truncated
    assert response.as_dict()["degraded"] == ["shard-2-unavailable"]


def test_dead_group_matches_raises_with_partial(fleet_corpus):
    faults.install_spec(
        "fleet.replica.0.0:error=down;fleet.replica.0.1:error=down"
    )
    with pytest.raises(ShardsUnavailable) as excinfo:
        fleet_corpus.matches("//article/title")
    assert excinfo.value.down == (0,)
    assert excinfo.value.partial  # surviving shards' merged matches
    payload = excinfo.value.payload()
    assert payload["code"] == "shards_unavailable"
    assert payload["down_shards"] == [0]

    # Degraded results must not poison the cache: with the faults gone,
    # the same query is complete again.
    faults.clear()
    complete = fleet_corpus.matches("//article/title")
    assert len(complete) > len(excinfo.value.partial)


def test_recovery_after_faults_clear(fleet_corpus):
    faults.install_spec(
        "fleet.replica.1.0:error=down;fleet.replica.1.1:error=down"
    )
    degraded = fleet_corpus.search("//article[./author]", k=10, rewrite=False)
    assert degraded.degraded
    faults.clear()
    recovered = fleet_corpus.search("//article[./author]", k=10, rewrite=False)
    assert recovered.degraded == ()
    assert len(recovered.results) >= len(degraded.results)
    counters = fleet_corpus.fleet.counters
    assert counters["groups_down"] >= 1
    assert counters["retries"] >= 1
