"""Serving a sharded fleet: routing, executors, HTTP API, hot reload."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.datasets import generate_dblp_xml, generate_xmark_xml
from repro.engine.database import LotusXDatabase
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.server.app import make_server
from repro.server.reload import DatabaseHolder, ReloadSource, serving_element_count
from repro.shard.database import ShardedDatabase
from repro.shard.executor import _fork_available


@pytest.fixture(scope="module")
def fleet():
    database = ShardedDatabase.from_string(
        generate_dblp_xml(80, 9), 3, executor_mode="serial"
    )
    yield database
    database.close()


# ---------------------------------------------------------------------------
# Routing and pruning
# ---------------------------------------------------------------------------


def test_router_prunes_infeasible_shards():
    # Heterogeneous sections: after a 2-shard split the <book> units and
    # the <cd> units land on different shards, so tag routing must skip
    # the shard that cannot possibly answer.
    xml_text = (
        "<lib>"
        + "".join(f"<book><title>b{i} saga</title></book>" for i in range(6))
        + "".join(f"<cd><artist>a{i} band</artist></cd>" for i in range(6))
        + "</lib>"
    )
    fleet = ShardedDatabase.from_string(xml_text, 2, executor_mode="serial")
    try:
        tag_sets = [
            set(shard.labeled.tags()) - {"lib"} for shard in fleet.shards
        ]
        assert "cd" not in tag_sets[0] or "book" not in tag_sets[1]
        assert fleet.matches("//book/title")  # answered from one shard
        stats = fleet.router.statistics()
        assert stats["pattern_queries"] == 1
        assert stats["pruned_queries"] == 1
        assert stats["shards_pruned"] == 1
        # Keyword routing prunes on term presence the same way.
        fleet.keyword_search("saga")
        stats = fleet.router.statistics()
        assert stats["keyword_queries"] == 1
        assert stats["shards_pruned"] == 2
    finally:
        fleet.close()


def test_spine_rooted_query_falls_back(fleet):
    before = fleet.router.statistics()["fallback_queries"]
    mono = LotusXDatabase.from_string(generate_dblp_xml(80, 9))
    query = "//dblp[./article][./inproceedings]"
    expected = {
        tuple(sorted((n, e.region.start) for n, e in m.assignments.items()))
        for m in mono.matches(query)
    }
    got = {
        tuple(sorted((n, e.region.start) for n, e in m.assignments.items()))
        for m in fleet.matches(query)
    }
    assert got == expected
    assert fleet.router.statistics()["fallback_queries"] > before


def test_cache_statistics_expose_fleet_detail(fleet):
    stats = fleet.cache_statistics()
    assert stats["shard_count"] == 3
    assert len(stats["per_shard"]) == 3
    assert set(stats["router"]) >= {"pruned_queries", "shards_pruned"}
    assert "scatter_evaluations" in stats["counters"]


# ---------------------------------------------------------------------------
# Executor modes and deadlines
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "mode",
    ["thread", pytest.param("process", marks=pytest.mark.skipif(
        not _fork_available(), reason="fork start method unavailable"
    ))],
)
def test_executor_modes_agree_with_serial(mode):
    xml_text = generate_xmark_xml(8, 3)
    serial = ShardedDatabase.from_string(xml_text, 2, executor_mode="serial")
    other = ShardedDatabase.from_string(xml_text, 2, executor_mode=mode)
    try:
        for query in ("//item/name", '//item[./name~"gold"]', "//person"):
            expected = [
                sorted((n, e.region.start) for n, e in m.assignments.items())
                for m in serial.matches(query)
            ]
            got = [
                sorted((n, e.region.start) for n, e in m.assignments.items())
                for m in other.matches(query)
            ]
            assert got == expected, (mode, query)
    finally:
        serial.close()
        other.close()


def test_expired_deadline_raises_with_partial(fleet):
    deadline = Deadline(timeout_s=0.0)
    with pytest.raises(DeadlineExceeded):
        fleet.matches("//article/author", deadline=deadline)


# ---------------------------------------------------------------------------
# Reload source and HTTP serving
# ---------------------------------------------------------------------------


def test_reload_source_rejects_sharded_attribute_expansion():
    with pytest.raises(ValueError):
        ReloadSource("xml", "corpus.xml", expand_attributes=True, shards=2)


def test_serving_element_count_both_flavors(fleet):
    mono = LotusXDatabase.from_string("<r><a>x</a></r>")
    assert serving_element_count(mono) == 2
    assert serving_element_count(fleet) == fleet.element_count


def test_http_api_over_sharded_fleet(tmp_path):
    corpus = tmp_path / "corpus.xml"
    corpus.write_text(generate_dblp_xml(60, 13), encoding="utf-8")
    database = ShardedDatabase.from_file(corpus, 2, executor_mode="serial")
    holder = DatabaseHolder(
        database, ReloadSource("xml", str(corpus), shards=2)
    )
    server = make_server(holder)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def get(path):
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as reply:
            return json.loads(reply.read())

    def post(path, payload):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as reply:
            return json.loads(reply.read())

    try:
        stats = get("/api/stats")
        assert stats["generation"] == 1
        assert stats["caches"]["shard_count"] == 2
        assert len(stats["caches"]["per_shard"]) == 2
        assert "router" in stats["caches"]

        search = post("/api/search", {"query": "//article/title", "k": 3})
        assert search["results"]

        keyword = post("/api/keyword", {"query": "xml", "k": 3})
        assert "hits" in keyword

        complete = post(
            "/api/complete", {"kind": "tag", "prefix": "a", "query": "//article"}
        )
        assert complete["candidates"]

        # Hot reload rebuilds the whole fleet and bumps the generation.
        reload_reply = post("/api/reload", {})
        assert reload_reply["generation"] == 2
        assert get("/api/stats")["generation"] == 2
    finally:
        server.shutdown()
        server.server_close()
        holder.current.close()
