"""Differential testing of the twig algorithm family.

Two complementary layers keep every algorithm pinned to the naive
oracle:

* a hypothesis property (shrinking counterexamples) over random
  documents and random child/descendant patterns, and
* a seeded harness that enumerates a fixed case matrix guaranteeing
  coverage of the axes random generation rarely combines — ordered
  siblings, optional branches, value and structural negation, stream
  pruning — with the case seed in every assertion message so a failure
  replays exactly.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.element_index import StreamFactory
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.path_stack import path_stack_match
from repro.twig.algorithms.structural_join import structural_join_match
from repro.twig.algorithms.tjfast import tjfast_match
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import sort_matches
from repro.twig.pattern import (
    AbsentBranchPredicate,
    Axis,
    ContainsPredicate,
    EqualsPredicate,
    NotPredicate,
    TwigPattern,
)
from repro.twig.planner import Algorithm, evaluate
from repro.xmlio.tree import Document, Element

TAGS = ["a", "b", "c", "d"]
WORDS = ["red", "blue", "green"]

# ---------------------------------------------------------------------------
# Random documents (small alphabet so tags collide and nest)
# ---------------------------------------------------------------------------


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(2, 25))
    root = Element("r")
    open_elements = [root]
    for _ in range(size):
        parent = rng.choice(open_elements)
        child = parent.make_child(rng.choice(TAGS))
        if rng.random() < 0.4:
            child.append_text(" ".join(rng.sample(WORDS, rng.randint(1, 2))))
        open_elements.append(child)
        if len(open_elements) > 6:
            open_elements.pop(0)
    return Document(root)


@st.composite
def patterns(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    node_count = draw(st.integers(1, 5))
    ordered = draw(st.booleans())
    pattern = TwigPattern(_random_tag(rng), ordered=ordered)
    nodes = [pattern.root]
    for _ in range(node_count - 1):
        parent = rng.choice(nodes)
        axis = Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT
        predicate = (
            ContainsPredicate(rng.choice(WORDS)) if rng.random() < 0.3 else None
        )
        nodes.append(pattern.add_child(parent, _random_tag(rng), axis, predicate))
    return pattern


def _random_tag(rng: random.Random) -> str | None:
    return None if rng.random() < 0.15 else rng.choice(TAGS + ["r"])


# ---------------------------------------------------------------------------
# The property
# ---------------------------------------------------------------------------


@given(documents(), patterns())
@settings(max_examples=250, deadline=None)
def test_all_algorithms_agree_with_naive(document, pattern):
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    factory = StreamFactory(labeled, term_index)
    streams = build_streams(pattern, factory)

    oracle = sort_matches(naive_match(pattern, labeled, term_index))
    assert sort_matches(twig_stack_match(pattern, streams)) == oracle
    assert sort_matches(structural_join_match(pattern, streams)) == oracle
    assert sort_matches(tjfast_match(pattern, streams, term_index)) == oracle
    if pattern.is_path():
        assert sort_matches(path_stack_match(pattern, streams)) == oracle


@given(documents(), patterns())
@settings(max_examples=100, deadline=None)
def test_matches_actually_embed_the_pattern(document, pattern):
    """Every reported match satisfies every tag, axis, and predicate."""
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    factory = StreamFactory(labeled, term_index)
    streams = build_streams(pattern, factory)

    for match in twig_stack_match(pattern, streams):
        for node in pattern.nodes():
            element = match.element(node.node_id)
            assert node.accepts_tag(element.tag)
            if node.predicate is not None:
                assert node.predicate.matches(element, term_index)
            if node.parent is not None:
                parent_element = match.element(node.parent.node_id)
                if node.axis is Axis.CHILD:
                    assert parent_element.region.is_parent_of(element.region)
                else:
                    assert parent_element.region.is_ancestor_of(element.region)


# ---------------------------------------------------------------------------
# Seeded differential harness: ordered / optional / negation coverage
# ---------------------------------------------------------------------------
#
# Cases are addressed by a single integer seed; document and pattern each
# derive their own ``random.Random`` from it, so a failing case is fully
# reconstructible from the seed alone.  Even-numbered cases force a linear
# path shape so PathStack (only defined on paths) gets half the matrix.

HARNESS_BATCHES = 10
HARNESS_CASES_PER_BATCH = 40
_PATTERN_SEED_SALT = 0x9E3779B9


def _harness_shape(case: int) -> str:
    return "path" if case % 2 == 0 else "tree"


def _harness_document(seed: int) -> Document:
    rng = random.Random(seed)
    size = rng.randint(3, 40)
    root = Element("r")
    open_elements = [root]
    for _ in range(size):
        parent = rng.choice(open_elements)
        child = parent.make_child(rng.choice(TAGS))
        roll = rng.random()
        if roll < 0.25:
            # Single-word direct text so EqualsPredicate can be satisfied.
            child.append_text(rng.choice(WORDS))
        elif roll < 0.45:
            child.append_text(" ".join(rng.sample(WORDS, 2)))
        open_elements.append(child)
        if len(open_elements) > 6:
            open_elements.pop(0)
    return Document(root)


def _harness_predicate(rng: random.Random):
    roll = rng.random()
    if roll < 0.12:
        return ContainsPredicate(rng.choice(WORDS))
    if roll < 0.20:
        return EqualsPredicate(rng.choice(WORDS))
    if roll < 0.28:
        inner_kind = ContainsPredicate if rng.random() < 0.5 else EqualsPredicate
        return NotPredicate(inner_kind(rng.choice(WORDS)))
    if roll < 0.36:
        axis = Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT
        return AbsentBranchPredicate(rng.choice(TAGS), axis)
    return None


def _harness_pattern(seed: int, shape: str) -> TwigPattern:
    rng = random.Random(seed ^ _PATTERN_SEED_SALT)
    node_count = rng.randint(1, 6)
    ordered = rng.random() < 0.3
    pattern = TwigPattern(
        _random_tag(rng), predicate=_harness_predicate(rng), ordered=ordered
    )
    nodes = [pattern.root]
    for _ in range(node_count - 1):
        parent = nodes[-1] if shape == "path" else rng.choice(nodes)
        axis = Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT
        nodes.append(
            pattern.add_child(
                parent, _random_tag(rng), axis, _harness_predicate(rng)
            )
        )
    if len(nodes) > 1 and rng.random() < 0.3:
        rng.choice(nodes).is_output = True
    # Optional nodes bind-when-possible but never eliminate a match; an
    # output must always be bound, so only non-output leaves qualify.
    output_ids = {node.node_id for node in pattern.output_nodes()}
    for leaf in pattern.leaves():
        if leaf.is_root or leaf.node_id in output_ids:
            continue
        if rng.random() < 0.3:
            leaf.optional = True
    return pattern


def _harness_algorithms(pattern: TwigPattern) -> list[Algorithm]:
    algorithms = [
        Algorithm.STRUCTURAL_JOIN,
        Algorithm.TWIG_STACK,
        Algorithm.TJFAST,
    ]
    if pattern.is_path():
        algorithms.append(Algorithm.PATH_STACK)
    return algorithms


@pytest.mark.parametrize("batch", range(HARNESS_BATCHES))
def test_differential_harness(batch):
    for case in range(HARNESS_CASES_PER_BATCH):
        seed = batch * HARNESS_CASES_PER_BATCH + case
        shape = _harness_shape(case)
        prune = seed % 3 == 0
        document = _harness_document(seed)
        labeled = label_document(document)
        term_index = TermIndex(labeled)
        factory = StreamFactory(labeled, term_index)
        pattern = _harness_pattern(seed, shape)
        context = f"seed={seed} shape={shape} prune={prune} pattern={pattern}"

        oracle = sort_matches(
            evaluate(pattern, labeled, factory, Algorithm.NAIVE)
        )
        for algorithm in _harness_algorithms(pattern):
            got = sort_matches(
                evaluate(
                    pattern, labeled, factory, algorithm, prune_streams=prune
                )
            )
            assert got == oracle, (
                f"{algorithm.value} disagrees with naive oracle"
                f" ({len(got)} vs {len(oracle)} matches): {context}"
            )


def test_differential_harness_coverage():
    """The case matrix actually covers what it claims to cover.

    Deterministic by construction (same seeds as the harness), so these
    floors are exact counts, not probabilistic hopes; they fail loudly if
    a generator tweak silently guts an axis.
    """
    counts: Counter = Counter()
    total = HARNESS_BATCHES * HARNESS_CASES_PER_BATCH
    for seed in range(total):
        pattern = _harness_pattern(seed, _harness_shape(seed))
        counts["cases"] += 1
        if pattern.is_path():
            counts["path"] += 1
        if pattern.ordered:
            counts["ordered"] += 1
        if pattern.has_optional():
            counts["optional"] += 1
        if any(
            isinstance(n.predicate, (NotPredicate, AbsentBranchPredicate))
            for n in pattern.nodes()
        ):
            counts["negation"] += 1
        if seed % 3 == 0:
            counts["pruned"] += 1
    # 200+ cases per algorithm: every case runs StructuralJoin, TwigStack,
    # and TJFast; PathStack runs on the path-shaped half.
    assert counts["cases"] >= 400, counts
    assert counts["path"] >= 200, counts
    assert counts["ordered"] >= 60, counts
    assert counts["optional"] >= 60, counts
    assert counts["negation"] >= 60, counts
    assert counts["pruned"] >= 100, counts
