"""Property-based cross-check: all algorithms agree with the naive oracle
on random documents and random patterns (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.element_index import StreamFactory
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.path_stack import path_stack_match
from repro.twig.algorithms.structural_join import structural_join_match
from repro.twig.algorithms.tjfast import tjfast_match
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import sort_matches
from repro.twig.pattern import Axis, ContainsPredicate, TwigPattern
from repro.xmlio.tree import Document, Element

TAGS = ["a", "b", "c", "d"]
WORDS = ["red", "blue", "green"]

# ---------------------------------------------------------------------------
# Random documents (small alphabet so tags collide and nest)
# ---------------------------------------------------------------------------


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(2, 25))
    root = Element("r")
    open_elements = [root]
    for _ in range(size):
        parent = rng.choice(open_elements)
        child = parent.make_child(rng.choice(TAGS))
        if rng.random() < 0.4:
            child.append_text(" ".join(rng.sample(WORDS, rng.randint(1, 2))))
        open_elements.append(child)
        if len(open_elements) > 6:
            open_elements.pop(0)
    return Document(root)


@st.composite
def patterns(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    node_count = draw(st.integers(1, 5))
    ordered = draw(st.booleans())
    pattern = TwigPattern(_random_tag(rng), ordered=ordered)
    nodes = [pattern.root]
    for _ in range(node_count - 1):
        parent = rng.choice(nodes)
        axis = Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT
        predicate = (
            ContainsPredicate(rng.choice(WORDS)) if rng.random() < 0.3 else None
        )
        nodes.append(pattern.add_child(parent, _random_tag(rng), axis, predicate))
    return pattern


def _random_tag(rng: random.Random) -> str | None:
    return None if rng.random() < 0.15 else rng.choice(TAGS + ["r"])


# ---------------------------------------------------------------------------
# The property
# ---------------------------------------------------------------------------


@given(documents(), patterns())
@settings(max_examples=250, deadline=None)
def test_all_algorithms_agree_with_naive(document, pattern):
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    factory = StreamFactory(labeled, term_index)
    streams = build_streams(pattern, factory)

    oracle = sort_matches(naive_match(pattern, labeled, term_index))
    assert sort_matches(twig_stack_match(pattern, streams)) == oracle
    assert sort_matches(structural_join_match(pattern, streams)) == oracle
    assert sort_matches(tjfast_match(pattern, streams, term_index)) == oracle
    if pattern.is_path():
        assert sort_matches(path_stack_match(pattern, streams)) == oracle


@given(documents(), patterns())
@settings(max_examples=100, deadline=None)
def test_matches_actually_embed_the_pattern(document, pattern):
    """Every reported match satisfies every tag, axis, and predicate."""
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    factory = StreamFactory(labeled, term_index)
    streams = build_streams(pattern, factory)

    for match in twig_stack_match(pattern, streams):
        for node in pattern.nodes():
            element = match.element(node.node_id)
            assert node.accepts_tag(element.tag)
            if node.predicate is not None:
                assert node.predicate.matches(element, term_index)
            if node.parent is not None:
                parent_element = match.element(node.parent.node_id)
                if node.axis is Axis.CHILD:
                    assert parent_element.region.is_parent_of(element.region)
                else:
                    assert parent_element.region.is_ancestor_of(element.region)
