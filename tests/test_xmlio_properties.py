"""Property-based tests for the XML substrate (hypothesis).

The central invariant: for any tree we can build, serialize → parse
reproduces the tree exactly (tags, attributes, text), and serialize is a
fixpoint after one round trip.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize
from repro.xmlio.tree import Document, Element

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

tag_names = st.from_regex(r"[a-z][a-z0-9_.-]{0,7}", fullmatch=True)
attr_names = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True)
# Printable text including XML-special characters (escaping must handle them).
text_values = st.text(
    alphabet=st.characters(
        codec="utf-8", categories=("L", "N", "P", "S", "Zs")
    ),
    min_size=0,
    max_size=20,
)


@st.composite
def elements(draw, depth: int = 3):
    element = Element(
        draw(tag_names),
        dict(
            draw(
                st.dictionaries(attr_names, text_values, max_size=3)
            )
        ),
    )
    if depth > 0:
        for child_kind in draw(
            st.lists(st.sampled_from(["element", "text"]), max_size=4)
        ):
            if child_kind == "element":
                element.append(draw(elements(depth=depth - 1)))
            else:
                text = draw(text_values)
                if text:
                    element.append_text(text)
    return element


documents = elements().map(Document)

# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


def _shape(element: Element):
    """Canonical structural fingerprint of a tree."""
    return (
        element.tag,
        tuple(sorted(element.attributes.items())),
        element.direct_text,
        tuple(_shape(child) for child in element.child_elements()),
    )


@given(documents)
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip_preserves_tree(document):
    reparsed = parse_string(serialize(document))
    assert _shape(reparsed.root) == _shape(document.root)


@given(documents)
@settings(max_examples=100, deadline=None)
def test_serialize_is_a_fixpoint(document):
    once = serialize(document)
    assert serialize(parse_string(once)) == once


@given(documents)
@settings(max_examples=100, deadline=None)
def test_full_text_preserved(document):
    reparsed = parse_string(serialize(document))
    assert reparsed.root.text == document.root.text


@given(documents)
@settings(max_examples=50, deadline=None)
def test_element_count_preserved(document):
    reparsed = parse_string(serialize(document))
    assert reparsed.count_elements() == document.count_elements()
