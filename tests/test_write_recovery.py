"""Crash matrix for the WAL-backed write path.

Durability contract under test:

* **Acknowledged means recoverable** — a mutation whose submission
  returned is in the WAL; killing the process anywhere afterwards and
  reopening the base + WAL lands on exactly the state that includes it.
* **Torn tails are repaired, never served** — the log is cut at every
  record boundary *and* mid-record; recovery always lands on the longest
  intact record prefix, truncates the garbage, and keeps accepting
  writes.
* **Half-applied states are unreachable** — an injected crash between
  WAL append and in-memory application (``write.apply``) wedges the
  writer fail-stop: the old view keeps serving, the new document is
  never partially visible, and a restart replays the durable record.
* **Pre-durability failures leave no trace** — an injected crash at
  ``write.wal.append`` rejects the submission without logging anything;
  the writer stays healthy.

Non-crash corruption (bad magic, a broken seqno chain) is *not*
repairable silence — it must raise :class:`WalError` loudly.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.engine.database import LotusXDatabase
from repro.resilience import faults
from repro.write.segments import Mutation, SegmentedCorpus
from repro.write.wal import WAL_MAGIC, WalError, WalRecord, WriteAheadLog
from repro.write.writer import WriterWedged, open_writable_database
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize

BASE_XML = (
    "<dblp>"
    "<article key='a1'><title>holistic twig joins</title>"
    "<author>nicolas bruno</author></article>"
    "<book key='b1'><title>xml data management</title></book>"
    "</dblp>"
)

#: A fixed mutation schedule exercising all three verbs plus an update
#: of a WAL-born document (ids must resolve through the replay).
SCHEDULE = [
    ("insert", "doc-1", "<article><title>stream kernels</title><year>2024</year></article>"),
    ("insert", "doc-2", "<inproceedings><title>delta segments</title><author>jiaheng lu</author></inproceedings>"),
    ("update", "base-1", "<article key='a1'><title>holistic twig joins revised</title></article>"),
    ("delete", "base-2", None),
    ("update", "doc-1", "<article><title>stream kernels redux</title><author>chunbin lin</author><year>2025</year></article>"),
    ("insert", "doc-3", "<book><title>recovery handbook</title></book>"),
    ("delete", "doc-2", None),
]


def _fresh_base() -> LotusXDatabase:
    return LotusXDatabase.from_string(BASE_XML)


def _build_wal(tmp_path):
    """Run the fixed schedule; returns the closed WAL's path + records."""
    wal_path = tmp_path / "full.lxwal"
    database = open_writable_database(_fresh_base(), wal_path, synchronous=True)
    try:
        for op, doc_id, xml in SCHEDULE:
            database.writer.submit(op, doc_id, xml)
    finally:
        database.close()
    with WriteAheadLog(wal_path) as wal:
        records = wal.records()
    assert len(records) == len(SCHEDULE)
    return wal_path, records


def _frame_boundaries(records: list[WalRecord]) -> list[int]:
    """Byte offset of each record boundary (offset 0 = after magic)."""
    boundaries = [len(WAL_MAGIC)]
    for record in records:
        boundaries.append(boundaries[-1] + 8 + len(record.payload()))
    return boundaries


def _oracle_xml(records: list[WalRecord]) -> str:
    """The document a cold replay of exactly ``records`` produces."""
    corpus = SegmentedCorpus(_fresh_base())
    if records:
        corpus.apply(
            [
                Mutation(
                    record.seqno,
                    record.op,
                    record.doc_id,
                    parse_string(record.xml).root if record.xml is not None else None,
                )
                for record in records
            ]
        )
    return serialize(corpus.checkpoint_document())


def test_crash_at_every_record_boundary_and_mid_record(tmp_path):
    """The full truncation matrix: each cut recovers the intact prefix."""
    wal_path, records = _build_wal(tmp_path)
    raw = wal_path.read_bytes()
    boundaries = _frame_boundaries(records)
    assert boundaries[-1] == len(raw)

    cuts = []
    for kept, offset in enumerate(boundaries):
        cuts.append((kept, offset))  # clean cut at a record boundary
        if offset < len(raw):
            cuts.append((kept, offset + 3))  # torn: header fragment
            cuts.append((kept, (offset + boundaries[kept + 1]) // 2))  # torn: mid-payload
    for kept, cut in cuts:
        crash_path = tmp_path / f"crash-{kept}-{cut}.lxwal"
        crash_path.write_bytes(raw[:cut])
        recovered = open_writable_database(
            _fresh_base(), crash_path, synchronous=True
        )
        try:
            writer = recovered.writer
            assert writer.last_applied_seqno == kept, f"cut at byte {cut}"
            assert not writer.wedged
            stats = writer.statistics()
            assert stats["wal_records"] == kept
            # The torn tail was physically truncated by the repair.
            assert crash_path.stat().st_size == boundaries[kept]
            assert serialize(writer._corpus.checkpoint_document()) == _oracle_xml(
                records[:kept]
            ), f"cut at byte {cut}"
            # Recovery must keep accepting writes (seqno chain continues).
            seqno = writer.insert_document("<article><title>post crash</title></article>")
            assert seqno == kept + 1
        finally:
            recovered.close()


def test_unrepaired_open_refuses_torn_tail(tmp_path):
    wal_path, records = _build_wal(tmp_path)
    raw = wal_path.read_bytes()
    torn = tmp_path / "torn.lxwal"
    torn.write_bytes(raw[:-5])
    with pytest.raises(WalError, match="torn"):
        WriteAheadLog(torn, repair=False)
    # The strict open must not have modified the file.
    assert torn.read_bytes() == raw[:-5]


def test_mid_file_corruption_discards_the_suffix(tmp_path):
    """A flipped byte inside record 3's payload fails its CRC; recovery
    keeps records 1-2 and drops everything from the damage onward."""
    wal_path, records = _build_wal(tmp_path)
    raw = bytearray(wal_path.read_bytes())
    boundaries = _frame_boundaries(records)
    victim = boundaries[2] + 8 + 4  # inside the third record's payload
    raw[victim] ^= 0xFF
    damaged = tmp_path / "damaged.lxwal"
    damaged.write_bytes(bytes(raw))
    recovered = open_writable_database(_fresh_base(), damaged, synchronous=True)
    try:
        assert recovered.writer.last_applied_seqno == 2
        assert serialize(
            recovered.writer._corpus.checkpoint_document()
        ) == _oracle_xml(records[:2])
    finally:
        recovered.close()


def test_bad_magic_is_not_repairable(tmp_path):
    path = tmp_path / "not-a-wal.lxwal"
    path.write_bytes(b"GARBAGE!" + b"\x00" * 32)
    with pytest.raises(WalError, match="magic"):
        WriteAheadLog(path)


def test_broken_seqno_chain_is_not_repairable(tmp_path):
    """A gap in the seqno chain means records were lost *mid-file* —
    that is corruption, not a crash tail, and must fail loudly."""
    frame = struct.Struct(">II")
    blob = bytearray(WAL_MAGIC)
    for seqno in (1, 3):  # seqno 2 is missing
        payload = WalRecord(seqno, "insert", f"doc-{seqno}", "<a/>").payload()
        blob += frame.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        blob += payload
    path = tmp_path / "gap.lxwal"
    path.write_bytes(bytes(blob))
    with pytest.raises(WalError, match="seqno"):
        WriteAheadLog(path)


# ----------------------------------------------------------------------
# Fault-injected crashes between durability and application
# ----------------------------------------------------------------------


def test_apply_crash_wedges_writer_and_replay_recovers(tmp_path):
    """Durable-but-unapplied: the writer goes fail-stop, readers keep the
    old view, and a restart replays the orphaned record."""
    wal_path = tmp_path / "wedge.lxwal"
    database = open_writable_database(_fresh_base(), wal_path, synchronous=True)
    try:
        writer = database.writer
        writer.insert_document(
            "<article><title>applied before crash</title></article>"
        )
        before = database.search("//article/title", k=10).as_dict()
        generation = database.serving_generation
        with faults.injected(
            "write.apply", error=RuntimeError("injected apply crash")
        ):
            with pytest.raises(WriterWedged, match="injected apply crash"):
                writer.insert_document(
                    "<article><title>never half visible</title></article>"
                )
        assert writer.wedged
        assert writer.statistics()["counters"]["apply_failures"] == 1
        # The old view serves untouched — the doomed batch is invisible.
        assert database.serving_generation == generation
        after = database.search("//article/title", k=10).as_dict()
        before.pop("elapsed_seconds"), after.pop("elapsed_seconds")
        assert after == before
        assert all(
            "never half visible" not in hit["snippet"] for hit in after["results"]
        )
        # Every further verb is refused, loudly.
        for call in (
            lambda: writer.insert_document("<a><b>x</b></a>"),
            lambda: writer.delete_document("base-1"),
            lambda: writer.wait_for(2, timeout=0.1),
            lambda: writer.checkpoint(tmp_path / "nope.lxsnap"),
        ):
            with pytest.raises(WriterWedged):
                call()
        durable = writer.statistics()["wal_records"]
        assert durable == 2  # the doomed mutation IS in the log
    finally:
        database.close()

    recovered = open_writable_database(_fresh_base(), wal_path, synchronous=True)
    try:
        assert recovered.writer.last_applied_seqno == 2
        assert not recovered.writer.wedged
        snippets = [
            hit["snippet"]
            for hit in recovered.search("//article/title", k=10).as_dict()["results"]
        ]
        assert any("never half visible" in snippet for snippet in snippets)
    finally:
        recovered.close()


def test_background_apply_crash_wedges_via_wait_for(tmp_path):
    """Same fail-stop contract through the background worker thread."""
    wal_path = tmp_path / "bg.lxwal"
    database = open_writable_database(_fresh_base(), wal_path)
    faults.inject("write.apply", error=RuntimeError("injected bg crash"), times=1)
    try:
        seqno = database.writer.insert_document(
            "<article><title>background casualty</title></article>"
        )
        with pytest.raises(WriterWedged, match="injected bg crash"):
            database.writer.wait_for(seqno, timeout=5)
        assert database.writer.wedged
    finally:
        database.close()
    recovered = open_writable_database(_fresh_base(), wal_path, synchronous=True)
    try:
        assert recovered.writer.last_applied_seqno == seqno
    finally:
        recovered.close()


def test_wal_append_crash_leaves_no_trace(tmp_path):
    """Failing *before* durability rejects the mutation outright — no WAL
    record, no projected id, writer healthy."""
    wal_path = tmp_path / "reject.lxwal"
    database = open_writable_database(_fresh_base(), wal_path, synchronous=True)
    try:
        writer = database.writer
        with faults.injected(
            "write.wal.append", error=RuntimeError("injected log crash")
        ):
            with pytest.raises(RuntimeError, match="injected log crash"):
                writer.insert_document(
                    "<article><title>rejected</title></article>", doc_id="doomed"
                )
        assert not writer.wedged
        stats = writer.statistics()
        assert stats["wal_records"] == 0
        assert stats["last_enqueued_seqno"] == 0
        # The id was never claimed: reusing it must succeed and take the
        # seqno the failed attempt would have used.
        seqno, doc_id = writer.submit(
            "insert", "doomed", "<article><title>accepted</title></article>"
        )
        assert (seqno, doc_id) == (1, "doomed")
        assert "doomed" in database.document_ids()
    finally:
        database.close()


def test_compaction_crash_is_contained(tmp_path):
    """A compaction failure that leaves the segment list untouched is
    counted and survived — the batch that triggered it still applies."""
    wal_path = tmp_path / "compact.lxwal"
    database = open_writable_database(
        _fresh_base(), wal_path, synchronous=True, compact_threshold=2
    )
    try:
        writer = database.writer
        with faults.injected(
            "write.compact", error=RuntimeError("injected compaction crash")
        ):
            for index in range(4):
                writer.insert_document(
                    f"<article><title>survivor {index}</title></article>"
                )
        stats = writer.statistics()
        assert not writer.wedged
        assert stats["counters"]["compaction_failures"] > 0
        assert stats["counters"]["compactions"] == 0
        assert stats["last_applied_seqno"] == 4
        # With the fault gone the next batch compacts normally.
        writer.insert_document("<article><title>the straw</title></article>")
        assert writer.statistics()["counters"]["compactions"] > 0
    finally:
        database.close()
