"""Attribute expansion transform and end-to-end attribute querying."""

import pytest

from repro.engine.database import LotusXDatabase
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize
from repro.xmlio.transform import (
    attribute_tag,
    expand_attributes,
    is_attribute_tag,
)

XML = (
    '<dblp><article key="a1" rating="5"><title>twig joins</title>'
    '<author>lu</author></article>'
    '<article key="a2"><title>xml</title></article></dblp>'
)


class TestTransform:
    def test_attributes_become_first_children(self):
        expanded = expand_attributes(parse_string(XML))
        article = expanded.root.find("article")
        tags = [child.tag for child in article.child_elements()]
        assert tags == ["@key", "@rating", "title", "author"]
        assert article.find("@key").text == "a1"
        assert article.find("@rating").text == "5"

    def test_original_not_mutated(self):
        document = parse_string(XML)
        expand_attributes(document)
        article = document.root.find("article")
        assert [c.tag for c in article.child_elements()] == ["title", "author"]

    def test_attributes_preserved_on_copy(self):
        expanded = expand_attributes(parse_string(XML))
        assert expanded.root.find("article").attributes == {
            "key": "a1",
            "rating": "5",
        }

    def test_text_content_preserved(self):
        document = parse_string(XML)
        expanded = expand_attributes(document)
        # Attribute values add text, so compare per original element.
        assert expanded.root.find("article").find("title").text == "twig joins"

    def test_empty_attribute_value(self):
        expanded = expand_attributes(parse_string('<a k=""/>'))
        assert expanded.root.find("@k").text == ""

    def test_helpers(self):
        assert attribute_tag("key") == "@key"
        assert is_attribute_tag("@key")
        assert not is_attribute_tag("key")

    def test_expanded_tree_is_not_serializable(self):
        # "@key" is not a legal XML name; the shadow copy is index-only.
        from repro.xmlio.errors import SerializationError

        expanded = expand_attributes(parse_string(XML))
        with pytest.raises(SerializationError):
            serialize(expanded)

    def test_original_roundtrip_unaffected(self):
        document = parse_string(XML)
        expand_attributes(document)
        assert parse_string(serialize(document)).count_elements() == 6


class TestAttributeQuerying:
    @pytest.fixture(scope="class")
    def db(self):
        return LotusXDatabase.from_string(XML, expand_attributes=True)

    def test_attribute_equality_twig(self, db):
        matches = db.matches('//article[./@key="a1"]/title')
        assert len(matches) == 1

    def test_attribute_range_twig(self, db):
        assert len(db.matches("//article[./@rating[.>=5]]")) == 1
        assert len(db.matches("//article[./@rating[.>5]]")) == 0

    def test_attribute_as_output(self, db):
        response = db.search("//article/@key", k=10)
        assert {hit.snippet for hit in response} == {"a1", "a2"}

    def test_attribute_xpath_rendering(self, db):
        response = db.search('//article[./title~"twig"]/@key')
        assert response.results[0].xpath == "/dblp[1]/article[1]/@key"

    def test_attribute_tag_completion(self, db):
        pattern = db.parse_query("//article")
        texts = {c.text for c in db.complete_tag(pattern, pattern.root, "@")}
        assert texts == {"@key", "@rating"}

    def test_attribute_value_completion(self, db):
        pattern = db.parse_query("//article/@key")
        node = pattern.root.children[0]
        values = {c.text for c in db.complete_value(pattern, node, "a")}
        assert values == {"a1", "a2"}

    def test_without_expansion_attributes_invisible(self):
        db = LotusXDatabase.from_string(XML)
        assert db.matches("//article/@key") == []
