"""Match model: identity, ordering, output deduplication, order checks."""

import pytest

from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.match import Match, dedupe_output, satisfies_order, sort_matches
from repro.twig.pattern import TwigPattern
from repro.xmlio.builder import parse_string


@pytest.fixture()
def ctx():
    doc = parse_string("<r><a><b/><c/></a><a><c/><b/></a></r>")
    labeled = label_document(doc)
    return labeled


def _pattern_abc():
    pattern = TwigPattern("a")
    b = pattern.add_child(pattern.root, "b")
    c = pattern.add_child(pattern.root, "c")
    return pattern, b, c


class TestMatchIdentity:
    def test_equality_and_hash(self, ctx):
        a = ctx.stream("a")[0]
        b = ctx.stream("b")[0]
        first = Match({0: a, 1: b})
        second = Match({0: a, 1: b})
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_inequality(self, ctx):
        a0, a1 = ctx.stream("a")
        assert Match({0: a0}) != Match({0: a1})

    def test_element_access(self, ctx):
        a = ctx.stream("a")[0]
        match = Match({0: a})
        assert match.element(0) is a

    def test_sort_matches_document_order(self, ctx):
        a0, a1 = ctx.stream("a")
        matches = [Match({0: a1}), Match({0: a0})]
        assert sort_matches(matches) == [Match({0: a0}), Match({0: a1})]


class TestOutputs:
    def test_output_elements_follow_marks(self, ctx):
        pattern, b, _ = _pattern_abc()
        b.is_output = True
        a = ctx.stream("a")[0]
        belem = ctx.stream("b")[0]
        celem = ctx.stream("c")[0]
        match = Match({0: a, b.node_id: belem, 2: celem})
        assert match.output_elements(pattern) == [belem]

    def test_dedupe_output_collapses_same_outputs(self, ctx):
        pattern, b, c = _pattern_abc()
        # Root is the output; two matches binding the same root element.
        a = ctx.stream("a")[0]
        b0 = ctx.stream("b")[0]
        c0 = ctx.stream("c")[0]
        matches = [
            Match({0: a, b.node_id: b0, c.node_id: c0}),
            Match({0: a, b.node_id: b0, c.node_id: c0}),
        ]
        assert len(dedupe_output(matches, pattern)) == 1


class TestOrderConstraints:
    def test_ordered_flag_checks_sibling_order(self, ctx):
        pattern, b, c = _pattern_abc()
        pattern.ordered = True
        first_a, second_a = ctx.stream("a")
        # First <a>: b before c — satisfied.
        match1 = Match(
            {0: first_a, b.node_id: ctx.stream("b")[0], c.node_id: ctx.stream("c")[0]}
        )
        assert satisfies_order(pattern, match1)
        # Second <a>: c before b — violated.
        match2 = Match(
            {0: second_a, b.node_id: ctx.stream("b")[1], c.node_id: ctx.stream("c")[1]}
        )
        assert not satisfies_order(pattern, match2)

    def test_unordered_accepts_both(self, ctx):
        pattern, b, c = _pattern_abc()
        second_a = ctx.stream("a")[1]
        match = Match(
            {0: second_a, b.node_id: ctx.stream("b")[1], c.node_id: ctx.stream("c")[1]}
        )
        assert satisfies_order(pattern, match)

    def test_explicit_constraint_without_flag(self, ctx):
        pattern, b, c = _pattern_abc()
        pattern.add_order_constraint(c, b)  # require c before b
        second_a = ctx.stream("a")[1]
        match = Match(
            {0: second_a, b.node_id: ctx.stream("b")[1], c.node_id: ctx.stream("c")[1]}
        )
        assert satisfies_order(pattern, match)
        first_a = ctx.stream("a")[0]
        match_violating = Match(
            {0: first_a, b.node_id: ctx.stream("b")[0], c.node_id: ctx.stream("c")[0]}
        )
        assert not satisfies_order(pattern, match_violating)

    def test_nested_assignment_never_entirely_before(self, ctx):
        pattern = TwigPattern("r")
        x = pattern.add_child(pattern.root, "a")
        y = pattern.add_child(pattern.root, "b")
        pattern.ordered = True
        root = ctx.elements[0]
        a = ctx.stream("a")[0]
        b_inside_a = ctx.stream("b")[0]
        # b is *inside* a: not entirely before/after — ordered match fails.
        match = Match({0: root, x.node_id: a, y.node_id: b_inside_a})
        assert not satisfies_order(pattern, match)
