"""The per-database match cache."""

import time

import pytest

from repro.engine.database import LotusXDatabase
from repro.twig.planner import Algorithm


@pytest.fixture()
def db(small_db):
    # A fresh database per test so cache state is isolated.
    from tests.conftest import SMALL_XML

    return LotusXDatabase.from_string(SMALL_XML)


class TestMatchCache:
    def test_repeat_queries_hit_the_cache(self, db):
        first = db.matches("//article/author")
        assert len(db._match_cache) == 1
        second = db.matches("//article/author")
        assert first == second
        assert len(db._match_cache) == 1

    def test_cached_result_is_isolated(self, db):
        first = db.matches("//article/author")
        first.clear()  # caller mutates its copy
        assert len(db.matches("//article/author")) == 3

    def test_equivalent_text_and_pattern_share_entry(self, db):
        db.matches("//article/author")
        db.matches(db.parse_query("//article/author"))
        assert len(db._match_cache) == 1

    def test_algorithm_keyed_separately(self, db):
        db.matches("//article/author", Algorithm.TWIG_STACK)
        db.matches("//article/author", Algorithm.NAIVE)
        assert len(db._match_cache) == 2

    def test_stats_calls_bypass_cache(self, db):
        from repro.twig.algorithms.common import AlgorithmStats

        stats = AlgorithmStats()
        db.matches("//article/author", stats=stats)
        assert stats.matches == 3
        assert len(db._match_cache) == 0

    def test_eviction_respects_cap(self, db):
        db.MATCH_CACHE_SIZE = 3
        tags = ["article", "author", "title", "year", "journal"]
        for tag in tags:
            db.matches(f"//{tag}")
        assert len(db._match_cache) == 3

    def test_cache_speeds_up_repeats(self):
        from repro.datasets import generate_dblp

        big = LotusXDatabase(generate_dblp(publications=400, seed=8))
        query = "//dblp//author"
        started = time.perf_counter()
        big.matches(query)
        cold = time.perf_counter() - started
        started = time.perf_counter()
        big.matches(query)
        warm = time.perf_counter() - started
        assert warm < cold
