"""Stream factory and cursors."""

import pytest

from repro.index.element_index import StreamCursor, StreamFactory
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string


@pytest.fixture()
def factory():
    doc = parse_string(
        "<r><a>one</a><b><a>two</a></b><a>three</a><c/></r>"
    )
    labeled = label_document(doc)
    return labeled, StreamFactory(labeled, TermIndex(labeled))


class TestStreams:
    def test_tag_stream(self, factory):
        _, streams = factory
        assert [e.tag for e in streams.stream("a")] == ["a", "a", "a"]

    def test_wildcard_stream_is_all_elements(self, factory):
        labeled, streams = factory
        assert streams.stream(None) == labeled.elements

    def test_missing_tag_stream_empty(self, factory):
        _, streams = factory
        assert streams.stream("zzz") == []

    def test_filtered_stream(self, factory):
        _, streams = factory
        term_index = streams.term_index
        filtered = streams.filtered_stream(
            "a", lambda el: term_index.subtree_contains(el, "two")
        )
        assert len(filtered) == 1
        assert filtered[0].element.text == "two"

    def test_no_filter_returns_base(self, factory):
        _, streams = factory
        assert streams.filtered_stream("a") == streams.stream("a")


class TestCursor:
    def test_walk(self, factory):
        _, streams = factory
        cursor = streams.cursor("a")
        seen = []
        while not cursor.eof():
            seen.append(cursor.head().element.text)
            cursor.advance()
        assert seen == ["one", "two", "three"]

    def test_remaining_and_reset(self, factory):
        _, streams = factory
        cursor = streams.cursor("a")
        assert cursor.remaining() == 3
        cursor.advance()
        assert cursor.remaining() == 2
        cursor.reset()
        assert cursor.remaining() == 3

    def test_empty_cursor(self):
        cursor = StreamCursor([])
        assert cursor.eof()
        assert cursor.remaining() == 0
        with pytest.raises(IndexError):
            cursor.head()
