"""Differential check: a 2-tenant server vs dedicated servers.

The multi-tenant claim is that co-hosting is *invisible* in the bytes: a
request scoped to tenant X on a shared server answers exactly what the
same request answers on a dedicated single-tenant server for X's corpus.
This harness extends the seeded case-matrix idiom of
``test_twig_cross_check`` to the serving layer — the same
``HARNESS_BATCHES x HARNESS_CASES_PER_BATCH`` seed-addressed matrix, the
seed in every assertion message, each seed deriving one request
(satisfiable twig search, keyword query, autocomplete keystroke, or a
deliberately malformed payload — even the 400s must match byte-for-byte)
and the tenant it addresses.

Only ``elapsed_seconds`` (the one wall-clock field, search responses
only) is normalized out, exactly as the transport soak does.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.engine.database import LotusXDatabase
from repro.server.pipeline import RequestPipeline
from repro.tenant.registry import TenantRegistry
from repro.twig.sample import sample_workload

from tests.test_twig_cross_check import (
    HARNESS_BATCHES,
    HARNESS_CASES_PER_BATCH,
    _harness_document,
)

#: Corpus seeds: two structurally different harness documents, one per
#: tenant.  Chosen so both corpora are non-trivial (a few dozen nodes).
CORPUS_SEEDS = {"alpha": 29, "beta": 38}


def _build_databases() -> dict[str, LotusXDatabase]:
    return {
        name: LotusXDatabase(_harness_document(seed))
        for name, seed in CORPUS_SEEDS.items()
    }


def _harness_request(seed: int, database: LotusXDatabase) -> tuple[str, dict]:
    """The request case ``seed`` fires: ``(base_path, payload)``.

    Mostly well-formed (satisfiable searches, vocabulary keywords, tag
    keystrokes), with a deliberate error-shape minority — missing
    fields, bad twig syntax, bad types — because error bytes must match
    across topologies just as answer bytes do.
    """
    rng = random.Random(seed)
    roll = rng.random()
    if roll < 0.10:  # error shapes
        return rng.choice(
            [
                ("/api/search", {}),  # missing query
                ("/api/search", {"query": "//a[["}),  # syntax error
                ("/api/search", {"query": "//a", "k": 0}),  # bad k
                ("/api/keyword", {"query": ""}),
                ("/api/complete", {"k": "many"}),
            ]
        )
    if roll < 0.55:
        pattern = sample_workload(database.labeled, seed, 1, max_nodes=3)[0]
        return (
            "/api/search",
            {"query": str(pattern), "k": rng.randint(1, 8)},
        )
    if roll < 0.80:
        vocabulary = sorted(database.term_index.vocabulary())
        terms = rng.sample(vocabulary, k=min(2, len(vocabulary)))
        if rng.random() < 0.2:
            terms.append("nosuchterm")
        return ("/api/keyword", {"query": " ".join(terms), "k": 5})
    tags = sorted(
        {element.tag for element in database.labeled.elements if element.tag}
    )
    prefix = rng.choice(tags)[: rng.randint(1, 2)] if tags else "a"
    return ("/api/complete", {"prefix": prefix, "k": 8})


def _normalize(status: int, body: bytes) -> str:
    payload = json.loads(body)
    if status == 200:
        payload.pop("elapsed_seconds", None)
    return json.dumps(payload, sort_keys=True)


class TestTenantDifferentialHarness:
    @pytest.fixture(scope="class")
    def topologies(self):
        """One shared 2-tenant pipeline plus a dedicated pipeline per
        tenant, all serving the same database objects."""
        databases = _build_databases()
        registry = TenantRegistry()
        for name, database in databases.items():
            registry.add(name, database)
        shared = RequestPipeline(registry)
        dedicated = {
            name: RequestPipeline(database)
            for name, database in databases.items()
        }
        return databases, shared, dedicated

    @pytest.mark.parametrize("batch", range(HARNESS_BATCHES))
    def test_shared_serving_is_byte_invisible(self, topologies, batch):
        databases, shared, dedicated = topologies
        names = sorted(databases)
        for case in range(HARNESS_CASES_PER_BATCH):
            seed = batch * HARNESS_CASES_PER_BATCH + case
            tenant = names[seed % len(names)]
            base, payload = _harness_request(seed, databases[tenant])
            body = json.dumps(payload, sort_keys=True).encode()

            scoped_path = f"/api/t/{tenant}{base[len('/api'):]}"
            shared_response = shared.handle(
                "POST", scoped_path, body, len(body)
            )
            dedicated_response = dedicated[tenant].handle(
                "POST", base, body, len(body)
            )

            context = (
                f"seed={seed} tenant={tenant} path={base}"
                f" payload={payload!r}"
            )
            assert shared_response.status == dedicated_response.status, (
                f"status diverged ({shared_response.status} vs"
                f" {dedicated_response.status}): {context}"
            )
            assert _normalize(
                shared_response.status, shared_response.body
            ) == _normalize(
                dedicated_response.status, dedicated_response.body
            ), f"body diverged: {context}"

    def test_harness_covers_every_shape(self):
        """The seed matrix actually exercises all four request kinds and
        both tenants — exact counts, same idiom as the twig harness's
        coverage floor."""
        databases = _build_databases()
        names = sorted(databases)
        counts: dict[str, int] = {}
        total = HARNESS_BATCHES * HARNESS_CASES_PER_BATCH
        for seed in range(total):
            tenant = names[seed % len(names)]
            base, payload = _harness_request(seed, databases[tenant])
            counts[base] = counts.get(base, 0) + 1
            counts[tenant] = counts.get(tenant, 0) + 1
            if "query" not in payload and base == "/api/search":
                counts["error_shape"] = counts.get("error_shape", 0) + 1
        assert counts["/api/search"] >= 150, counts
        assert counts["/api/keyword"] >= 60, counts
        assert counts["/api/complete"] >= 60, counts
        assert counts["alpha"] == total // 2, counts
        assert counts["beta"] == total // 2, counts
        assert counts.get("error_shape", 0) >= 5, counts
