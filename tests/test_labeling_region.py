"""Region (containment) label semantics."""

import pytest

from repro.labeling.region import Region


@pytest.fixture()
def family():
    # root [0,9]@0 contains parent [1,6]@1 contains child [2,3]@2;
    # uncle [7,8]@1 follows parent.
    return {
        "root": Region(0, 9, 0),
        "parent": Region(1, 6, 1),
        "child": Region(2, 3, 2),
        "grandchild_sibling": Region(4, 5, 2),
        "uncle": Region(7, 8, 1),
    }


class TestValidation:
    def test_start_before_end_required(self):
        with pytest.raises(ValueError):
            Region(5, 5, 0)
        with pytest.raises(ValueError):
            Region(6, 5, 0)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            Region(0, 1, -1)


class TestAncestry:
    def test_ancestor(self, family):
        assert family["root"].is_ancestor_of(family["child"])
        assert family["parent"].is_ancestor_of(family["child"])

    def test_not_self_ancestor(self, family):
        assert not family["parent"].is_ancestor_of(family["parent"])

    def test_parent_requires_adjacent_levels(self, family):
        assert family["parent"].is_parent_of(family["child"])
        assert not family["root"].is_parent_of(family["child"])

    def test_inverse_relations(self, family):
        assert family["child"].is_descendant_of(family["parent"])
        assert family["child"].is_child_of(family["parent"])

    def test_disjoint_not_related(self, family):
        assert not family["parent"].is_ancestor_of(family["uncle"])
        assert not family["uncle"].is_ancestor_of(family["parent"])

    def test_contains_is_reflexive(self, family):
        assert family["parent"].contains(family["parent"])
        assert family["parent"].contains(family["child"])
        assert not family["child"].contains(family["parent"])


class TestOrdering:
    def test_precedes_by_start(self, family):
        assert family["parent"].precedes(family["uncle"])
        assert family["root"].precedes(family["child"])  # ancestor starts first

    def test_entirely_before_excludes_ancestors(self, family):
        assert family["parent"].entirely_before(family["uncle"])
        assert not family["root"].entirely_before(family["child"])
        assert family["child"].entirely_before(family["grandchild_sibling"])

    def test_sort_order_is_document_order(self, family):
        regions = sorted(family.values())
        assert regions[0] == family["root"]
        assert regions[-1] == family["uncle"]

    def test_overlaps(self, family):
        assert family["root"].overlaps(family["child"])
        assert family["child"].overlaps(family["root"])
        assert not family["parent"].overlaps(family["uncle"])

    def test_str_format(self, family):
        assert str(family["child"]) == "[2,3]@2"
