"""Search result objects: xpaths, snippets, serialization."""

from repro.engine.results import element_xpath, make_snippet


class TestElementXPath:
    def test_positions_count_same_tag_siblings(self, small_labeled):
        articles = small_labeled.stream("article")
        assert element_xpath(articles[0]) == "/dblp[1]/article[1]"
        assert element_xpath(articles[1]) == "/dblp[1]/article[2]"

    def test_mixed_tags_get_independent_counters(self, small_labeled):
        inproceedings = small_labeled.stream("inproceedings")
        # inproceedings records come after two articles but count as [1], [2].
        assert element_xpath(inproceedings[0]) == "/dblp[1]/inproceedings[1]"

    def test_deep_path(self, small_labeled):
        editor_author = [
            e for e in small_labeled.stream("author") if e.parent.tag == "editor"
        ][0]
        assert (
            element_xpath(editor_author)
            == "/dblp[1]/book[1]/editor[1]/author[1]"
        )

    def test_root(self, small_labeled):
        assert element_xpath(small_labeled.elements[0]) == "/dblp[1]"


class TestSnippet:
    def test_whitespace_collapsed(self, small_labeled):
        root_snippet = make_snippet(small_labeled.elements[0])
        assert "\n" not in root_snippet

    def test_truncated_with_ellipsis(self, small_labeled):
        snippet = make_snippet(small_labeled.elements[0], limit=20)
        assert len(snippet) <= 20
        assert snippet.endswith("…")

    def test_short_text_untouched(self, small_labeled):
        year = small_labeled.stream("year")[0]
        assert make_snippet(year) == "2002"


class TestSearchResultDict:
    def test_as_dict_fields(self, small_db):
        hit = small_db.search("//article/title").results[0]
        data = hit.as_dict()
        assert set(data) == {
            "xpath",
            "tag",
            "snippet",
            "highlighted_snippet",
            "score",
            "source_query",
            "rewrite_steps",
        }
        assert data["tag"] == "title"


class TestHighlighting:
    def test_terms_wrapped(self, small_db):
        hit = small_db.search('//article[./title~"twig"]').results[0]
        assert "**twig**" in hit.highlighted_snippet

    def test_no_terms_no_markup(self, small_db):
        hit = small_db.search("//article/title").results[0]
        assert "**" not in hit.highlighted_snippet

    def test_window_centers_on_term(self, small_labeled):
        long_element = small_labeled.elements[0]  # whole corpus text
        snippet = make_snippet(
            long_element, limit=40, highlight_terms=("springer",)
        )
        assert "**springer**" in snippet
        assert snippet.startswith("…")

    def test_case_insensitive_highlight(self):
        from repro.engine.database import LotusXDatabase

        db = LotusXDatabase.from_string("<r><t>The TWIG joins</t></r>")
        hit = db.search('//t[.~"twig"]').results[0]
        assert "**TWIG**" in hit.highlighted_snippet


class TestFragmentExport:
    def test_fragment_is_valid_xml(self, small_db):
        hit = small_db.search("//article", rewrite=False).results[0]
        from repro.xmlio.builder import parse_string

        fragment = hit.fragment()
        assert parse_string(fragment).root.tag == "article"

    def test_fragment_strips_synthetic_attribute_nodes(self):
        from repro.engine.database import LotusXDatabase
        from repro.xmlio.builder import parse_string

        db = LotusXDatabase.from_string(
            '<r><a k="v"><b>x</b></a></r>', expand_attributes=True
        )
        fragment = db.search("//a", rewrite=False).results[0].fragment()
        parsed = parse_string(fragment)
        assert parsed.root.attributes == {"k": "v"}
        assert [c.tag for c in parsed.root.child_elements()] == ["b"]

    def test_attribute_node_fragment(self):
        from repro.engine.database import LotusXDatabase

        db = LotusXDatabase.from_string(
            '<r><a k="v&quot;q"/></r>', expand_attributes=True
        )
        fragment = db.search("//a/@k", rewrite=False).results[0].fragment()
        assert fragment == 'k="v&quot;q"'

    def test_response_to_xml_parses(self, small_db):
        from repro.xmlio.builder import parse_string

        response = small_db.search('//article[./title~"twig"]', rewrite=False)
        document = parse_string(response.to_xml())
        assert document.root.tag == "results"
        hits = document.root.find_all("hit")
        assert len(hits) == len(response)
        assert hits[0].attributes["xpath"].startswith("/dblp")
