"""Completion tries: global and per-path, tags/values/tokens."""

import pytest

from repro.index.completion_index import CompletionIndex
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string


@pytest.fixture()
def setup():
    doc = parse_string(
        "<dblp>"
        "<article><title>twig joins</title><author>jiaheng lu</author></article>"
        "<article><title>twig ranking</title><author>tok wang ling</author></article>"
        "<book><author>judith butler</author></book>"
        "</dblp>"
    )
    labeled = label_document(doc)
    term_index = TermIndex(labeled)
    return labeled, CompletionIndex(labeled, term_index)


def _path_id(labeled, path):
    node = labeled.guide.node_for_path(path)
    assert node is not None
    return node.node_id


class TestTagCompletion:
    def test_weighted_by_count(self, setup):
        _, index = setup
        ranked = index.complete_tag("a")
        assert ranked[0][0] in ("article", "author")
        assert dict(ranked)["author"] == 3
        assert dict(ranked)["article"] == 2

    def test_prefix_filter(self, setup):
        _, index = setup
        assert [tag for tag, _ in index.complete_tag("ti")] == ["title"]


class TestValueCompletion:
    def test_position_aware_values(self, setup):
        labeled, index = setup
        article_author = _path_id(labeled, ("dblp", "article", "author"))
        values = [v for v, _ in index.complete_value_at([article_author], "j")]
        assert values == ["jiaheng lu"]  # "judith butler" is under book

    def test_global_values_include_all_paths(self, setup):
        _, index = setup
        values = [v for v, _ in index.complete_value_global("j")]
        assert set(values) == {"jiaheng lu", "judith butler"}

    def test_multiple_contexts_merge(self, setup):
        labeled, index = setup
        ids = [
            _path_id(labeled, ("dblp", "article", "author")),
            _path_id(labeled, ("dblp", "book", "author")),
        ]
        values = {v for v, _ in index.complete_value_at(ids, "j")}
        assert values == {"jiaheng lu", "judith butler"}

    def test_unknown_path_id_ignored(self, setup):
        _, index = setup
        assert index.complete_value_at([999], "j") == []


class TestTokenCompletion:
    def test_position_aware_tokens(self, setup):
        labeled, index = setup
        title_id = _path_id(labeled, ("dblp", "article", "title"))
        tokens = dict(index.complete_token_at([title_id], "t"))
        assert tokens["twig"] == 2

    def test_global_tokens(self, setup):
        _, index = setup
        tokens = dict(index.complete_token_global(""))
        assert tokens["twig"] == 2

    def test_path_has_values(self, setup):
        labeled, index = setup
        title_id = _path_id(labeled, ("dblp", "article", "title"))
        article_id = _path_id(labeled, ("dblp", "article"))
        assert index.path_has_values(title_id)
        assert not index.path_has_values(article_id)
