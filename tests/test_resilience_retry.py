"""Retry policy: backoff shape, jitter bounds, and deadline budgeting."""

import random

import pytest

from repro.resilience.deadline import Deadline
from repro.resilience.retry import MIN_RETRY_BUDGET_S, RetryPolicy


class TestBackoffShape:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.01, multiplier=2.0, max_delay_s=10.0, jitter=0.0
        )
        assert policy.delay_s(1) == pytest.approx(0.01)
        assert policy.delay_s(2) == pytest.approx(0.02)
        assert policy.delay_s(3) == pytest.approx(0.04)

    def test_cap_at_max_delay(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=10.0, max_delay_s=0.25, jitter=0.0
        )
        assert policy.delay_s(5) == pytest.approx(0.25)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, max_delay_s=10.0)
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.delay_s(1, rng)
            assert 0.05 <= delay <= 0.1

    def test_seeded_rng_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay_s(2, random.Random(3)) == policy.delay_s(
            2, random.Random(3)
        )

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s(0)


class TestBudgeting:
    def test_attempts_exhausted(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.budgeted_delay_s(3) is None
        assert policy.budgeted_delay_s(2) is not None

    def test_single_attempt_policy_never_retries(self):
        assert RetryPolicy(max_attempts=1).budgeted_delay_s(1) is None

    def test_no_deadline_returns_plain_delay(self):
        policy = RetryPolicy(jitter=0.0)
        assert policy.budgeted_delay_s(1) == pytest.approx(policy.delay_s(1))

    def test_expired_deadline_stops_retrying(self):
        policy = RetryPolicy()
        deadline = Deadline.after_ms(0.0)
        assert policy.budgeted_delay_s(1, deadline) is None

    def test_tiny_residue_stops_retrying(self):
        policy = RetryPolicy()
        deadline = Deadline.after_ms(MIN_RETRY_BUDGET_S * 1000.0 / 2)
        assert policy.budgeted_delay_s(1, deadline) is None

    def test_delay_capped_at_half_the_residue(self):
        policy = RetryPolicy(
            base_delay_s=10.0, max_delay_s=10.0, jitter=0.0
        )
        deadline = Deadline.after_ms(200.0)
        delay = policy.budgeted_delay_s(1, deadline)
        assert delay is not None
        assert delay <= 0.1  # half of the 200 ms budget

    def test_step_only_deadline_does_not_cap(self):
        policy = RetryPolicy(jitter=0.0)
        deadline = Deadline(max_steps=10_000)
        assert policy.budgeted_delay_s(1, deadline) == pytest.approx(
            policy.delay_s(1)
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"multiplier": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
