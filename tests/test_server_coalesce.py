"""Single-flight coalescing under real concurrency.

The claim under test: N identical concurrent requests cost *one* engine
evaluation, and every caller receives byte-identical response bytes.
A deterministic fault (``server.request`` latency) holds the leader's
evaluation open long enough for followers to pile in, and the fault's
own hit counter is the ground truth for "exactly one evaluation" —
``fault_point("server.request", ...)`` fires once per executed request,
and followers never execute.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.resilience import faults
from repro.server.aio import make_async_server
from repro.server.app import make_server
from repro.server.pipeline import RequestPipeline, ServerConfig

#: Generous limits: this file tests dedup, not shedding.
ROOMY_CONFIG = ServerConfig(max_concurrency=8, max_queue=32)


@pytest.fixture()
def async_url(small_db):
    server = make_async_server(small_db, config=ROOMY_CONFIG)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    yield f"http://{host}:{port}", server
    server.shutdown()
    thread.join(timeout=5)
    server.server_close()


@pytest.fixture()
def threaded_url(small_db):
    server = make_server(small_db, config=ROOMY_CONFIG)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def post_bytes(base_url: str, path: str, payload: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=15) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def storm(base_url: str, path: str, payload: dict, n: int, stagger_s: float):
    """One leader, then ``n - 1`` identical requests while it runs."""
    results: list[tuple[int, bytes]] = []
    lock = threading.Lock()

    def fire():
        outcome = post_bytes(base_url, path, payload)
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=fire) for _ in range(n)]
    threads[0].start()
    time.sleep(stagger_s)  # let the leader open the flight
    for thread in threads[1:]:
        thread.start()
    for thread in threads:
        thread.join(timeout=20)
    assert len(results) == n
    return results


class TestSingleFlight:
    @pytest.mark.parametrize("path,payload", [
        ("/api/search", {"query": "//article/author", "k": 3}),
        ("/api/keyword", {"query": "jiaheng twig", "k": 5}),
        ("/api/complete", {"prefix": "au", "k": 5}),
    ])
    def test_identical_requests_share_one_evaluation(
        self, async_url, path, payload
    ):
        base_url, server = async_url
        with faults.injected("server.request", latency_s=0.4) as fault:
            results = storm(base_url, path, payload, n=6, stagger_s=0.15)
            hits = fault.hits
        statuses = {status for status, _ in results}
        bodies = {body for _, body in results}
        assert statuses == {200}
        assert len(bodies) == 1  # all six byte-identical
        assert hits == 1  # exactly one engine evaluation
        snap = server.pipeline.flights.snapshot()
        assert snap["flights"] == 1
        assert snap["followers"] == 5
        assert snap["in_flight"] == 0

    def test_counters_surface_in_api_stats(self, async_url):
        base_url, _ = async_url
        payload = {"query": "//article/author", "k": 2}
        with faults.injected("server.request", latency_s=0.3):
            storm(base_url, "/api/search", payload, n=4, stagger_s=0.1)
        with urllib.request.urlopen(base_url + "/api/stats", timeout=10) as r:
            stats = json.load(r)
        coalescing = stats["coalescing"]
        assert coalescing["flights"] == 1
        assert coalescing["followers"] == 3
        assert coalescing["in_flight"] == 0
        assert coalescing["superseded_keystrokes"] == 0

    def test_error_responses_coalesce_too(self, async_url):
        base_url, _ = async_url
        payload = {"query": "//article", "k": 1}
        with faults.injected(
            "server.request", latency_s=0.3, error=RuntimeError("boom")
        ) as fault:
            results = storm(base_url, "/api/search", payload, n=4, stagger_s=0.1)
            hits = fault.hits
        assert hits == 1
        assert {status for status, _ in results} == {500}
        assert len({body for _, body in results}) == 1

    def test_distinct_payloads_do_not_coalesce(self, async_url):
        base_url, server = async_url
        with faults.injected("server.request", latency_s=0.05) as fault:
            results = []
            lock = threading.Lock()

            def fire(k):
                outcome = post_bytes(
                    base_url, "/api/search", {"query": "//article/author", "k": k}
                )
                with lock:
                    results.append(outcome)

            threads = [
                threading.Thread(target=fire, args=(k,)) for k in (1, 2, 3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=20)
            hits = fault.hits
        assert hits == 3
        assert {status for status, _ in results} == {200}
        assert server.pipeline.flights.snapshot()["followers"] == 0

    def test_generation_bump_splits_the_flight(self, async_url, small_db):
        """A request against the new generation never receives a stale
        generation's answer: the serving generation is part of the
        flight key, so a hot-reload swap mid-flight opens a new one."""
        base_url, server = async_url
        payload = {"query": "//article/author", "k": 3}
        pipeline = server.pipeline
        before = pipeline.coalesce_key("POST", "/api/search", json.dumps(payload).encode())
        results: list[tuple[int, bytes]] = []
        lock = threading.Lock()

        def fire():
            outcome = post_bytes(base_url, "/api/search", payload)
            with lock:
                results.append(outcome)

        with faults.injected("server.request", latency_s=0.5, times=1) as fault:
            leader = threading.Thread(target=fire)
            leader.start()
            time.sleep(0.15)  # the old generation's flight is open
            pipeline.holder.swap(small_db)  # hot reload lands
            late = threading.Thread(target=fire)
            late.start()
            leader.join(timeout=20)
            late.join(timeout=20)
            hits = fault.hits
        after = pipeline.coalesce_key("POST", "/api/search", json.dumps(payload).encode())
        assert before != after  # generation is part of the key
        assert hits == 2  # the late request led its own flight
        snap = pipeline.flights.snapshot()
        assert snap["flights"] == 2
        assert snap["followers"] == 0
        assert {status for status, _ in results} == {200}

    def test_threaded_transport_coalesces_identically(self, threaded_url):
        """The legacy transport drives the same pipeline: identical
        concurrent requests dedup there too."""
        base_url, server = threaded_url
        payload = {"query": "//article/author", "k": 3}
        with faults.injected("server.request", latency_s=0.4) as fault:
            results = storm(base_url, "/api/search", payload, n=5, stagger_s=0.15)
            hits = fault.hits
        assert hits == 1
        assert {status for status, _ in results} == {200}
        assert len({body for _, body in results}) == 1
        snap = server.pipeline.flights.snapshot()
        assert snap["flights"] == 1
        assert snap["followers"] == 4

    def test_streamed_requests_never_coalesce(self, small_db):
        pipeline = RequestPipeline(small_db)
        body = json.dumps(
            {"query": "//article/author", "stream": True}
        ).encode()
        assert pipeline.coalesce_key("POST", "/api/search", body) is None
        assert pipeline.wants_stream("POST", "/api/search", body)
