"""Multi-tenant serving through the request pipeline and both transports.

Routing (``/api/t/<tenant>/...`` plus the bare-path default fallback),
the structured 400/404 tenant error bodies, per-tenant single-flight
partitioning, quota-slice 429 attribution, per-tenant hot reload, the
``/api/tenants`` listing/admin endpoints, per-tenant keystroke batching,
and scoped streamed search.

Byte-compatibility is load-bearing: a single-tenant server must answer
bare paths exactly as the pre-tenant code did (no slice gate, no
``tenant`` field in 429s), and scoped requests to the default tenant
must produce the same bytes as bare ones.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.resilience import faults
from repro.server.aio import make_async_server
from repro.server.app import make_server
from repro.server.pipeline import RequestPipeline, ServerConfig
from repro.tenant.registry import TenantRegistry

XML_A = (
    "<lib><book><title>alpha twig</title><author>ada</author></book>"
    "<book><title>beta xml</title><author>bo</author></book></lib>"
)
XML_B = (
    "<shop><item><name>gamma</name><price>3</price></item>"
    "<item><name>delta</name><price>4</price></item></shop>"
)


def build_registry(**quotas) -> TenantRegistry:
    from repro.engine.database import LotusXDatabase

    registry = TenantRegistry()
    registry.add(
        "alpha", LotusXDatabase.from_string(XML_A), quota=quotas.get("alpha")
    )
    registry.add(
        "beta", LotusXDatabase.from_string(XML_B), quota=quotas.get("beta")
    )
    return registry


@pytest.fixture()
def pipeline() -> RequestPipeline:
    return RequestPipeline(build_registry())


def post(pipeline, path, payload):
    body = json.dumps(payload).encode()
    return pipeline.handle("POST", path, body, len(body))


def normalized(body: bytes) -> str:
    """Response bytes with the one wall-clock field removed, for
    byte-identity assertions (same normalization as the soak suite)."""
    payload = json.loads(body)
    payload.pop("elapsed_seconds", None)
    return json.dumps(payload, sort_keys=True)


class TestRouting:
    def test_scoped_paths_reach_their_tenant(self, pipeline):
        alpha = post(pipeline, "/api/t/alpha/search", {"query": "//book/title"})
        beta = post(pipeline, "/api/t/beta/search", {"query": "//item/name"})
        assert alpha.status == 200 and beta.status == 200
        assert b"alpha twig" in alpha.body
        assert b"gamma" in beta.body

    def test_bare_paths_fall_back_to_the_default_tenant(self, pipeline):
        bare = post(pipeline, "/api/search", {"query": "//book/author"})
        scoped = post(
            pipeline, "/api/t/alpha/search", {"query": "//book/author"}
        )
        assert bare.status == 200
        assert normalized(bare.body) == normalized(scoped.body)

    def test_scoped_get_endpoints_route_too(self, pipeline):
        stats = pipeline.handle("GET", "/api/t/beta/stats")
        payload = json.loads(stats.body)
        assert payload["tenant"] == "beta"
        guide = pipeline.handle("GET", "/api/t/beta/dataguide")
        assert guide.status == 200
        assert b"shop" in guide.body

    def test_stats_carries_the_tenants_block(self, pipeline):
        payload = json.loads(pipeline.handle("GET", "/api/stats").body)
        tenants = payload["tenants"]
        assert tenants["default"] == "alpha"
        assert sorted(tenants["by_name"]) == ["alpha", "beta"]
        # A bare-path request is not scoped: no `tenant` field.
        assert "tenant" not in payload

    def test_unknown_endpoint_under_tenant_prefix_is_404(self, pipeline):
        response = post(pipeline, "/api/t/alpha/nonsense", {})
        assert response.status == 404
        assert json.loads(response.body)["code"] == "not_found"


class TestTenantErrors:
    def test_unknown_tenant_is_a_structured_404(self, pipeline):
        response = post(pipeline, "/api/t/zzz/search", {"query": "//a"})
        assert response.status == 404
        assert json.loads(response.body) == {
            "error": "unknown_tenant",
            "code": "unknown_tenant",
            "tenant": "zzz",
            "known": ["alpha", "beta"],
        }

    @pytest.mark.parametrize("name", ["UPPER", "a b", "x" * 65, "a.b"])
    def test_invalid_tenant_name_is_a_structured_400(self, pipeline, name):
        response = post(pipeline, f"/api/t/{name}/search", {"query": "//a"})
        assert response.status == 400
        payload = json.loads(response.body)
        assert payload["code"] == "invalid_tenant"
        assert payload["tenant"] == name

    def test_get_requests_get_the_same_treatment(self, pipeline):
        response = pipeline.handle("GET", "/api/t/zzz/stats")
        assert response.status == 404
        assert json.loads(response.body)["code"] == "unknown_tenant"

    def test_streamed_search_maps_tenant_errors_too(self, pipeline):
        chunks: list[bytes] = []
        body = json.dumps({"query": "//a", "stream": True}).encode()
        response = pipeline.run_search_stream(
            "/api/t/zzz/search", body, len(body), chunks.append
        )
        assert response is not None and response.status == 404
        assert chunks == []  # nothing was emitted before the error

    def test_both_transports_serve_the_same_error_bytes(self):
        """The structured 404 is pipeline-made, so the async and the
        threaded transport cannot disagree on it."""
        servers = []
        try:
            for make in (make_async_server, make_server):
                server = make(build_registry())
                thread = threading.Thread(
                    target=server.serve_forever, daemon=True
                )
                thread.start()
                servers.append((server, thread, make is make_server))
            bodies = []
            for server, _, threaded in servers:
                address = server.server_address[:2]
                status, body = _http_post(
                    address, "/api/t/zzz/search", {"query": "//a"}
                )
                assert status == 404
                bodies.append(body)
            assert bodies[0] == bodies[1]
        finally:
            for server, thread, threaded in servers:
                server.shutdown()
                if threaded:
                    server.server_close()
                    thread.join(timeout=5)
                else:
                    thread.join(timeout=5)
                    server.server_close()


class TestCoalescePartitioning:
    def test_two_tenants_never_share_a_flight(self):
        """Identical payloads, identical corpora, different tenants: two
        leader evaluations (the fault's hit counter is ground truth) and
        two flights — a tenant can never receive another tenant's bytes."""
        from repro.engine.database import LotusXDatabase

        registry = TenantRegistry()
        registry.add("a", LotusXDatabase.from_string(XML_A))
        registry.add("b", LotusXDatabase.from_string(XML_A))
        pipeline = RequestPipeline(
            registry, config=ServerConfig(max_concurrency=8, max_queue=32)
        )
        payload = {"query": "//book/title", "k": 3}
        results: dict[str, bytes] = {}
        lock = threading.Lock()

        def fire(tenant: str) -> None:
            response = post(pipeline, f"/api/t/{tenant}/search", payload)
            with lock:
                results[tenant] = response.body

        with faults.injected("server.request", latency_s=0.3) as fault:
            threads = [
                threading.Thread(target=fire, args=(tenant,))
                for tenant in ("a", "b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=20)
            assert fault.hits == 2  # one evaluation per tenant
        snap = pipeline.flights.snapshot()
        assert snap["flights"] == 2
        assert snap["followers"] == 0
        # Same corpus, same answer — equality (modulo the wall-clock
        # field) proves the split was by key, not by divergent content.
        assert normalized(results["a"]) == normalized(results["b"])

    def test_same_tenant_still_coalesces(self, pipeline):
        payload = {"query": "//book/title", "k": 3}
        results: list[bytes] = []
        lock = threading.Lock()

        def fire() -> None:
            response = post(pipeline, "/api/t/alpha/search", payload)
            with lock:
                results.append(response.body)

        with faults.injected("server.request", latency_s=0.3) as fault:
            leader = threading.Thread(target=fire)
            leader.start()
            import time

            time.sleep(0.1)
            followers = [threading.Thread(target=fire) for _ in range(3)]
            for thread in followers:
                thread.start()
            for thread in [leader, *followers]:
                thread.join(timeout=20)
            assert fault.hits == 1
        assert len(set(results)) == 1
        assert pipeline.flights.snapshot()["followers"] == 3

    def test_key_leads_with_the_tenant_name(self, pipeline):
        body = json.dumps({"query": "//book", "k": 1}).encode()
        bare = pipeline.coalesce_key("POST", "/api/search", body)
        scoped = pipeline.coalesce_key("POST", "/api/t/alpha/search", body)
        other = pipeline.coalesce_key("POST", "/api/t/beta/search", body)
        assert bare == scoped  # default fallback shares the flight space
        assert other != scoped
        assert scoped[0] == "alpha" and other[0] == "beta"

    def test_unknown_tenant_never_opens_a_flight(self, pipeline):
        body = json.dumps({"query": "//book"}).encode()
        assert (
            pipeline.coalesce_key("POST", "/api/t/zzz/search", body) is None
        )


class TestQuotaShedding:
    CONFIG = ServerConfig(
        max_concurrency=8, max_queue=0, queue_timeout_s=0.05
    )

    @staticmethod
    def _shed_while_busy(pipeline, busy_path: str, probe_path: str):
        """Hold one slow request on ``busy_path``; return the response
        ``probe_path`` gets while that slot is occupied.  The fault
        latency fires only for the slot-holder (``times=1``) — the probe
        either sheds at the gate (never reaching the fault) or runs
        clean."""
        import time

        with faults.injected("server.request", latency_s=0.8, times=1):
            holder_thread = threading.Thread(
                target=pipeline.handle, args=("GET", busy_path)
            )
            holder_thread.start()
            time.sleep(0.25)  # the holder owns its slice's only slot now
            try:
                return pipeline.handle("GET", probe_path)
            finally:
                holder_thread.join(timeout=5)

    def test_429_names_the_tenant_that_overflowed(self):
        pipeline = RequestPipeline(
            build_registry(alpha=1), config=self.CONFIG
        )
        shed = self._shed_while_busy(
            pipeline, "/api/t/alpha/stats", "/api/t/alpha/stats"
        )
        assert shed.status == 429
        payload = json.loads(shed.body)
        assert payload["tenant"] == "alpha"
        assert payload["site"] == "tenant.alpha.admission"
        assert dict(shed.headers).get("Retry-After")

    def test_other_tenants_slice_is_untouched(self):
        pipeline = RequestPipeline(
            build_registry(alpha=1), config=self.CONFIG
        )
        ok = self._shed_while_busy(
            pipeline, "/api/t/alpha/stats", "/api/t/beta/stats"
        )
        assert ok.status == 200

    def test_single_tenant_429_stays_byte_compatible(self, small_db):
        """No registry, no quotas: the shed body has no ``tenant`` field
        — exactly the pre-tenant bytes."""
        pipeline = RequestPipeline(
            small_db,
            config=ServerConfig(
                max_concurrency=1, max_queue=0, queue_timeout_s=0.05
            ),
        )
        shed = self._shed_while_busy(pipeline, "/api/stats", "/api/stats")
        assert shed.status == 429
        payload = json.loads(shed.body)
        assert "tenant" not in payload
        assert payload["site"] == "server.admission"


class TestPerTenantReload:
    def test_reload_bumps_only_the_addressed_tenant(self, tmp_path):
        from repro.server.reload import DatabaseHolder, ReloadSource

        path_a = tmp_path / "a.xml"
        path_b = tmp_path / "b.xml"
        path_a.write_text(XML_A)
        path_b.write_text(XML_B)
        registry = TenantRegistry()
        for name, path in (("alpha", path_a), ("beta", path_b)):
            source = ReloadSource("xml", str(path))
            registry.add(
                name, holder=DatabaseHolder(source.build(), source)
            )
        pipeline = RequestPipeline(registry)

        path_a.write_text(XML_A.replace("ada", "grace"))
        response = post(pipeline, "/api/t/alpha/reload", {})
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["generation"] == 2
        assert payload["tenant"] == "alpha"
        stats = json.loads(pipeline.handle("GET", "/api/stats").body)
        by_name = stats["tenants"]["by_name"]
        assert by_name["alpha"]["generation"] == 2
        assert by_name["beta"]["generation"] == 1
        # The new corpus is actually served.
        searched = post(
            pipeline, "/api/t/alpha/search", {"query": "//book/author"}
        )
        assert b"grace" in searched.body

    def test_reload_without_a_source_is_400(self, pipeline):
        response = post(pipeline, "/api/t/alpha/reload", {})
        assert response.status == 400
        assert json.loads(response.body)["code"] == "reload_unavailable"


class TestTenantAdmin:
    def test_listing_is_open(self, pipeline):
        response = pipeline.handle("GET", "/api/tenants")
        payload = json.loads(response.body)
        assert payload["default"] == "alpha"
        assert [row["name"] for row in payload["tenants"]] == [
            "alpha", "beta",
        ]

    def test_add_is_403_unless_enabled(self, pipeline, tmp_path):
        corpus = tmp_path / "c.xml"
        corpus.write_text(XML_A)
        response = post(
            pipeline, "/api/tenants", {"name": "c", "path": str(corpus)}
        )
        assert response.status == 403
        assert json.loads(response.body)["code"] == "tenant_admin_disabled"

    def test_add_loads_and_serves_the_new_tenant(self, tmp_path):
        registry = build_registry()
        registry.admin_enabled = True
        pipeline = RequestPipeline(registry)
        corpus = tmp_path / "c.xml"
        corpus.write_text("<c><z>omega</z></c>")
        response = post(
            pipeline,
            "/api/tenants",
            {"name": "gamma", "path": str(corpus), "quota": 2},
        )
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["tenant"] == "gamma"
        assert payload["tenants"] == ["alpha", "beta", "gamma"]
        assert payload["default"] == "alpha"
        served = post(pipeline, "/api/t/gamma/search", {"query": "//c/z"})
        assert served.status == 200 and b"omega" in served.body
        assert registry.get("gamma").slice_gate.capacity == 2

    def test_add_duplicate_is_409(self, tmp_path):
        registry = build_registry()
        registry.admin_enabled = True
        pipeline = RequestPipeline(registry)
        corpus = tmp_path / "c.xml"
        corpus.write_text(XML_A)
        response = post(
            pipeline, "/api/tenants", {"name": "alpha", "path": str(corpus)}
        )
        assert response.status == 409
        assert json.loads(response.body)["code"] == "tenant_exists"

    def test_add_validates_name_and_path(self, tmp_path):
        registry = build_registry()
        registry.admin_enabled = True
        pipeline = RequestPipeline(registry)
        bad_name = post(
            pipeline, "/api/tenants", {"name": "NOPE", "path": "x.xml"}
        )
        assert bad_name.status == 400
        assert json.loads(bad_name.body)["code"] == "invalid_tenant"
        missing = post(
            pipeline,
            "/api/tenants",
            {"name": "ok", "path": str(tmp_path / "missing.xml")},
        )
        assert missing.status == 400


class TestTransportIntegration:
    def test_async_keystroke_batching_is_per_tenant(self):
        """Pipelined keystrokes supersede only within one tenant's path:
        a burst interleaving two tenants answers each tenant's newest
        keystroke for real."""
        server = make_async_server(build_registry())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            sock = socket.create_connection(server.server_address, timeout=5)
            sock.settimeout(5)
            try:
                burst = b"".join(
                    _raw_post(path, {"prefix": "", "kind": "tag", "k": 8})
                    for path in (
                        "/api/t/alpha/complete",
                        "/api/t/alpha/complete",
                        "/api/t/beta/complete",
                    )
                )
                sock.sendall(burst)
                payloads = [
                    json.loads(_read_body(sock)) for _ in range(3)
                ]
            finally:
                sock.close()
            # alpha's older keystroke superseded by its newer one…
            assert payloads[0].get("superseded") is True
            assert "superseded" not in payloads[1]
            # …but beta's keystroke is a different tenant: answered.
            assert "superseded" not in payloads[2]
            alpha_tags = {c["text"] for c in payloads[1]["candidates"]}
            beta_tags = {c["text"] for c in payloads[2]["candidates"]}
            assert "book" in alpha_tags
            assert "item" in beta_tags
            assert server.pipeline.superseded_keystrokes == 1
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()

    def test_scoped_streamed_search_over_http(self):
        server = make_async_server(build_registry())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            import urllib.request

            host, port = server.server_address
            request = urllib.request.Request(
                f"http://{host}:{port}/api/t/beta/search",
                data=json.dumps(
                    {"query": "//item/name", "stream": True}
                ).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=15) as response:
                assert response.status == 200
                assert "ndjson" in response.headers.get("Content-Type", "")
                lines = response.read().decode().strip().split("\n")
            assert len(lines) == 2
            first, final = (json.loads(line) for line in lines)
            assert first["partial"] is True
            assert final["results"]
            assert server.pipeline.streamed_responses == 1
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()


# ----------------------------------------------------------------------
# Raw-socket / HTTP helpers
# ----------------------------------------------------------------------


def _raw_post(path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode() + body


_socket_buffers: dict[int, bytes] = {}


def _read_body(sock: socket.socket) -> bytes:
    """One Content-Length-framed response body off a pipelined socket."""
    buffer = _socket_buffers.pop(id(sock), b"")
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        assert chunk, "connection closed mid-response"
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    length = 0
    for line in head.decode("latin-1").split("\r\n")[1:]:
        name, _, value = line.partition(":")
        if name.lower() == "content-length":
            length = int(value)
    while len(rest) < length:
        chunk = sock.recv(65536)
        assert chunk, "connection closed mid-body"
        rest += chunk
    _socket_buffers[id(sock)] = rest[length:]
    return rest[:length]


def _http_post(address, path: str, payload: dict) -> tuple[int, bytes]:
    import urllib.error
    import urllib.request

    host, port = address
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=15) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()
