"""Persistence: save/load round trip and corruption detection."""

import json

import pytest

from repro.engine.store import StoreError, load_database, save_database


@pytest.fixture()
def saved(small_db, tmp_path):
    directory = tmp_path / "store"
    save_database(small_db, directory)
    return directory


class TestRoundTrip:
    def test_layout(self, saved):
        names = {path.name for path in saved.iterdir()}
        assert names == {
            "manifest.json",
            "document.xml",
            "dataguide.json",
            "child_table.json",
        }

    def test_load_restores_equivalent_database(self, small_db, saved):
        loaded = load_database(saved)
        assert len(loaded.labeled) == len(small_db.labeled)
        assert len(loaded.guide) == len(small_db.guide)
        original = small_db.search("//article/author").as_dict()
        restored = loaded.search("//article/author").as_dict()
        original.pop("elapsed_seconds")
        restored.pop("elapsed_seconds")
        assert original == restored

    def test_save_is_idempotent(self, small_db, saved):
        save_database(small_db, saved)  # overwrite in place
        assert load_database(saved).statistics() == small_db.statistics()


class TestCorruptionDetection:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            load_database(tmp_path / "nope")

    def test_wrong_format_version(self, saved):
        manifest = json.loads((saved / "manifest.json").read_text())
        manifest["format_version"] = 999
        (saved / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="unsupported store format"):
            load_database(saved)

    def test_tampered_document(self, saved):
        document = (saved / "document.xml").read_text()
        (saved / "document.xml").write_text(document.replace("lu", "xx"))
        with pytest.raises(StoreError, match="checksum"):
            load_database(saved)

    def test_tampered_dataguide(self, saved):
        entries = json.loads((saved / "dataguide.json").read_text())
        entries[0]["count"] += 1
        (saved / "dataguide.json").write_text(json.dumps(entries))
        with pytest.raises(StoreError, match="DataGuide mismatch"):
            load_database(saved)

    def test_tampered_child_table(self, saved):
        entries = json.loads((saved / "child_table.json").read_text())
        entries[0]["children"] = ["zzz"]
        (saved / "child_table.json").write_text(json.dumps(entries))
        with pytest.raises(StoreError, match="child-table mismatch"):
            load_database(saved)

    def test_corrupt_json(self, saved):
        (saved / "manifest.json").write_text("{not json")
        with pytest.raises(StoreError, match="corrupt JSON"):
            load_database(saved)
