"""Tokenizer: lexical scanning of XML constructs."""

import pytest

from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.events import (
    Characters,
    Comment,
    EndElement,
    ProcessingInstruction,
    StartDocument,
    StartElement,
)
from repro.xmlio.tokenizer import Tokenizer


def scan(text):
    return list(Tokenizer(text))


class TestDeclarationAndProlog:
    def test_declaration_parsed(self):
        events = scan('<?xml version="1.1" encoding="utf-8" standalone="yes"?><a/>')
        start = events[0]
        assert isinstance(start, StartDocument)
        assert start.version == "1.1"
        assert start.encoding == "utf-8"
        assert start.standalone is True

    def test_missing_declaration_defaults(self):
        start = scan("<a/>")[0]
        assert isinstance(start, StartDocument)
        assert start.version == "1.0"
        assert start.encoding is None

    def test_doctype_skipped(self):
        events = scan("<!DOCTYPE dblp [ <!ELEMENT a (b)> ]><a/>")
        tags = [e for e in events if isinstance(e, StartElement)]
        assert [e.tag for e in tags] == ["a"]


class TestTags:
    def test_simple_element(self):
        events = scan("<a></a>")
        assert isinstance(events[1], StartElement)
        assert isinstance(events[2], EndElement)
        assert events[1].tag == events[2].tag == "a"

    def test_self_closing_emits_both_events(self):
        events = scan("<a/>")
        assert isinstance(events[1], StartElement)
        assert isinstance(events[2], EndElement)

    def test_attributes_preserve_order(self):
        events = scan('<a z="1" y="2" x="3"/>')
        assert events[1].attributes == (("z", "1"), ("y", "2"), ("x", "3"))

    def test_single_quoted_attributes(self):
        events = scan("<a k='v'/>")
        assert events[1].attributes == (("k", "v"),)

    def test_attribute_entities_resolved(self):
        events = scan('<a k="&lt;&amp;&gt;"/>')
        assert events[1].attributes == (("k", "<&>"),)

    def test_whitespace_in_end_tag(self):
        events = scan("<a></a  >")
        assert isinstance(events[2], EndElement)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate attribute"):
            scan('<a k="1" k="2"/>')

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="quoted"):
            scan("<a k=v/>")

    def test_attributes_need_whitespace(self):
        with pytest.raises(XMLSyntaxError, match="whitespace"):
            scan('<a k="1"j="2"/>')

    def test_lt_in_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError):
            scan('<a k="<"/>')

    def test_unterminated_tag(self):
        with pytest.raises(XMLSyntaxError):
            scan("<a")


class TestCharacterData:
    def test_text_between_tags(self):
        events = scan("<a>hello</a>")
        text = [e for e in events if isinstance(e, Characters)]
        assert [t.text for t in text] == ["hello"]

    def test_entities_in_text(self):
        events = scan("<a>x &amp; y &#33;</a>")
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].text == "x & y !"

    def test_cdata_preserves_raw_content(self):
        events = scan("<a><![CDATA[<raw> & stuff]]></a>")
        text = [e for e in events if isinstance(e, Characters)]
        assert text[0].text == "<raw> & stuff"

    def test_cdata_end_marker_in_text_rejected(self):
        with pytest.raises(XMLSyntaxError):
            scan("<a>bad ]]> text</a>")

    def test_unterminated_entity(self):
        with pytest.raises(XMLSyntaxError, match="entity"):
            scan("<a>&amp</a>")


class TestCommentsAndPIs:
    def test_comment_event(self):
        events = scan("<a><!-- note --></a>")
        comments = [e for e in events if isinstance(e, Comment)]
        assert comments[0].text == " note "

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            scan("<a><!-- a -- b --></a>")

    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError, match="comment"):
            scan("<a><!-- oops</a>")

    def test_processing_instruction(self):
        events = scan('<a><?php echo "hi" ?></a>')
        pis = [e for e in events if isinstance(e, ProcessingInstruction)]
        assert pis[0].target == "php"
        assert 'echo "hi"' in pis[0].data

    def test_xml_target_pi_rejected_midstream(self):
        with pytest.raises(XMLSyntaxError):
            scan('<a><?xml version="1.0"?></a>')


class TestPositions:
    def test_line_column_tracking(self):
        events = scan("<a>\n  <b/>\n</a>")
        b = [e for e in events if isinstance(e, StartElement) and e.tag == "b"][0]
        assert b.line == 2
        assert b.column == 3

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            scan("<a>\n<b x=1/></a>")
        assert info.value.line == 2
