"""Deadline threading through the engine: truncation, salvage, fallback."""

import pytest

from repro.keyword.elca import find_elcas
from repro.keyword.slca import find_slcas
from repro.resilience import faults
from repro.resilience.deadline import Deadline
from repro.resilience.errors import DeadlineExceeded
from repro.twig.match import sort_matches
from repro.twig.planner import Algorithm


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestMatches:
    def test_tiny_step_budget_raises(self, small_db):
        with pytest.raises(DeadlineExceeded):
            small_db.matches("//article/author", deadline=Deadline(max_steps=1))

    @pytest.mark.parametrize(
        "algorithm",
        [
            Algorithm.NAIVE,
            Algorithm.STRUCTURAL_JOIN,
            Algorithm.PATH_STACK,
            Algorithm.TWIG_STACK,
            Algorithm.TJFAST,
        ],
    )
    def test_every_algorithm_honors_deadline(self, small_db, algorithm):
        with pytest.raises(DeadlineExceeded):
            small_db.matches(
                "//article/author", algorithm, deadline=Deadline(max_steps=2)
            )

    def test_deadline_bypasses_cache(self, small_db):
        full = small_db.matches("//inproceedings/author")  # populates cache
        assert full
        with pytest.raises(DeadlineExceeded):
            small_db.matches(
                "//inproceedings/author", deadline=Deadline(max_steps=1)
            )
        # The cached full answer is untouched by the truncated run.
        assert small_db.matches("//inproceedings/author") == full

    def test_partial_is_sorted_and_smaller_than_full(self, dblp_db):
        full = dblp_db.matches("//article/author")
        with faults.injected("twig.path_stack", exhaust_deadline=True, skip=40):
            with pytest.raises(DeadlineExceeded) as info:
                dblp_db.matches(
                    "//article/author", deadline=Deadline.none()
                )
        partial = info.value.partial
        assert partial is not None
        assert len(partial) < len(full)
        assert partial == sort_matches(list(partial))
        # Every salvaged match is a true match.
        assert all(match in full for match in partial)


class TestSearch:
    def test_search_without_deadline_is_not_truncated(self, small_db):
        response = small_db.search("//article/author")
        assert response.truncated is False
        assert response.degraded == ()

    def test_step_budget_truncates_gracefully(self, small_db):
        response = small_db.search(
            "//article/author", deadline=Deadline(max_steps=3)
        )
        assert response.truncated is True
        assert "deadline" in response.degraded

    def test_truncated_search_keeps_partial_results(self, dblp_db):
        full = dblp_db.search("//article/author", k=100, rewrite=False)
        with faults.injected("twig.path_stack", exhaust_deadline=True, skip=40):
            response = dblp_db.search(
                "//article/author", k=100, rewrite=False, deadline=Deadline.none()
            )
        assert response.truncated is True
        assert 0 < response.total_matches < full.total_matches

    def test_as_dict_carries_truncation_markers(self, small_db):
        data = small_db.search(
            "//article/author", deadline=Deadline(max_steps=3)
        ).as_dict()
        assert data["truncated"] is True
        assert data["degraded"] == ["deadline"]
        data = small_db.search("//article/author").as_dict()
        assert data["truncated"] is False
        assert data["degraded"] == []

    def test_timeout_ms_parameter_builds_deadline(self, small_db):
        # A generous timeout: completes untruncated.
        response = small_db.search("//article/author", timeout_ms=10_000)
        assert response.truncated is False
        assert len(response.results) == 3

    def test_rewrites_skipped_when_budget_nearly_spent(self, small_db):
        clock = FakeClock()
        deadline = Deadline(timeout_s=1.0, clock=clock)
        clock.now = 0.9  # 10% left — under the 25% near() threshold
        response = small_db.search("//book/author", deadline=deadline)
        assert response.degraded == ("rewrites-skipped",)
        assert response.truncated is False
        assert response.results == []
        assert response.rewrites_tried == 0

    def test_rewrites_explored_with_fresh_budget(self, small_db):
        # Control for the test above: same query, plenty of budget left.
        response = small_db.search("//book/author", timeout_ms=60_000)
        assert response.used_rewrites
        assert response.results

    def test_rewrite_exploration_trip_truncates(self, small_db):
        with faults.injected("rewrite.explore", exhaust_deadline=True):
            response = small_db.search(
                "//book/author", deadline=Deadline.none()
            )
        assert response.truncated is True


class TestKeyword:
    def test_keyword_truncates_gracefully(self, small_db):
        with faults.injected("keyword.slca", exhaust_deadline=True):
            response = small_db.keyword_search(
                "jiaheng twig", deadline=Deadline.none()
            )
        assert response.truncated is True
        assert response.as_dict()["truncated"] is True

    def test_keyword_untruncated_by_default(self, small_db):
        response = small_db.keyword_search("jiaheng twig")
        assert response.truncated is False
        assert response.hits

    def test_keyword_partial_from_scanned_occurrences(self, small_db):
        # Let a few occurrences through before exhausting the budget: the
        # partial contains only SLCAs derivable from those.
        full = small_db.keyword_search("jiaheng")
        with faults.injected("keyword.slca", exhaust_deadline=True, skip=2):
            response = small_db.keyword_search(
                "jiaheng", deadline=Deadline.none()
            )
        assert response.truncated is True
        assert response.total_slcas <= full.total_slcas
        full_xpaths = {hit.as_dict()["xpath"] for hit in full}
        assert all(
            hit.as_dict()["xpath"] in full_xpaths for hit in response
        )

    def test_elca_partial_is_the_slcas(self, small_labeled, small_term_index):
        terms = ("jiaheng", "twig")
        slcas = find_slcas(small_labeled, small_term_index, terms)
        with faults.injected("keyword.elca", exhaust_deadline=True):
            with pytest.raises(DeadlineExceeded) as info:
                find_elcas(
                    small_labeled, small_term_index, terms, Deadline.none()
                )
        # Every SLCA is an ELCA, so the salvage is sound.
        assert info.value.partial == slcas


class TestAutocomplete:
    def test_tag_completion_degrades_to_partial_pool(self, small_db):
        deadline = Deadline.none()
        with faults.injected("autocomplete.tags", exhaust_deadline=True):
            candidates = small_db.complete_tag(prefix="", deadline=deadline)
        assert deadline.tripped
        assert isinstance(candidates, list)
        full = small_db.complete_tag(prefix="")
        assert len(candidates) <= len(full)

    def test_tag_completion_with_context_degrades(self, small_db):
        pattern = small_db.parse_query("//article")
        deadline = Deadline.none()
        with faults.injected("autocomplete.tags", exhaust_deadline=True, skip=1):
            candidates = small_db.complete_tag(
                pattern, pattern.root, prefix="", deadline=deadline
            )
        assert deadline.tripped
        assert len(candidates) <= 2  # at most the tags admitted pre-trip

    def test_value_completion_degrades(self, small_db):
        pattern = small_db.parse_query("//article/author")
        node = pattern.nodes()[1]
        deadline = Deadline.none()
        with faults.injected("autocomplete.values", exhaust_deadline=True):
            candidates = small_db.complete_value(
                pattern, node, "jia", deadline=deadline
            )
        assert deadline.tripped
        assert candidates == []  # no positions survived the trip

    def test_completion_unaffected_without_faults(self, small_db):
        deadline = Deadline.none()
        candidates = small_db.complete_tag(prefix="a", deadline=deadline)
        assert {c.text for c in candidates} == {"article", "author"}
        assert not deadline.tripped
