"""JSON API handlers (called directly, no HTTP)."""

import pytest

from repro.server.api import (
    ApiError,
    handle_complete,
    handle_dataguide,
    handle_explain,
    handle_search,
    handle_stats,
)


class TestStatsAndGuide:
    def test_stats(self, small_db):
        data = handle_stats(small_db)
        assert data["statistics"]["element_count"] == 31

    def test_dataguide_tree(self, small_db):
        data = handle_dataguide(small_db)
        assert len(data["roots"]) == 1
        root = data["roots"][0]
        assert root["tag"] == "dblp"
        child_tags = {child["tag"] for child in root["children"]}
        assert child_tags == {"article", "inproceedings", "book"}
        article = next(c for c in root["children"] if c["tag"] == "article")
        assert article["count"] == 2
        assert article["path"] == "/dblp/article"


class TestComplete:
    def test_tag_completion_no_context(self, small_db):
        data = handle_complete(small_db, {"kind": "tag", "prefix": "a"})
        texts = {c["text"] for c in data["candidates"]}
        assert texts == {"article", "author"}

    def test_tag_completion_with_context(self, small_db):
        data = handle_complete(
            small_db,
            {"kind": "tag", "prefix": "", "query": "//article", "node": 0},
        )
        texts = {c["text"] for c in data["candidates"]}
        assert "booktitle" not in texts and "title" in texts

    def test_tag_completion_descendant_axis(self, small_db):
        data = handle_complete(
            small_db,
            {"kind": "tag", "query": "//book", "node": 0, "axis": "//"},
        )
        texts = {c["text"] for c in data["candidates"]}
        assert "author" in texts

    def test_value_completion(self, small_db):
        data = handle_complete(
            small_db,
            {
                "kind": "value",
                "prefix": "jia",
                "query": "//article/author",
                "node": 1,
            },
        )
        assert [c["text"] for c in data["candidates"]] == ["jiaheng lu"]

    def test_value_requires_context(self, small_db):
        with pytest.raises(ApiError, match="requires"):
            handle_complete(small_db, {"kind": "value", "prefix": "x"})

    def test_unknown_kind(self, small_db):
        with pytest.raises(ApiError, match="unknown completion kind"):
            handle_complete(small_db, {"kind": "frobnicate"})

    def test_bad_node_index(self, small_db):
        with pytest.raises(ApiError, match="out of range"):
            handle_complete(
                small_db, {"kind": "tag", "query": "//article", "node": 7}
            )

    def test_bad_query_text(self, small_db):
        with pytest.raises(ApiError, match="bad twig query"):
            handle_complete(small_db, {"kind": "tag", "query": "//[", "node": 0})

    def test_non_integer_k(self, small_db):
        with pytest.raises(ApiError, match="must be an integer"):
            handle_complete(small_db, {"kind": "tag", "k": "lots"})


class TestSearchAndExplain:
    def test_search(self, small_db):
        data = handle_search(
            small_db, {"query": '//article[./title~"twig"]/author', "k": 5}
        )
        assert data["total_matches"] == 2
        assert len(data["results"]) == 2

    def test_search_requires_query(self, small_db):
        with pytest.raises(ApiError, match="missing 'query'"):
            handle_search(small_db, {})

    def test_search_bad_query(self, small_db):
        with pytest.raises(ApiError, match="bad twig query"):
            handle_search(small_db, {"query": "//a[["})

    def test_search_rewrite_flag(self, small_db):
        data = handle_search(
            small_db, {"query": "//book/author", "rewrite": False}
        )
        assert data["results"] == []

    def test_explain(self, small_db):
        data = handle_explain(small_db, {"query": "//article/author"})
        assert data["algorithm"] == "path-stack"

    def test_explain_requires_query(self, small_db):
        with pytest.raises(ApiError):
            handle_explain(small_db, {})
