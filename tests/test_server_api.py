"""JSON API handlers (called directly, no HTTP)."""

import pytest

from repro.server.api import (
    ApiError,
    handle_complete,
    handle_dataguide,
    handle_explain,
    handle_search,
    handle_stats,
)


class TestStatsAndGuide:
    def test_stats(self, small_db):
        data = handle_stats(small_db)
        assert data["statistics"]["element_count"] == 31

    def test_dataguide_tree(self, small_db):
        data = handle_dataguide(small_db)
        assert len(data["roots"]) == 1
        root = data["roots"][0]
        assert root["tag"] == "dblp"
        child_tags = {child["tag"] for child in root["children"]}
        assert child_tags == {"article", "inproceedings", "book"}
        article = next(c for c in root["children"] if c["tag"] == "article")
        assert article["count"] == 2
        assert article["path"] == "/dblp/article"


class TestComplete:
    def test_tag_completion_no_context(self, small_db):
        data = handle_complete(small_db, {"kind": "tag", "prefix": "a"})
        texts = {c["text"] for c in data["candidates"]}
        assert texts == {"article", "author"}

    def test_tag_completion_with_context(self, small_db):
        data = handle_complete(
            small_db,
            {"kind": "tag", "prefix": "", "query": "//article", "node": 0},
        )
        texts = {c["text"] for c in data["candidates"]}
        assert "booktitle" not in texts and "title" in texts

    def test_tag_completion_descendant_axis(self, small_db):
        data = handle_complete(
            small_db,
            {"kind": "tag", "query": "//book", "node": 0, "axis": "//"},
        )
        texts = {c["text"] for c in data["candidates"]}
        assert "author" in texts

    def test_value_completion(self, small_db):
        data = handle_complete(
            small_db,
            {
                "kind": "value",
                "prefix": "jia",
                "query": "//article/author",
                "node": 1,
            },
        )
        assert [c["text"] for c in data["candidates"]] == ["jiaheng lu"]

    def test_value_requires_context(self, small_db):
        with pytest.raises(ApiError, match="requires"):
            handle_complete(small_db, {"kind": "value", "prefix": "x"})

    def test_unknown_kind(self, small_db):
        with pytest.raises(ApiError, match="unknown completion kind"):
            handle_complete(small_db, {"kind": "frobnicate"})

    def test_bad_node_index(self, small_db):
        with pytest.raises(ApiError, match="out of range"):
            handle_complete(
                small_db, {"kind": "tag", "query": "//article", "node": 7}
            )

    def test_bad_query_text(self, small_db):
        with pytest.raises(ApiError, match="bad twig query"):
            handle_complete(small_db, {"kind": "tag", "query": "//[", "node": 0})

    def test_non_integer_k(self, small_db):
        with pytest.raises(ApiError, match="must be an integer"):
            handle_complete(small_db, {"kind": "tag", "k": "lots"})


class TestSearchAndExplain:
    def test_search(self, small_db):
        data = handle_search(
            small_db, {"query": '//article[./title~"twig"]/author', "k": 5}
        )
        assert data["total_matches"] == 2
        assert len(data["results"]) == 2

    def test_search_requires_query(self, small_db):
        with pytest.raises(ApiError, match="missing 'query'"):
            handle_search(small_db, {})

    def test_search_bad_query(self, small_db):
        with pytest.raises(ApiError, match="bad twig query"):
            handle_search(small_db, {"query": "//a[["})

    def test_search_rewrite_flag(self, small_db):
        data = handle_search(
            small_db, {"query": "//book/author", "rewrite": False}
        )
        assert data["results"] == []

    def test_explain(self, small_db):
        data = handle_explain(small_db, {"query": "//article/author"})
        assert data["algorithm"] == "path-stack"

    def test_explain_requires_query(self, small_db):
        with pytest.raises(ApiError):
            handle_explain(small_db, {})


class TestDocuments:
    """The live-mutation endpoint (``POST /api/documents``)."""

    @pytest.fixture()
    def writable_db(self, tmp_path):
        from repro.engine.database import LotusXDatabase
        from repro.write.writer import open_writable_database
        from tests.conftest import SMALL_XML

        database = open_writable_database(
            LotusXDatabase.from_string(SMALL_XML),
            tmp_path / "api.lxwal",
            synchronous=True,
        )
        yield database
        database.close()

    def test_read_only_database_rejects_with_501(self, small_db):
        from repro.server.api import NotWritable, handle_documents

        with pytest.raises(NotWritable) as excinfo:
            handle_documents(small_db, {"xml": "<article/>"})
        assert excinfo.value.http_status == 501
        assert excinfo.value.code == "not_writable"

    def test_insert_update_delete_round_trip(self, writable_db):
        from repro.server.api import handle_documents

        result = handle_documents(
            writable_db,
            {"xml": "<article><title>endpoint drill</title></article>"},
        )
        assert result["action"] == "insert" and result["applied"]
        assert result["seqno"] == 1
        doc_id = result["id"]
        snippets = [
            hit["snippet"]
            for hit in writable_db.search("//article/title", k=20).as_dict()["results"]
        ]
        assert any("endpoint drill" in snippet for snippet in snippets)

        updated = handle_documents(
            writable_db,
            {
                "action": "update",
                "id": doc_id,
                "xml": "<article><title>endpoint drill revised</title></article>",
            },
        )
        assert updated["seqno"] == 2 and updated["id"] == doc_id
        deleted = handle_documents(
            writable_db, {"action": "delete", "id": doc_id}
        )
        assert deleted["seqno"] == 3
        assert doc_id not in writable_db.document_ids()

    def test_error_taxonomy(self, writable_db):
        from repro.server.api import (
            ApiError,
            DocumentExists,
            DocumentNotFound,
            handle_documents,
        )

        inserted = handle_documents(writable_db, {"xml": "<article/>"})
        cases = [
            ({"action": "update", "id": "ghost", "xml": "<a/>"}, DocumentNotFound, 404),
            ({"id": inserted["id"], "xml": "<a/>"}, DocumentExists, 409),
            ({"action": "delete"}, ApiError, 400),  # missing id
            ({"action": "update", "id": inserted["id"]}, ApiError, 400),  # missing xml
            ({"xml": "<unclosed"}, ApiError, 400),
            ({"action": "merge", "xml": "<a/>"}, ApiError, 400),
        ]
        for payload, expected, status in cases:
            with pytest.raises(expected) as excinfo:
                handle_documents(writable_db, payload)
            assert excinfo.value.http_status == status, payload

    def test_stats_carries_the_writer_block(self, writable_db, small_db):
        data = handle_stats(writable_db)
        assert data["writer"]["last_applied_seqno"] == 0
        assert data["writer"]["wedged"] is False
        assert "writer" not in handle_stats(small_db)

    def test_documents_endpoint_over_http(self, writable_db):
        import json
        import threading
        import urllib.request

        from repro.server.app import make_server

        server = make_server(writable_db, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            body = json.dumps(
                {"xml": "<article><title>over http</title></article>"}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"http://{host}:{port}/api/documents",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                payload = json.loads(response.read())
            assert payload["applied"] is True and payload["seqno"] == 1
            with urllib.request.urlopen(f"http://{host}:{port}/api/stats") as response:
                stats = json.loads(response.read())
            assert stats["writer"]["last_applied_seqno"] == 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
