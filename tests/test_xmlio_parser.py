"""Pull parser: well-formedness enforcement."""

import pytest

from repro.xmlio.errors import XMLWellFormednessError
from repro.xmlio.events import EndDocument
from repro.xmlio.parser import iter_events


def drain(text):
    return list(iter_events(text))


class TestWellFormedness:
    def test_balanced_document_ends_with_end_document(self):
        events = drain("<a><b/></a>")
        assert isinstance(events[-1], EndDocument)

    def test_mismatched_close(self):
        with pytest.raises(XMLWellFormednessError, match="mismatched"):
            drain("<a><b></a></b>")

    def test_error_names_the_open_tag(self):
        with pytest.raises(XMLWellFormednessError, match="expected </b>"):
            drain("<a><b></a>")

    def test_extra_close(self):
        with pytest.raises(XMLWellFormednessError, match="no open element"):
            drain("<a/></a>")

    def test_unclosed_element(self):
        with pytest.raises(XMLWellFormednessError, match="unclosed"):
            drain("<a><b>")

    def test_two_roots(self):
        with pytest.raises(XMLWellFormednessError, match="multiple root"):
            drain("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XMLWellFormednessError, match="outside"):
            drain("hello<a/>")

    def test_trailing_text_outside_root(self):
        with pytest.raises(XMLWellFormednessError, match="outside"):
            drain("<a/>junk")

    def test_whitespace_outside_root_allowed(self):
        events = drain("\n<a/>\n")
        assert isinstance(events[-1], EndDocument)

    def test_empty_document(self):
        with pytest.raises(XMLWellFormednessError, match="no root"):
            drain("")

    def test_comment_only_document(self):
        with pytest.raises(XMLWellFormednessError, match="no root"):
            drain("<!-- nothing here -->")

    def test_comments_around_root_allowed(self):
        events = drain("<!-- a --><r/><!-- b -->")
        assert isinstance(events[-1], EndDocument)

    def test_deep_nesting(self):
        depth = 200
        text = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        events = drain(text)
        assert isinstance(events[-1], EndDocument)
