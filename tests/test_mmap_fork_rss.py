"""Forked 2-shard RSS drill: shared mappings must stay shared.

Pre-fork serving processes are the deployment the zero-copy snapshot
format exists for: one process maps the shard snapshots, warms the hot
sections, and forks workers that serve queries off the inherited
mapping.  If any layer quietly copied a hot section per worker (a
``bytes()`` call on a memoryview, an eager inflate, a per-process index
rebuild), each fork would grow its own private copy and the fleet's
memory budget would multiply.

The drill runs in a *fresh* subprocess because ``ru_maxrss`` is
inherited across fork on Linux — a worker's counter starts at its
parent's peak and only records growth beyond it.  Keeping the drill
parent lean (it only loads the prebuilt snapshot; the corpus is built
by pytest beforehand) makes that inherited floor low, so a worker that
materialized hot data would actually move the counter.  Each forked
worker re-runs the probe queries and reports its
``resource.getrusage`` delta over a pipe; every delta must stay under
the budget, and every worker must reproduce the parent's results.

Nightly-tier (``slow``): tier-1 already covers mmap correctness; this
drill exists to catch memory-sharing regressions at a realistic scale.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.datasets import generate_dblp
from repro.shard.database import ShardedDatabase
from repro.engine.store import save_sharded_snapshot

SHARDS = 2
WORKERS = 2
#: Per-worker growth budget (KiB).  Workers only evaluate queries over
#: inherited, shared state; transient match objects cost a few MiB.  A
#: worker that re-inflated the hot sections or document tree for this
#: corpus would blow well past this.
BUDGET_KB = 32 * 1024
PROBES = ["//article[./title]/author", "//inproceedings//author"]

_DRILL = """
import json, os, resource, sys
from repro.engine.store import is_mmap_backed, load_sharded_snapshot

target, probes, workers = sys.argv[1], json.loads(sys.argv[2]), int(sys.argv[3])
db = load_sharded_snapshot(target, executor_mode="serial", mmap=True)
assert is_mmap_backed(db)
db.warm_hot()
# Touch the mapped pages and build the oracle before forking so workers
# inherit a fully faulted-in mapping and a settled heap.
oracle = {probe: len(db.matches(probe)) for probe in probes}

results = []
for _ in range(workers):
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        counts = {probe: len(db.matches(probe)) for probe in probes}
        delta = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss - before
        payload = json.dumps({"delta_kb": delta, "counts": counts})
        os.write(write_fd, payload.encode())
        os.close(write_fd)
        os._exit(0)
    os.close(write_fd)
    chunks = b""
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        chunks += chunk
    os.close(read_fd)
    _, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0
    results.append(json.loads(chunks.decode()))

print(json.dumps({"oracle": oracle, "workers": results}))
"""


@pytest.mark.slow
def test_forked_workers_share_the_mapping(tmp_path):
    if not hasattr(os, "fork"):  # pragma: no cover
        pytest.skip("drill requires os.fork")

    sharded = ShardedDatabase.from_document(
        generate_dblp(publications=2000, seed=42), SHARDS, executor_mode="serial"
    )
    target = tmp_path / "fleet"
    save_sharded_snapshot(sharded, target)
    sharded.close()

    result = subprocess.run(
        [
            sys.executable,
            "-c",
            _DRILL,
            str(target),
            json.dumps(PROBES),
            str(WORKERS),
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    report = json.loads(result.stdout.strip().splitlines()[-1])

    assert len(report["workers"]) == WORKERS
    for probe in PROBES:
        assert report["oracle"][probe] > 0, probe
    for worker in report["workers"]:
        # Correctness through the inherited mapping.
        assert worker["counts"] == report["oracle"]
        # The budget: forked workers may allocate transient match
        # objects but must not duplicate the mapped hot sections.
        assert worker["delta_kb"] < BUDGET_KB, (
            f"forked worker grew {worker['delta_kb']} KiB over the "
            f"pre-fork peak (budget {BUDGET_KB} KiB) — the snapshot "
            f"mapping is being copied instead of shared"
        )
