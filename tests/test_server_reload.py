"""Hot-swap reload: DatabaseHolder semantics and the /api/reload endpoint."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.database import LotusXDatabase
from repro.engine.store import save_snapshot
from repro.server.app import make_server
from repro.server.reload import (
    DatabaseHolder,
    ReloadInProgress,
    ReloadSource,
    ReloadUnavailable,
)

from tests.conftest import SMALL_XML


# ---------------------------------------------------------------------------
# DatabaseHolder semantics
# ---------------------------------------------------------------------------


def test_holder_starts_at_generation_one(small_db):
    holder = DatabaseHolder(small_db)
    assert holder.generation == 1
    assert holder.current is small_db
    assert holder.snapshot() == (small_db, 1)


def test_swap_bumps_generation_and_keeps_old_reference(small_db):
    holder = DatabaseHolder(small_db)
    old = holder.current
    replacement = LotusXDatabase.from_string(SMALL_XML)
    assert holder.swap(replacement) == 2
    assert holder.current is replacement
    assert holder.generation == 2
    # The old generation stays fully usable: in-flight requests that
    # bound it before the swap finish against it.
    assert old.matches("//article/author") == small_db.matches("//article/author")


def test_reload_without_source_raises(small_db):
    holder = DatabaseHolder(small_db)
    with pytest.raises(ReloadUnavailable):
        holder.reload()
    assert holder.generation == 1


def test_reload_from_xml_source(small_db, tmp_path):
    corpus = tmp_path / "small.xml"
    corpus.write_text(SMALL_XML, encoding="utf-8")
    holder = DatabaseHolder(small_db, ReloadSource("xml", str(corpus)))
    summary = holder.reload()
    assert summary["generation"] == 2
    assert summary["source"] == "xml"
    assert summary["elements"] == len(small_db.labeled)
    assert holder.current is not small_db
    assert holder.current.matches("//article/author") == small_db.matches(
        "//article/author"
    )


def test_reload_from_snapshot_source(small_db, tmp_path):
    path = tmp_path / "small.lxsnap"
    save_snapshot(small_db, path)
    holder = DatabaseHolder(small_db, ReloadSource("snapshot", str(path)))
    summary = holder.reload()
    assert summary["generation"] == 2
    assert summary["source"] == "snapshot"
    # Snapshot reloads come up eager: query-ready without lazy inflation.
    assert "labeled" in holder.current._parts


def test_concurrent_reload_fails_fast(small_db, tmp_path):
    corpus = tmp_path / "small.xml"
    corpus.write_text(SMALL_XML, encoding="utf-8")

    release = threading.Event()
    entered = threading.Event()

    class _SlowSource(ReloadSource):
        def build(self) -> LotusXDatabase:
            entered.set()
            release.wait(timeout=10)
            return super().build()

    holder = DatabaseHolder(small_db, _SlowSource("xml", str(corpus)))
    worker = threading.Thread(target=holder.reload)
    worker.start()
    try:
        assert entered.wait(timeout=10)
        with pytest.raises(ReloadInProgress):
            holder.reload()
        # The losing request changed nothing.
        assert holder.generation == 1
    finally:
        release.set()
        worker.join(timeout=10)
    assert holder.generation == 2


def test_unknown_source_kind_rejected():
    with pytest.raises(ValueError):
        ReloadSource("directory", "/tmp/x")


# ---------------------------------------------------------------------------
# /api/reload over HTTP
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def served(small_db, tmp_path_factory):
    corpus = tmp_path_factory.mktemp("reload") / "small.xml"
    corpus.write_text(SMALL_XML, encoding="utf-8")
    holder = DatabaseHolder(small_db, ReloadSource("xml", str(corpus)))
    server = make_server(holder, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", holder
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def post(base_url, path, payload):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_json(base_url, path):
    with urllib.request.urlopen(base_url + path, timeout=10) as response:
        return json.loads(response.read())


def test_stats_reports_generation(served):
    base_url, holder = served
    assert get_json(base_url, "/api/stats")["generation"] == holder.generation


def test_reload_endpoint_swaps_and_serving_continues(served):
    base_url, holder = served
    before = holder.generation
    status, data = post(base_url, "/api/reload", {})
    assert status == 200
    assert data["generation"] == before + 1
    assert data["source"] == "xml"
    assert get_json(base_url, "/api/stats")["generation"] == before + 1
    status, data = post(base_url, "/api/search", {"query": "//article/author"})
    assert status == 200
    assert data["total_matches"] == 3


def test_reload_conflict_is_409(served):
    base_url, holder = served
    # Hold the reload lock as a stand-in for a slow in-progress build.
    assert holder._reload_lock.acquire(blocking=False)
    try:
        status, data = post(base_url, "/api/reload", {})
    finally:
        holder._reload_lock.release()
    assert status == 409
    assert data["code"] == "reload_in_progress"


def test_reload_without_source_is_400(small_db):
    server = make_server(small_db, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"
    try:
        status, data = post(base_url, "/api/reload", {})
        assert status == 400
        assert data["code"] == "reload_unavailable"
        # A bare database is still served under generation 1.
        assert get_json(base_url, "/api/stats")["generation"] == 1
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_in_flight_request_survives_reload(served):
    """A request that bound the old generation finishes correctly even if
    a reload swaps mid-request."""
    base_url, holder = served
    old, generation = holder.snapshot()
    results = []

    def slow_query():
        # Simulates a handler that bound `current` before the swap.
        time.sleep(0.05)
        results.append(old.matches("//article/author"))

    worker = threading.Thread(target=slow_query)
    worker.start()
    status, _ = post(base_url, "/api/reload", {})
    assert status == 200
    worker.join(timeout=10)
    assert len(results[0]) == 3
    assert holder.generation == generation + 1
