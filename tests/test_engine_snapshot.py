"""Snapshot persistence: round-trip behavioral equality plus the
corruption / compatibility error taxonomy.

Round-trip tests assert that ``load_snapshot(save_snapshot(db))`` is
*behaviorally* equal to the database that was saved — same matches, same
completions, same keyword results, same statistics — in both the lazy
and the eager loading modes.  Corruption tests assert that every way a
file can be wrong (truncated, bit-flipped, future version, not a
snapshot at all) surfaces as the right typed error before any state is
materialized.
"""

from __future__ import annotations

import hashlib
import json
import random
import struct

import pytest

from repro.datasets import generate_dblp
from repro.engine.database import LotusXDatabase
from repro.engine.store import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
    load_snapshot,
    read_snapshot_info,
    save_snapshot,
)
from repro.twig.sample import sample_twig
from repro.xmlio.tree import Document, Element

_DIGEST_SIZE = hashlib.sha256().digest_size
_PREFIX = struct.Struct(">6sHHI")

QUERIES = [
    "//article[./title]/author",
    "//inproceedings//author",
    "//article[./year]",
    "//*[./author]",
    "ordered://article[./title][./author]",
]


@pytest.fixture(scope="module")
def built_db() -> LotusXDatabase:
    return LotusXDatabase(
        generate_dblp(publications=30, seed=11),
        synonyms={"paper": ("article", "inproceedings")},
    )


@pytest.fixture(scope="module")
def snapshot_path(built_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "dblp.lxsnap"
    save_snapshot(built_db, path)
    return path


@pytest.fixture(scope="module", params=["lazy", "eager"])
def loaded_db(request, snapshot_path) -> LotusXDatabase:
    return load_snapshot(snapshot_path, eager=request.param == "eager")


# ---------------------------------------------------------------------------
# Round-trip behavioral equality
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("query", QUERIES)
def test_round_trip_matches(built_db, loaded_db, query):
    assert loaded_db.matches(query) == built_db.matches(query)


def test_round_trip_complete_tag(built_db, loaded_db):
    assert loaded_db.complete_tag(prefix="") == built_db.complete_tag(prefix="")
    pattern = built_db.parse_query("//article")
    anchored = built_db.complete_tag(pattern, pattern.root, prefix="t")
    pattern_loaded = loaded_db.parse_query("//article")
    assert (
        loaded_db.complete_tag(pattern_loaded, pattern_loaded.root, prefix="t")
        == anchored
    )


def test_round_trip_complete_value(built_db, loaded_db):
    pattern = built_db.parse_query("//article/year")
    node = pattern.nodes()[-1]
    expected = built_db.complete_value(pattern, node, prefix="19")
    pattern_loaded = loaded_db.parse_query("//article/year")
    node_loaded = pattern_loaded.nodes()[-1]
    assert loaded_db.complete_value(pattern_loaded, node_loaded, "19") == expected


def test_round_trip_keyword_search(built_db, loaded_db):
    for semantics in ("slca", "elca"):
        expected = built_db.keyword_search("twig system", semantics=semantics)
        got = loaded_db.keyword_search("twig system", semantics=semantics)
        assert [(h.element.order, h.score) for h in got.hits] == [
            (h.element.order, h.score) for h in expected.hits
        ]


def test_round_trip_statistics(built_db, loaded_db):
    assert loaded_db.statistics().as_dict() == built_db.statistics().as_dict()


def test_round_trip_search_with_rewriting(built_db, loaded_db):
    # The synonym table is persisted, so rewriting behaves identically.
    expected = built_db.search("//paper/author")
    got = loaded_db.search("//paper/author")
    assert [r.xpath for r in got.results] == [r.xpath for r in expected.results]


def test_round_trip_expand_attributes(tmp_path):
    db = LotusXDatabase(
        generate_dblp(publications=10, seed=3), expand_attributes=True
    )
    path = tmp_path / "attrs.lxsnap"
    save_snapshot(db, path)
    loaded = load_snapshot(path)
    assert loaded.expanded_attributes is True
    query = "//article[./@key]"
    assert loaded.matches(query) == db.matches(query)
    # The caller-visible document stays the pristine (unexpanded) tree.
    assert all(
        not child.tag.startswith("@")
        for child in loaded.document.root.child_elements()
    )


def test_round_trip_random_documents(tmp_path):
    """Property check: random documents x sampled (satisfiable) twigs
    agree between the built database and its snapshot round-trip."""
    tags = ["a", "b", "c"]
    words = ["red", "blue", "green"]
    for seed in range(6):
        rng = random.Random(seed)
        root = Element("r")
        open_elements = [root]
        for _ in range(rng.randint(5, 30)):
            child = rng.choice(open_elements).make_child(rng.choice(tags))
            if rng.random() < 0.4:
                child.append_text(rng.choice(words))
            open_elements.append(child)
            if len(open_elements) > 5:
                open_elements.pop(0)
        db = LotusXDatabase(Document(root))
        path = tmp_path / f"rand-{seed}.lxsnap"
        save_snapshot(db, path)
        loaded = load_snapshot(path)
        for case in range(5):
            pattern = sample_twig(db.labeled, rng)
            assert loaded.matches(pattern) == db.matches(pattern), (
                f"seed={seed} case={case} pattern={pattern}"
            )


def test_read_snapshot_info(built_db, snapshot_path):
    info = read_snapshot_info(snapshot_path)
    assert info.version == SNAPSHOT_VERSION
    assert info.element_count == len(built_db.labeled)
    assert info.path_count == len(built_db.guide)
    assert info.expand_attributes is False
    assert set(info.section_sizes) == {
        "document",
        "labels",
        "terms",
        "terms.raw",
        "completion",
        "completion.raw",
        "completion.keys",
        "columnar",
        "columnar.raw",
    }
    assert info.size_bytes == snapshot_path.stat().st_size


def test_save_is_atomic_overwrite(built_db, tmp_path):
    path = tmp_path / "twice.lxsnap"
    first = save_snapshot(built_db, path)
    second = save_snapshot(built_db, path)
    assert first.sha256 == second.sha256  # deterministic bytes
    assert not path.with_name(path.name + ".tmp").exists()
    assert load_snapshot(path).matches(QUERIES[0]) == built_db.matches(QUERIES[0])


# ---------------------------------------------------------------------------
# Corruption and compatibility
# ---------------------------------------------------------------------------


def _rewrite_digest(data: bytes) -> bytes:
    """Recompute the trailing SHA-256 so only the *inner* mutation shows."""
    body = data[:-_DIGEST_SIZE]
    return body + hashlib.sha256(body).digest()


def test_truncated_snapshot(snapshot_path, tmp_path):
    data = snapshot_path.read_bytes()
    for keep in (len(data) - 7, len(data) // 2, 20):
        bad = tmp_path / f"trunc-{keep}.lxsnap"
        bad.write_bytes(data[:keep])
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(bad)


def test_flipped_byte_anywhere(snapshot_path, tmp_path):
    data = snapshot_path.read_bytes()
    # Version field, flags, header, section area, trailing digest: every
    # post-magic offset must fail closed as a checksum mismatch.
    offsets = [6, 8, 20, len(data) // 2, len(data) - 1]
    for offset in offsets:
        corrupt = bytearray(data)
        corrupt[offset] ^= 0x41
        bad = tmp_path / f"flip-{offset}.lxsnap"
        bad.write_bytes(bytes(corrupt))
        with pytest.raises(SnapshotIntegrityError):
            load_snapshot(bad)
        with pytest.raises(SnapshotIntegrityError):
            read_snapshot_info(bad)


def test_future_version_rejected(snapshot_path, tmp_path):
    data = bytearray(snapshot_path.read_bytes())
    # A *genuinely* different version re-seals the checksum; only then is
    # the version check reachable (a flipped version byte without the
    # reseal is indistinguishable from corruption).
    struct.pack_into(">H", data, len(SNAPSHOT_MAGIC), SNAPSHOT_VERSION + 1)
    bad = tmp_path / "future.lxsnap"
    bad.write_bytes(_rewrite_digest(bytes(data)))
    with pytest.raises(SnapshotVersionError):
        load_snapshot(bad)


def test_not_a_snapshot(tmp_path):
    for name, content in [
        ("doc.xml", b"<dblp><article/></dblp>"),
        ("empty.lxsnap", b""),
        ("short.lxsnap", b"LX"),
    ]:
        bad = tmp_path / name
        bad.write_bytes(content)
        with pytest.raises(SnapshotFormatError):
            load_snapshot(bad)


def test_missing_file(tmp_path):
    with pytest.raises(SnapshotError):
        load_snapshot(tmp_path / "nope.lxsnap")


def test_corrupt_section_with_valid_outer_digest(snapshot_path, tmp_path):
    """Craft a file whose outer checksum verifies but whose section blob
    is garbage: decoding must fail as a typed integrity error (the lazy
    per-section checksum), not leak a half-built database."""
    data = bytearray(snapshot_path.read_bytes())
    _, version, _, header_length = _PREFIX.unpack_from(data)
    first_section_byte = _PREFIX.size + header_length
    if version >= 3:
        first_section_byte += _DIGEST_SIZE
    data[first_section_byte] ^= 0xFF
    bad = tmp_path / "inner.lxsnap"
    bad.write_bytes(_rewrite_digest(bytes(data)))
    db = load_snapshot(bad)  # verification passes; decode is lazy
    with pytest.raises(SnapshotIntegrityError):
        db.warm()


def test_header_overrun_rejected(snapshot_path, tmp_path):
    data = bytearray(snapshot_path.read_bytes())
    struct.pack_into(">I", data, len(SNAPSHOT_MAGIC) + 4, 2**31)
    bad = tmp_path / "overrun.lxsnap"
    bad.write_bytes(_rewrite_digest(bytes(data)))
    with pytest.raises(SnapshotFormatError):
        load_snapshot(bad)


# ---------------------------------------------------------------------------
# Columnar section: round-trip, pre-columnar (v1) fallback, corruption
# ---------------------------------------------------------------------------


def _header(data: bytes) -> tuple[dict, int]:
    """(parsed JSON header, data-area start offset)."""
    _, version, _, header_length = _PREFIX.unpack_from(data)
    header_end = _PREFIX.size + header_length
    start = header_end + (_DIGEST_SIZE if version >= 3 else 0)
    return json.loads(data[_PREFIX.size : header_end]), start


def _strip_columnar_to_v1(data: bytes) -> bytes:
    """Rewrite a v2 snapshot as a valid v1 file with no columnar section,
    the shape every pre-columnar snapshot on disk actually has."""
    header, data_start = _header(data)
    body = bytearray()
    sections = []
    offset = 0
    for entry in header["sections"]:
        if entry["name"] == "columnar":
            continue
        start = data_start + entry["offset"]
        body += data[start : start + entry["length"]]
        sections.append(dict(entry, offset=offset))
        offset += entry["length"]
    new_header = json.dumps(
        {"sections": sections, "meta": header["meta"]}, sort_keys=True
    ).encode("utf-8")
    out = bytearray(_PREFIX.pack(SNAPSHOT_MAGIC, 1, 0, len(new_header)))
    out += new_header
    out += body
    out += hashlib.sha256(bytes(out)).digest()
    return bytes(out)


def test_columnar_section_round_trips(built_db, loaded_db):
    assert loaded_db.streams.supports_columnar()
    built_col = built_db.streams.columnar
    loaded_col = loaded_db.streams.columnar
    assert loaded_col is not None
    assert loaded_col.tags() == built_col.tags()
    for tag in sorted(built_col.tags()) + [None]:
        built_stream = built_col.stream(tag)
        loaded_stream = loaded_col.stream(tag)
        assert loaded_stream.starts == built_stream.starts
        assert loaded_stream.ends == built_stream.ends
        assert loaded_stream.levels == built_stream.levels
        assert loaded_stream.path_ids == built_stream.path_ids
    # Queries against the loaded database actually run the columnar
    # kernels (stats bypasses the match cache other tests may have warmed).
    from repro.twig.algorithms.common import AlgorithmStats

    stats = AlgorithmStats()
    loaded_db.matches(QUERIES[0], stats=stats)
    assert stats.notes["columnar"] == 1


def test_v1_snapshot_falls_back_to_object_streams(built_db, tmp_path):
    v2_path = tmp_path / "v2.lxsnap"
    save_snapshot(built_db, v2_path, version=2)
    v1_path = tmp_path / "v1.lxsnap"
    v1_path.write_bytes(_strip_columnar_to_v1(v2_path.read_bytes()))
    info = read_snapshot_info(v1_path)
    assert info.version == 1
    assert "columnar" not in info.section_sizes
    db = load_snapshot(v1_path)
    assert db.streams.supports_columnar() is False
    assert db.streams.columnar is None
    for query in QUERIES:
        assert db.matches(query) == built_db.matches(query), query
    assert db.counters["fallback_evaluations"] > 0
    assert db.counters["columnar_evaluations"] == 0
    assert db.cache_statistics()["columnar_enabled"] is False


def test_lazy_snapshot_reports_columnar_without_inflating(snapshot_path):
    db = load_snapshot(snapshot_path)
    stats = db.cache_statistics()
    # Reporting is side-effect free: nothing materialized yet, so the
    # stream factory (and its columnar flag) is simply absent.
    assert stats["columnar_enabled"] is None
    assert stats["autocomplete_cache"] is None
    db.warm()
    stats = db.cache_statistics()
    assert stats["columnar_enabled"] is True
    assert stats["autocomplete_cache"]["entries"] == 0


def test_corrupt_columnar_section_fails_typed(snapshot_path, tmp_path):
    data = bytearray(snapshot_path.read_bytes())
    header, data_start = _header(data)
    entry = next(e for e in header["sections"] if e["name"] == "columnar")
    data[data_start + entry["offset"]] ^= 0xFF
    bad = tmp_path / "badcol.lxsnap"
    bad.write_bytes(_rewrite_digest(bytes(data)))
    db = load_snapshot(bad)  # outer digest was resealed; decode is lazy
    with pytest.raises(SnapshotIntegrityError):
        db.streams


def test_corruption_leaves_no_partial_state(snapshot_path, tmp_path):
    """A failed load raises before returning anything, and a valid load
    afterwards is unaffected (no module/global contamination)."""
    data = snapshot_path.read_bytes()
    bad = tmp_path / "bad.lxsnap"
    bad.write_bytes(data[: len(data) // 2])
    with pytest.raises(SnapshotIntegrityError):
        load_snapshot(bad)
    good = load_snapshot(snapshot_path)
    assert len(good.labeled) == read_snapshot_info(snapshot_path).element_count
