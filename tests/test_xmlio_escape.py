"""Entity escaping and resolution."""

import pytest

from repro.xmlio.errors import XMLSyntaxError
from repro.xmlio.escape import (
    escape_attribute,
    escape_text,
    resolve_entity,
    unescape,
)


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_special_chars_escaped(self):
        assert escape_text("a<b&c>d") == "a&lt;b&amp;c&gt;d"

    def test_quotes_left_alone_in_text(self):
        assert escape_text('say "hi"') == 'say "hi"'


class TestEscapeAttribute:
    def test_double_quote_escaped(self):
        assert escape_attribute('a"b') == "a&quot;b"

    def test_angle_and_amp_escaped(self):
        assert escape_attribute("<&>") == "&lt;&amp;&gt;"


class TestResolveEntity:
    @pytest.mark.parametrize(
        "body,expected",
        [("lt", "<"), ("gt", ">"), ("amp", "&"), ("apos", "'"), ("quot", '"')],
    )
    def test_predefined(self, body, expected):
        assert resolve_entity(body) == expected

    def test_decimal_reference(self):
        assert resolve_entity("#65") == "A"

    def test_hex_reference(self):
        assert resolve_entity("#x41") == "A"
        assert resolve_entity("#X41") == "A"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("nbsp")

    def test_empty_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("")

    def test_bad_char_reference_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("#xZZ")

    def test_out_of_range_reference_raises(self):
        with pytest.raises(XMLSyntaxError):
            resolve_entity("#x110000")


class TestUnescape:
    def test_mixed_entities(self):
        assert unescape("a &amp; b &lt; &#99;") == "a & b < c"

    def test_no_entities_fast_path(self):
        assert unescape("plain") == "plain"

    def test_unterminated_raises(self):
        with pytest.raises(XMLSyntaxError):
            unescape("a &amp b")

    def test_roundtrip_with_escape(self):
        original = 'x < y & z > "w"'
        assert unescape(escape_text(original)) == original
