"""Ranking: structural, textual, and combined scores."""

import pytest

from repro.ranking.scorer import LotusXScorer
from repro.ranking.structural import compactness, edge_tightness, structural_score
from repro.ranking.tfidf import text_score
from repro.twig.parse import parse_twig


def matches_for(db, query):
    pattern = db.parse_query(query)
    return pattern, db.matches(pattern)


class TestStructuralScore:
    def test_parent_child_is_tightest(self, small_db):
        pattern, matches = matches_for(small_db, "//article//author")
        # All article authors are direct children: tightness 1.0.
        for match in matches:
            assert edge_tightness(pattern, match) == 1.0

    def test_distance_lowers_tightness(self, small_db):
        pattern, matches = matches_for(small_db, "//book//author")
        # book -> editor -> author: distance 2.
        assert len(matches) == 1
        assert edge_tightness(pattern, matches[0]) == 0.5

    def test_single_node_pattern_scores_one(self, small_db):
        pattern, matches = matches_for(small_db, "//title")
        for match in matches:
            assert edge_tightness(pattern, match) == 1.0

    def test_compactness_prefers_smaller_spans(self, small_db):
        tight_pattern, tight = matches_for(small_db, "//article/year")
        wide_pattern, wide = matches_for(small_db, "//dblp//year")
        best_tight = max(compactness(tight_pattern, m) for m in tight)
        best_wide = max(compactness(wide_pattern, m) for m in wide)
        assert best_tight > best_wide

    def test_structural_score_in_unit_interval(self, small_db):
        for query in ["//article/author", "//dblp//author", "//book//author"]:
            pattern, matches = matches_for(small_db, query)
            for match in matches:
                assert 0.0 < structural_score(pattern, match) <= 1.0


class TestTextScore:
    def test_no_terms_scores_zero(self, small_db):
        pattern, matches = matches_for(small_db, "//article/author")
        assert text_score(pattern, matches[0], small_db.term_index) == 0.0

    def test_matching_terms_score_positive(self, small_db):
        pattern, matches = matches_for(small_db, '//article[./title~"twig"]')
        assert matches
        score = text_score(pattern, matches[0], small_db.term_index)
        assert 0.0 < score <= 1.0

    def test_higher_tf_scores_higher(self):
        # tf saturation: an element with three occurrences of the term
        # outranks one with a single occurrence.
        from repro.engine.database import LotusXDatabase

        db = LotusXDatabase.from_string(
            "<r><d>twig twig twig</d><d>twig join</d></r>"
        )
        pattern, matches = (
            db.parse_query('//d[.~"twig"]'),
            db.matches('//d[.~"twig"]'),
        )
        scores = [text_score(pattern, match, db.term_index) for match in matches]
        assert scores[0] > scores[1]

    def test_single_term_score_is_tf_saturation(self, small_db):
        # With one query term the idf weight cancels by design: ranking
        # within a query depends on tf, not on cross-query idf.
        pattern, matches = matches_for(small_db, '//title[.~"lotusx"]')
        score = text_score(pattern, matches[0], small_db.term_index)
        assert score == pytest.approx(0.5)  # tf=1 -> 1/(1+1)


class TestCombinedScorer:
    def test_weights_normalized(self):
        scorer = LotusXScorer(structure_weight=2.0, text_weight=2.0)
        assert scorer.structure_weight == pytest.approx(0.5)
        assert scorer.text_weight == pytest.approx(0.5)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            LotusXScorer(structure_weight=0.0, text_weight=0.0)

    def test_no_terms_falls_back_to_structure(self, small_db):
        scorer = LotusXScorer()
        pattern, matches = matches_for(small_db, "//article/author")
        score = scorer.score_match(pattern, matches[0], small_db.term_index)
        assert score.combined == pytest.approx(score.structural)
        assert score.textual == 0.0

    def test_rewrite_penalty_degrades(self, small_db):
        scorer = LotusXScorer()
        pattern, matches = matches_for(small_db, "//article/author")
        clean = scorer.score_match(pattern, matches[0], small_db.term_index)
        penalized = scorer.score_match(
            pattern, matches[0], small_db.term_index, rewrite_penalty=1.0
        )
        assert penalized.combined == pytest.approx(clean.combined / 2.0)
        assert penalized.rewrite_penalty == 1.0

    def test_rank_is_sorted(self, small_db):
        scorer = LotusXScorer()
        pattern, matches = matches_for(small_db, "//dblp//author")
        ranked = scorer.rank(pattern, matches, small_db.term_index)
        scores = [score.combined for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_tight_matches_rank_first(self, small_db):
        # //dblp//author: article/inproceedings authors (distance 2 from
        # dblp) vs book editor author (distance 3): deeper = looser.
        scorer = LotusXScorer.structure_only()
        pattern, matches = matches_for(small_db, "//dblp//author")
        ranked = scorer.rank(pattern, matches, small_db.term_index)
        levels = [match.element(1).level for match, _ in ranked]
        assert levels == sorted(levels)

    def test_degenerate_scorers(self, small_db):
        pattern, matches = matches_for(small_db, '//article[./title~"twig"]')
        text_only = LotusXScorer.text_only().score_match(
            pattern, matches[0], small_db.term_index
        )
        structure_only = LotusXScorer.structure_only().score_match(
            pattern, matches[0], small_db.term_index
        )
        assert text_only.combined == pytest.approx(text_only.textual)
        assert structure_only.combined == pytest.approx(structure_only.structural)

    def test_as_dict(self, small_db):
        scorer = LotusXScorer()
        pattern, matches = matches_for(small_db, "//article/author")
        data = scorer.score_match(pattern, matches[0], small_db.term_index).as_dict()
        assert set(data) == {"structural", "textual", "rewrite_penalty", "combined"}
