"""Twig pattern model: construction, predicates, identity, copying."""

import pytest

from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.pattern import (
    Axis,
    ComparisonOp,
    ContainsPredicate,
    EqualsPredicate,
    RangePredicate,
    TwigPattern,
)
from repro.xmlio.builder import parse_string


def build_pattern():
    pattern = TwigPattern("article")
    title = pattern.add_child(pattern.root, "title", Axis.CHILD)
    author = pattern.add_child(
        pattern.root, "author", Axis.DESCENDANT, ContainsPredicate("lu")
    )
    return pattern, title, author


class TestConstruction:
    def test_root_defaults(self):
        pattern = TwigPattern("a")
        assert pattern.root.axis is Axis.DESCENDANT
        assert pattern.root.is_root and pattern.root.is_leaf

    def test_add_child_links(self):
        pattern, title, author = build_pattern()
        assert title.parent is pattern.root
        assert pattern.root.children == [title, author]
        assert pattern.size == 3

    def test_node_ids_unique(self):
        pattern, title, author = build_pattern()
        ids = [node.node_id for node in pattern.nodes()]
        assert len(ids) == len(set(ids))

    def test_add_child_to_foreign_node_rejected(self):
        pattern, _, _ = build_pattern()
        other = TwigPattern("x")
        with pytest.raises(ValueError):
            pattern.add_child(other.root, "y")

    def test_find_node(self):
        pattern, title, _ = build_pattern()
        assert pattern.find_node(title.node_id) is title
        assert pattern.find_node(999) is None

    def test_order_constraint_validation(self):
        pattern, title, author = build_pattern()
        pattern.add_order_constraint(title, author)
        assert pattern.order_constraints == [(title.node_id, author.node_id)]
        other = TwigPattern("x")
        with pytest.raises(ValueError):
            pattern.add_order_constraint(title, other.root)


class TestIntrospection:
    def test_leaves(self):
        pattern, title, author = build_pattern()
        assert set(pattern.leaves()) == {title, author}

    def test_output_defaults_to_root(self):
        pattern, title, _ = build_pattern()
        assert pattern.output_nodes() == [pattern.root]
        title.is_output = True
        assert pattern.output_nodes() == [title]

    def test_is_path(self):
        path = TwigPattern("a")
        node = path.add_child(path.root, "b")
        path.add_child(node, "c")
        assert path.is_path()
        pattern, _, _ = build_pattern()
        assert not pattern.is_path()

    def test_wildcards(self):
        pattern = TwigPattern(None)
        assert pattern.has_wildcards()
        assert pattern.root.display_tag == "*"
        assert pattern.root.accepts_tag("anything")

    def test_all_terms(self):
        pattern, _, _ = build_pattern()
        assert pattern.all_terms() == ("lu",)


class TestPredicates:
    @pytest.fixture()
    def ctx(self):
        labeled = label_document(
            parse_string("<r><a>jiaheng lu</a><y>2005</y><e></e></r>")
        )
        return labeled, TermIndex(labeled)

    def test_contains(self, ctx):
        labeled, index = ctx
        a = labeled.stream("a")[0]
        assert ContainsPredicate("lu").matches(a, index)
        assert ContainsPredicate("jiaheng lu").matches(a, index)
        assert not ContainsPredicate("ling").matches(a, index)

    def test_contains_requires_terms(self):
        with pytest.raises(ValueError):
            ContainsPredicate("...")

    def test_equals(self, ctx):
        labeled, index = ctx
        a = labeled.stream("a")[0]
        assert EqualsPredicate("Jiaheng  LU").matches(a, index)
        assert not EqualsPredicate("jiaheng").matches(a, index)

    def test_range(self, ctx):
        labeled, index = ctx
        y = labeled.stream("y")[0]
        assert RangePredicate(ComparisonOp.GE, 2005).matches(y, index)
        assert RangePredicate(ComparisonOp.LT, 2010).matches(y, index)
        assert not RangePredicate(ComparisonOp.GT, 2005).matches(y, index)

    def test_range_on_non_numeric_fails(self, ctx):
        labeled, index = ctx
        a = labeled.stream("a")[0]
        assert not RangePredicate(ComparisonOp.EQ, 1).matches(a, index)

    def test_range_rejects_contains_op(self):
        with pytest.raises(ValueError):
            RangePredicate(ComparisonOp.CONTAINS, 1)


class TestIdentityAndCopy:
    def test_signature_distinguishes_structure(self):
        first, _, _ = build_pattern()
        second, _, _ = build_pattern()
        assert first.signature() == second.signature()
        second.root.children[0].axis = Axis.DESCENDANT
        assert first.signature() != second.signature()

    def test_signature_sees_ordered_flag(self):
        first, _, _ = build_pattern()
        second, _, _ = build_pattern()
        second.ordered = True
        assert first.signature() != second.signature()

    def test_copy_is_deep_and_id_preserving(self):
        pattern, title, author = build_pattern()
        clone = pattern.copy()
        assert clone.signature() == pattern.signature()
        clone_title = clone.find_node(title.node_id)
        assert clone_title is not title
        clone_title.tag = "changed"
        assert title.tag == "title"

    def test_copy_continues_id_sequence(self):
        pattern, _, _ = build_pattern()
        clone = pattern.copy()
        new_node = clone.add_child(clone.root, "extra")
        assert new_node.node_id not in {n.node_id for n in pattern.nodes()}


class TestRendering:
    def test_str_roundtrips_through_parser(self):
        from repro.twig.parse import parse_twig

        pattern, title, _ = build_pattern()
        title.is_output = True
        reparsed = parse_twig(str(pattern))
        assert reparsed.signature() == pattern.signature()

    def test_pretty_contains_all_nodes(self):
        pattern, _, _ = build_pattern()
        pretty = pattern.pretty()
        for fragment in ["article", "/title", "//author", '[~"lu"]']:
            assert fragment in pretty
