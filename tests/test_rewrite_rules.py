"""Relaxation rules."""

import pytest

from repro.rewrite.rules import (
    AxisGeneralization,
    EqualsToContains,
    LeafRemoval,
    NodePromotion,
    PredicateRemoval,
    RequiredToOptional,
    TagSubstitution,
    TagToWildcard,
    default_rules,
)
from repro.twig.parse import parse_twig
from repro.twig.pattern import Axis, ContainsPredicate, EqualsPredicate


def apply_rule(rule, query):
    return list(rule.apply(parse_twig(query)))


class TestAxisGeneralization:
    def test_one_rewrite_per_child_edge(self):
        steps = apply_rule(AxisGeneralization(), "//a/b/c")
        assert len(steps) == 2

    def test_edge_becomes_descendant(self):
        steps = apply_rule(AxisGeneralization(), "//a/b")
        rewritten = steps[0].pattern
        assert rewritten.root.children[0].axis is Axis.DESCENDANT

    def test_original_untouched(self):
        pattern = parse_twig("//a/b")
        list(AxisGeneralization().apply(pattern))
        assert pattern.root.children[0].axis is Axis.CHILD

    def test_no_child_edges_no_rewrites(self):
        assert apply_rule(AxisGeneralization(), "//a//b") == []


class TestPredicateRules:
    def test_equals_to_contains(self):
        steps = apply_rule(EqualsToContains(), '//a[./b="jiaheng lu"]')
        assert len(steps) == 1
        predicate = steps[0].pattern.root.children[0].predicate
        assert isinstance(predicate, ContainsPredicate)
        assert predicate.terms() == ("jiaheng", "lu")

    def test_contains_not_further_relaxed(self):
        assert apply_rule(EqualsToContains(), '//a[./b~"x"]') == []

    def test_predicate_removal(self):
        steps = apply_rule(PredicateRemoval(), '//a[./b="x"][./c~"y"]')
        assert len(steps) == 2
        for step in steps:
            remaining = [
                node for node in step.pattern.nodes() if node.predicate is not None
            ]
            assert len(remaining) == 1


class TestNodeRules:
    def test_leaf_removal_spares_root_and_outputs(self):
        steps = apply_rule(LeafRemoval(), "//a[./b][./c!]")
        # c is an output; only b is removable.
        assert len(steps) == 1
        assert steps[0].pattern.size == 2

    def test_node_promotion_reattaches_children(self):
        steps = apply_rule(NodePromotion(), "//a/b/c")
        # b is interior (a is root, c is the default output leaf).
        assert len(steps) == 1
        rewritten = steps[0].pattern
        assert rewritten.size == 2
        child = rewritten.root.children[0]
        assert child.tag == "c"
        assert child.axis is Axis.DESCENDANT

    def test_tag_to_wildcard(self):
        steps = apply_rule(TagToWildcard(), "//a/b")
        assert len(steps) == 2
        assert any(step.pattern.root.tag is None for step in steps)


class TestTagSubstitution:
    def test_only_fires_on_unsatisfiable_nodes(self, small_db):
        rule = TagSubstitution(small_db.guide)
        assert list(rule.apply(parse_twig("//article/author"))) == []
        steps = list(rule.apply(parse_twig("//article/writer")))
        assert steps
        new_tags = {step.pattern.root.children[0].tag for step in steps}
        assert new_tags <= {"title", "author", "year", "journal"}

    def test_synonyms_preferred(self, small_db):
        rule = TagSubstitution(
            small_db.guide, synonyms={"writer": ("author",)}
        )
        steps = list(rule.apply(parse_twig("//article/writer")))
        assert steps[0].pattern.root.children[0].tag == "author"
        assert steps[0].penalty == rule.synonym_penalty

    def test_alternatives_capped(self, small_db):
        rule = TagSubstitution(small_db.guide, max_alternatives=2)
        steps = list(rule.apply(parse_twig("//article/writer")))
        assert len(steps) <= 2


class TestRequiredToOptional:
    def test_non_output_branches_offered(self):
        steps = apply_rule(RequiredToOptional(), "//a[./b][./c!]")
        # c is the output; only b can become optional.
        assert len(steps) == 1
        rewritten = steps[0].pattern
        assert rewritten.find_node(rewritten.root.children[0].node_id).optional

    def test_already_optional_skipped(self):
        steps = apply_rule(RequiredToOptional(), "//a[./b?][./c!]")
        assert steps == []

    def test_root_never_optional(self):
        assert apply_rule(RequiredToOptional(), "//a") == []

    def test_recovers_missing_branch(self, small_db):
        from repro.rewrite.engine import QueryRewriter
        from repro.rewrite.rules import default_rules
        from repro.twig.parse import parse_twig

        rewriter = QueryRewriter(default_rules(small_db.guide))
        outcome = rewriter.search_with_rewrites(
            parse_twig("//article[./publisher]/title"),
            lambda p: small_db.matches(p),
        )
        candidate, matches = outcome.best()
        assert "optional" in candidate.describe()
        assert matches


class TestDefaultRules:
    def test_all_rule_kinds_present(self, small_db):
        rules = default_rules(small_db.guide)
        kinds = {type(rule) for rule in rules}
        assert kinds == {
            AxisGeneralization,
            EqualsToContains,
            RequiredToOptional,
            PredicateRemoval,
            LeafRemoval,
            NodePromotion,
            TagSubstitution,
            TagToWildcard,
        }

    def test_rules_never_mutate_input(self, small_db):
        pattern = parse_twig('//article[./writer="x"]/title')
        signature = pattern.signature()
        for rule in default_rules(small_db.guide):
            list(rule.apply(pattern))
        assert pattern.signature() == signature
