"""The tenant registry: names, quotas, slices, and rebalancing.

Pure registry-level tests — no transports, no sockets.  The routing and
HTTP behavior of multi-tenant serving lives in ``test_tenant_server``;
here the subjects are the name rules, the default-tenant bookkeeping,
the quota-slice arithmetic (explicit quotas honored verbatim, fair
shares recomputed on every membership change), and the
slice-then-global admission order that makes one tenant's overload shed
*its own* traffic.
"""

from __future__ import annotations

import pytest

from repro.engine.database import LotusXDatabase
from repro.resilience.errors import Overloaded
from repro.server.pipeline import ServerConfig
from repro.server.reload import DatabaseHolder
from repro.tenant.registry import (
    DEFAULT_TENANT,
    DuplicateTenant,
    InvalidTenantName,
    Tenant,
    TenantRegistry,
    UnknownTenant,
    validate_tenant_name,
)

XML_A = "<a><x>alpha</x></a>"
XML_B = "<b><y>beta</y></b>"


def db(xml: str) -> LotusXDatabase:
    return LotusXDatabase.from_string(xml)


class TestNames:
    @pytest.mark.parametrize(
        "name", ["a", "acme", "a-b_c", "0", "x" * 64, "tenant-2"]
    )
    def test_legal_names_pass(self, name):
        assert validate_tenant_name(name) == name

    @pytest.mark.parametrize(
        "name",
        ["", "ACME", "a b", "a/b", "x" * 65, "ünïcode", "a.b", None, 7],
    )
    def test_illegal_names_raise_400(self, name):
        with pytest.raises(InvalidTenantName) as info:
            validate_tenant_name(name)
        assert info.value.http_status == 400
        assert info.value.code == "invalid_tenant"

    def test_registry_get_validates_before_lookup(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A))
        with pytest.raises(InvalidTenantName):
            registry.get("NOT-LEGAL")

    def test_unknown_tenant_names_the_known_set(self):
        registry = TenantRegistry()
        registry.add("b", db(XML_B))
        registry.add("a", db(XML_A))
        with pytest.raises(UnknownTenant) as info:
            registry.get("zzz")
        assert info.value.http_status == 404
        assert info.value.code == "unknown_tenant"
        assert info.value.fields() == {"tenant": "zzz", "known": ["a", "b"]}


class TestMembership:
    def test_first_added_becomes_default(self):
        registry = TenantRegistry()
        registry.add("first", db(XML_A))
        registry.add("second", db(XML_B))
        assert registry.default_name == "first"
        assert registry.default.name == "first"

    def test_explicit_default_wins(self):
        registry = TenantRegistry()
        registry.add("first", db(XML_A))
        registry.add("second", db(XML_B), default=True)
        assert registry.default_name == "second"

    def test_duplicate_add_is_409(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A))
        with pytest.raises(DuplicateTenant) as info:
            registry.add("a", db(XML_B))
        assert info.value.http_status == 409

    def test_iteration_and_names_are_sorted(self):
        registry = TenantRegistry()
        registry.add("zeta", db(XML_A))
        registry.add("alpha", db(XML_B))
        assert registry.names() == ["alpha", "zeta"]
        assert [tenant.name for tenant in registry] == ["alpha", "zeta"]
        assert len(registry) == 2
        assert registry.is_multi

    def test_single_wraps_a_holder_as_default(self, small_db):
        holder = DatabaseHolder(small_db)
        registry = TenantRegistry.single(holder)
        assert registry.default_name == DEFAULT_TENANT
        assert registry.default.holder is holder
        assert not registry.is_multi

    def test_quota_must_be_positive(self):
        registry = TenantRegistry()
        with pytest.raises(ValueError):
            registry.add("a", db(XML_A), quota=0)


class TestSlices:
    CONFIG = ServerConfig(max_concurrency=8, max_queue=4)

    def test_single_tenant_without_quota_has_no_slice(self, small_db):
        registry = TenantRegistry.single(DatabaseHolder(small_db))
        registry.attach(self.CONFIG)
        assert registry.default.slice_gate is None

    def test_single_tenant_with_explicit_quota_gets_a_slice(self):
        registry = TenantRegistry()
        registry.add("only", db(XML_A), quota=3)
        registry.attach(self.CONFIG)
        gate = registry.get("only").slice_gate
        assert gate is not None
        assert gate.capacity == 3

    def test_fair_shares_partition_the_capacity(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A))
        registry.add("b", db(XML_B))
        registry.attach(self.CONFIG)
        for name in ("a", "b"):
            gate = registry.get(name).slice_gate
            assert gate.capacity == 4  # 8 // 2
            assert gate.max_queue == 2  # 4 // 2

    def test_explicit_quota_is_honored_verbatim(self):
        registry = TenantRegistry()
        registry.add("pinned", db(XML_A), quota=1)
        registry.add("other", db(XML_B))
        registry.attach(self.CONFIG)
        assert registry.get("pinned").slice_gate.capacity == 1
        assert registry.get("other").slice_gate.capacity == 4

    def test_membership_change_resizes_existing_slices(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A))
        registry.add("b", db(XML_B))
        registry.attach(self.CONFIG)
        gate_a = registry.get("a").slice_gate
        assert gate_a.capacity == 4
        registry.add("c", db(XML_A))
        registry.add("d", db(XML_B))
        # Same gate object, shrunk in place: 8 // 4 tenants.
        assert registry.get("a").slice_gate is gate_a
        assert gate_a.capacity == 2
        assert gate_a.max_queue == 1

    def test_shares_floor_at_one_slot(self):
        registry = TenantRegistry()
        for index in range(4):
            registry.add(f"t{index}", db(XML_A))
        registry.attach(ServerConfig(max_concurrency=2, max_queue=0))
        for tenant in registry:
            assert tenant.slice_gate.capacity == 1

    def test_slice_site_names_the_tenant(self):
        registry = TenantRegistry()
        registry.add("acme", db(XML_A), quota=1)
        registry.add("other", db(XML_B))
        registry.attach(self.CONFIG)
        gate = registry.get("acme").slice_gate
        assert gate.site == "tenant.acme.admission"
        assert gate.snapshot()["site"] == "tenant.acme.admission"


class TestAdmission:
    def test_slice_sheds_before_the_global_gate(self):
        """A saturated slice raises with the tenant's site while the
        global gate still has room — the noisy tenant sheds itself."""
        config = ServerConfig(
            max_concurrency=8, max_queue=0, queue_timeout_s=0.05
        )
        registry = TenantRegistry()
        registry.add("noisy", db(XML_A), quota=1)
        registry.add("quiet", db(XML_B))
        registry.attach(config)
        noisy = registry.get("noisy")
        quiet = registry.get("quiet")
        global_gate = config.make_gate()
        with noisy.admission(global_gate):
            with pytest.raises(Overloaded) as info:
                with noisy.admission(global_gate):
                    pass  # pragma: no cover
            assert info.value.site == "tenant.noisy.admission"
            # The other tenant is untouched by the noisy slice.
            with quiet.admission(global_gate):
                assert global_gate.snapshot()["active"] == 2

    def test_slice_slot_is_released_on_exit(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A), quota=1)
        registry.add("b", db(XML_B))
        registry.attach(ServerConfig(max_concurrency=4, max_queue=0))
        tenant = registry.get("a")
        gate = ServerConfig(max_concurrency=4).make_gate()
        for _ in range(3):  # no slot leak across admissions
            with tenant.admission(gate):
                pass
        assert tenant.slice_gate.snapshot()["active"] == 0
        assert gate.snapshot()["active"] == 0

    def test_no_slice_means_global_gate_only(self, small_db):
        registry = TenantRegistry.single(DatabaseHolder(small_db))
        registry.attach(ServerConfig(max_concurrency=1, max_queue=0))
        tenant = registry.default
        gate = ServerConfig(
            max_concurrency=1, max_queue=0, queue_timeout_s=0.05
        ).make_gate()
        with tenant.admission(gate):
            with pytest.raises(Overloaded) as info:
                with tenant.admission(gate):
                    pass  # pragma: no cover
        assert info.value.site == "server.admission"


class TestMonitoring:
    def test_stats_block_shape(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A), quota=2)
        registry.add("b", db(XML_B))
        registry.attach(ServerConfig(max_concurrency=8, max_queue=4))
        registry.get("a").count_request()
        block = registry.stats_block()
        assert block["default"] == "a"
        assert block["count"] == 2
        entry = block["by_name"]["a"]
        assert entry["generation"] == 1
        assert entry["requests"] == 1
        assert entry["quota"] == 2
        assert entry["elements"] > 0
        assert entry["admission"]["site"] == "tenant.a.admission"
        assert block["by_name"]["b"]["quota"] is None

    def test_listing_flattens_for_the_cli(self):
        registry = TenantRegistry()
        registry.add("a", db(XML_A))
        listing = registry.listing()
        assert listing["default"] == "a"
        assert listing["admin_enabled"] is False
        assert [row["name"] for row in listing["tenants"]] == ["a"]

    def test_holder_is_labeled_with_the_tenant(self):
        registry = TenantRegistry()
        tenant = registry.add("acme", db(XML_A))
        assert tenant.holder.label == "acme"
        assert tenant.holder.current.tenant_label == "acme"


class TestTenantObject:
    def test_request_counter_is_thread_safe_enough(self):
        tenant = Tenant("t", DatabaseHolder(db(XML_A)))
        import threading

        def bump():
            for _ in range(200):
                tenant.count_request()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tenant.requests == 800
