"""Child-tag tables CT(t)."""

import pytest

from repro.summary.child_table import ChildTagTable
from repro.summary.dataguide import DataGuide
from repro.xmlio.builder import parse_string

XML = (
    "<dblp><article><title>a</title><author>x</author></article>"
    "<book><author>y</author><title>b</title></book></dblp>"
)


class TestConstruction:
    def test_from_document(self):
        table = ChildTagTable.from_document(parse_string(XML))
        assert table.child_tags("dblp") == ("article", "book")
        assert table.child_tags("article") == ("title", "author")
        # Discovery order differs per parent tag.
        assert table.child_tags("book") == ("author", "title")

    def test_leaves_have_empty_tables(self):
        table = ChildTagTable.from_document(parse_string(XML))
        assert table.child_tags("title") == ()
        assert table.fanout("title") == 0

    def test_unknown_tag_empty(self):
        table = ChildTagTable()
        assert table.child_tags("nope") == ()
        assert "nope" not in table

    def test_from_dataguide_matches_from_document(self):
        doc = parse_string(XML)
        from_doc = ChildTagTable.from_document(doc)
        from_guide = ChildTagTable.from_dataguide(DataGuide.from_document(doc))
        assert dict(from_doc.items()) == dict(from_guide.items())

    def test_observe_idempotent(self):
        table = ChildTagTable()
        assert table.observe("a", "b") == 0
        assert table.observe("a", "b") == 0
        assert table.observe("a", "c") == 1
        assert table.child_tags("a") == ("b", "c")

    def test_load_roundtrip(self):
        table = ChildTagTable.from_document(parse_string(XML))
        loaded = ChildTagTable()
        loaded.load((tag, list(children)) for tag, children in table.items())
        assert dict(loaded.items()) == dict(table.items())


class TestLookup:
    def test_tag_index(self):
        table = ChildTagTable.from_document(parse_string(XML))
        assert table.tag_index("article", "title") == 0
        assert table.tag_index("article", "author") == 1

    def test_tag_index_unknown_raises(self):
        table = ChildTagTable()
        with pytest.raises(KeyError):
            table.tag_index("a", "b")

    def test_parent_tags(self):
        table = ChildTagTable.from_document(parse_string(XML))
        assert set(table.parent_tags()) == {"dblp", "article", "book", "title", "author"}
