"""PackedTrie equivalence: the flat, mmap-servable completion trie must
be observably identical to the list-node :class:`Trie` it replaces.

The contract is exact, not approximate: ``complete`` returns the same
top-k in the same order (descending weight, ties alphabetical),
``iter_prefix``/``items`` the same lexicographic streams, ``weight`` and
``in`` the same point lookups — over adversarial key sets (prefixes of
each other, equal weights, unicode, empty) and over both heap-backed and
``memoryview``-backed buffers.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.index.packed import (
    PackedTrie,
    build_rmq,
    pack_items,
    rmq_table_length,
)
from repro.index.trie import Trie

WORDS = [
    "a", "ab", "abc", "abd", "b", "ba", "banana", "band", "bandit",
    "año", "ärm", "中文", "中国", "zz", "z",
]


def _random_trie(rng: random.Random, size: int) -> Trie:
    trie = Trie()
    for _ in range(size):
        if rng.random() < 0.5:
            key = rng.choice(WORDS)
        else:
            key = "".join(rng.choice("abcdxyz") for _ in range(rng.randint(1, 6)))
        # Repeated adds accumulate weight, like the real indexes do;
        # small range forces plenty of equal-weight ties.
        trie.add(key, rng.randint(1, 4))
    return trie


def _prefixes(trie: Trie, rng: random.Random) -> list[str]:
    keys = [key for key, _ in trie.items()]
    probes = ["", "a", "ab", "ban", "中", "nope", "zzz"]
    for key in rng.sample(keys, min(5, len(keys))):
        probes.append(key)
        probes.append(key[: max(1, len(key) // 2)])
        probes.append(key + "x")
    return probes


@pytest.mark.parametrize("seed", range(20))
def test_packed_matches_trie_exactly(seed):
    rng = random.Random(seed)
    trie = _random_trie(rng, rng.randint(1, 60))
    packed = PackedTrie.from_trie(trie)

    assert len(packed) == len(trie)
    assert list(packed.items()) == list(trie.items())
    for prefix in _prefixes(trie, rng):
        assert list(packed.iter_prefix(prefix)) == list(trie.iter_prefix(prefix))
        for k in (0, 1, 2, 5, 1000):
            assert packed.complete(prefix, k) == trie.complete(prefix, k), (
                f"seed={seed} prefix={prefix!r} k={k}"
            )
    for key, weight in trie.items():
        assert packed.weight(key) == weight
        assert key in packed
    assert "definitely-not-present" not in packed
    assert packed.weight("definitely-not-present") == 0


def test_empty_trie():
    packed = PackedTrie.from_trie(Trie())
    assert len(packed) == 0
    assert packed.complete("", 10) == []
    assert list(packed.items()) == []
    assert "x" not in packed


def test_prefix_of_another_key():
    trie = Trie()
    for key, weight in [("a", 1), ("ab", 5), ("abc", 3), ("b", 2)]:
        trie.add(key, weight)
    packed = PackedTrie.from_trie(trie)
    assert packed.complete("a", 10) == trie.complete("a", 10)
    assert packed.complete("ab", 10) == trie.complete("ab", 10)
    assert list(packed.iter_prefix("a")) == list(trie.iter_prefix("a"))


def test_equal_weights_break_ties_alphabetically():
    trie = Trie()
    for key in ["delta", "alpha", "charlie", "bravo"]:
        trie.add(key, 7)
    packed = PackedTrie.from_trie(trie)
    assert packed.complete("", 10) == [
        ("alpha", 7), ("bravo", 7), ("charlie", 7), ("delta", 7)
    ]
    assert packed.complete("", 2) == [("alpha", 7), ("bravo", 7)]


def test_pack_items_rejects_unsorted_keys():
    with pytest.raises(ValueError):
        pack_items([("b", 1), ("a", 2)])
    with pytest.raises(ValueError):
        pack_items([("a", 1), ("a", 2)])


def test_rmq_table_matches_naive_argmax():
    rng = random.Random(99)
    weights = [rng.randint(0, 9) for _ in range(37)]
    assert len(build_rmq(weights)) == rmq_table_length(len(weights))
    keys = [f"k{i:03d}" for i in range(len(weights))]
    packed = PackedTrie(*pack_items(zip(keys, weights)))
    for lo in range(len(weights)):
        for hi in range(lo + 1, len(weights) + 1):
            best = packed._argmax(lo, hi)
            naive = max(range(lo, hi), key=lambda i: (weights[i], -i))
            assert best == naive, f"[{lo}, {hi})"


def test_memoryview_backed_buffers():
    """The loader hands the trie mmap-backed memoryviews, not arrays —
    results must be identical."""
    trie = _random_trie(random.Random(5), 40)
    blob, offsets, weights, rmq = pack_items(trie.items())
    packed = PackedTrie(
        memoryview(blob),
        memoryview(offsets.tobytes()).cast("q"),
        memoryview(weights.tobytes()).cast("q"),
        memoryview(rmq.tobytes()).cast("q"),
    )
    reference = PackedTrie(blob, offsets, weights, rmq)
    assert list(packed.items()) == list(trie.items())
    for prefix in ("", "a", "ab", "ba", "中"):
        assert packed.complete(prefix, 10) == reference.complete(prefix, 10)
        assert packed.complete(prefix, 10) == trie.complete(prefix, 10)


def test_single_key():
    trie = Trie()
    trie.add("only", 3)
    packed = PackedTrie.from_trie(trie)
    assert packed.complete("o", 10) == [("only", 3)]
    assert packed.complete("only", 10) == [("only", 3)]
    assert packed.complete("onlyx", 10) == []
    assert len(build_rmq(array("q", [3]))) == 0
