"""Tree model: navigation, text access, paths."""

import pytest

from repro.xmlio.builder import parse_string
from repro.xmlio.tree import Element, Text


@pytest.fixture()
def doc():
    return parse_string(
        "<lib><shelf n='1'><book>alpha<note>beta</note>gamma</book>"
        "<book>delta</book></shelf><shelf n='2'/></lib>"
    )


class TestNavigation:
    def test_find_first_child(self, doc):
        shelf = doc.root.find("shelf")
        assert shelf is not None
        assert shelf.attributes == {"n": "1"}

    def test_find_missing_returns_none(self, doc):
        assert doc.root.find("nope") is None

    def test_find_all(self, doc):
        assert len(doc.root.find_all("shelf")) == 2

    def test_child_elements_skip_text(self, doc):
        book = doc.root.find("shelf").find("book")
        assert [c.tag for c in book.child_elements()] == ["note"]

    def test_iter_preorder(self, doc):
        tags = [e.tag for e in doc.iter()]
        assert tags == ["lib", "shelf", "book", "note", "book", "shelf"]

    def test_iter_descendants_excludes_self(self, doc):
        shelf = doc.root.find("shelf")
        assert [e.tag for e in shelf.iter_descendants()] == ["book", "note", "book"]

    def test_ancestors(self, doc):
        note = doc.root.find("shelf").find("book").find("note")
        assert [a.tag for a in note.ancestors()] == ["book", "shelf", "lib"]

    def test_path(self, doc):
        note = doc.root.find("shelf").find("book").find("note")
        assert note.path() == ("lib", "shelf", "book", "note")

    def test_sibling_index(self, doc):
        shelves = doc.root.find_all("shelf")
        assert shelves[0].sibling_index() == 0
        assert shelves[1].sibling_index() == 1
        assert doc.root.sibling_index() == 0


class TestText:
    def test_mixed_content_order(self, doc):
        book = doc.root.find("shelf").find("book")
        assert book.text == "alphabetagamma"
        assert book.direct_text == "alphagamma"

    def test_itertext_pieces(self, doc):
        book = doc.root.find("shelf").find("book")
        assert list(book.itertext()) == ["alpha", "beta", "gamma"]

    def test_empty_element_text(self, doc):
        assert doc.root.find_all("shelf")[1].text == ""


class TestConstruction:
    def test_append_adopts(self):
        parent = Element("p")
        child = Element("c")
        parent.append(child)
        assert child.parent is parent

    def test_double_adoption_rejected(self):
        parent = Element("p")
        child = Element("c")
        parent.append(child)
        with pytest.raises(ValueError, match="already has a parent"):
            Element("q").append(child)

    def test_append_text_merges_adjacent(self):
        element = Element("e")
        element.append_text("a")
        element.append_text("b")
        assert len(element.children) == 1
        assert isinstance(element.children[0], Text)
        assert element.text == "ab"

    def test_make_child(self):
        parent = Element("p")
        child = parent.make_child("c", {"k": "v"})
        assert child.parent is parent
        assert parent.find("c") is child

    def test_count_elements(self, doc):
        assert doc.count_elements() == 6
