"""Deadline semantics: wall-clock, step budgets, forced exhaustion."""

import pytest

from repro.resilience.deadline import CLOCK_CHECK_INTERVAL, Deadline
from repro.resilience.errors import DeadlineExceeded


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWallClock:
    def test_trips_when_time_runs_out(self):
        clock = FakeClock()
        deadline = Deadline(timeout_s=1.0, clock=clock)
        deadline.check("site")  # well within budget
        clock.advance(1.5)
        with pytest.raises(DeadlineExceeded):
            # Drain the countdown so the clock is consulted again.
            for _ in range(CLOCK_CHECK_INTERVAL + 1):
                deadline.check("site")
        assert deadline.tripped

    def test_first_check_consults_clock_immediately(self):
        clock = FakeClock()
        deadline = Deadline(timeout_s=1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded):
            deadline.check("site")

    def test_clock_consulted_only_every_interval(self):
        calls = []

        class CountingClock(FakeClock):
            def __call__(self):
                calls.append(1)
                return self.now

        clock = CountingClock()
        deadline = Deadline(timeout_s=100.0, clock=clock)
        baseline = len(calls)  # construction reads the clock once
        for _ in range(CLOCK_CHECK_INTERVAL * 3):
            deadline.check("site")
        consultations = len(calls) - baseline
        assert consultations <= 4  # ~one per interval, not one per check

    def test_exception_carries_site_and_elapsed(self):
        clock = FakeClock()
        deadline = Deadline(timeout_s=0.5, clock=clock)
        clock.advance(0.75)
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("twig.twig_stack")
        assert info.value.site == "twig.twig_stack"
        assert info.value.elapsed_ms == pytest.approx(750.0)
        assert "twig.twig_stack" in str(info.value)

    def test_after_ms_constructor(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock)
        assert deadline.timeout_s == pytest.approx(0.25)
        clock.advance(0.3)
        with pytest.raises(DeadlineExceeded):
            deadline.check()


class TestStepBudget:
    def test_trips_after_max_steps(self):
        deadline = Deadline(max_steps=10)
        for _ in range(10):
            deadline.check("s")
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("s")
        assert info.value.steps == 11
        assert deadline.tripped

    def test_cost_charges_multiple_steps(self):
        deadline = Deadline(max_steps=10)
        deadline.check("s", cost=10)
        with pytest.raises(DeadlineExceeded):
            deadline.check("s", cost=5)

    def test_once_tripped_every_check_raises(self):
        deadline = Deadline(max_steps=1)
        deadline.check("s")
        with pytest.raises(DeadlineExceeded):
            deadline.check("s")
        with pytest.raises(DeadlineExceeded):
            deadline.check("s")


class TestUnlimitedAndForced:
    def test_unlimited_never_trips(self):
        deadline = Deadline.none()
        for _ in range(CLOCK_CHECK_INTERVAL * 4):
            deadline.check("s")
        assert not deadline.tripped
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_exhaust_forces_next_check_to_raise(self):
        deadline = Deadline.none()
        deadline.check("s")
        deadline.exhaust()
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded):
            deadline.check("s")
        assert deadline.tripped


class TestIntrospection:
    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(timeout_s=1.0, clock=clock)
        clock.advance(0.4)
        assert deadline.elapsed() == pytest.approx(0.4)
        assert deadline.remaining() == pytest.approx(0.6)
        clock.advance(1.0)
        assert deadline.remaining() == 0.0

    def test_expired_does_not_raise(self):
        clock = FakeClock()
        deadline = Deadline(timeout_s=0.1, clock=clock)
        assert not deadline.expired()
        clock.advance(0.2)
        assert deadline.expired()
        assert not deadline.tripped  # expired() observes, never raises

    def test_near_signals_low_budget(self):
        clock = FakeClock()
        deadline = Deadline(timeout_s=1.0, clock=clock)
        assert not deadline.near()
        clock.advance(0.8)  # 20% left < default 25% threshold
        assert deadline.near()

    def test_near_is_false_without_wall_limit(self):
        deadline = Deadline(max_steps=100)
        assert not deadline.near()
        deadline.exhaust()
        assert deadline.near()

    def test_repr_mentions_limits(self):
        deadline = Deadline(timeout_s=0.05, max_steps=7)
        text = repr(deadline)
        assert "50ms" in text and "max_steps=7" in text
