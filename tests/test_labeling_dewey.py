"""Dewey label semantics."""

import pytest

from repro.labeling.dewey import Dewey


class TestConstruction:
    def test_root_is_empty(self):
        assert Dewey().components == ()
        assert Dewey().level == 0

    def test_child_extends(self):
        assert Dewey().child(1).child(3).components == (1, 3)

    def test_parse_and_str_roundtrip(self):
        for text in ["", "1", "1.3.2", "10.20"]:
            assert str(Dewey.parse(text)) == text

    def test_zero_component_rejected(self):
        with pytest.raises(ValueError):
            Dewey((0,))

    def test_immutable(self):
        label = Dewey((1, 2))
        with pytest.raises(AttributeError):
            label.components = (9,)


class TestStructure:
    def test_parent(self):
        assert Dewey((1, 2, 3)).parent() == Dewey((1, 2))

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            Dewey().parent()

    def test_ancestor_is_proper_prefix(self):
        a, d = Dewey((1,)), Dewey((1, 2, 3))
        assert a.is_ancestor_of(d)
        assert not d.is_ancestor_of(a)
        assert not a.is_ancestor_of(a)

    def test_parent_of(self):
        assert Dewey((1, 2)).is_parent_of(Dewey((1, 2, 5)))
        assert not Dewey((1,)).is_parent_of(Dewey((1, 2, 5)))

    def test_root_is_ancestor_of_everything(self):
        assert Dewey().is_ancestor_of(Dewey((4, 4)))

    def test_lca(self):
        assert Dewey((1, 2, 3)).lca(Dewey((1, 2, 7, 1))) == Dewey((1, 2))
        assert Dewey((1,)).lca(Dewey((2,))) == Dewey()
        assert Dewey((1, 2)).lca(Dewey((1, 2))) == Dewey((1, 2))

    def test_sibling_ordinal(self):
        assert Dewey((3, 7)).sibling_ordinal() == 7
        assert Dewey().sibling_ordinal() == 0


class TestOrdering:
    def test_document_order(self):
        labels = [Dewey((2,)), Dewey((1, 2)), Dewey((1,)), Dewey()]
        assert sorted(labels) == [Dewey(), Dewey((1,)), Dewey((1, 2)), Dewey((2,))]

    def test_ancestor_sorts_before_descendant(self):
        assert Dewey((1,)) < Dewey((1, 1))

    def test_hashable(self):
        assert len({Dewey((1,)), Dewey((1,)), Dewey((2,))}) == 2

    def test_equality_against_other_types(self):
        assert Dewey((1,)) != (1,)
