"""Benchmark support helpers."""

from repro.bench.harness import format_table, speedup, time_call
from repro.bench.workloads import (
    BLOWUP_QUERIES,
    DBLP_QUERIES,
    ORDERED_QUERIES,
    XMARK_QUERIES,
    queries_by_class,
)


class TestHarness:
    def test_time_call_measures(self):
        elapsed = time_call(lambda: sum(range(1000)), repeats=3)
        assert elapsed >= 0.0

    def test_format_table_aligns(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 2.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows padded to same width

    def test_speedup_format(self):
        assert speedup(10.0, 2.0) == "5.0x"
        assert speedup(1.0, 0.0) == "inf"


class TestWorkloads:
    def test_all_queries_parse(self, dblp_db, xmark_db):
        for query in DBLP_QUERIES + ORDERED_QUERIES:
            assert query.pattern().size >= 1
        for query in XMARK_QUERIES + BLOWUP_QUERIES:
            assert query.pattern().size >= 1

    def test_dblp_queries_have_answers(self, dblp_db):
        for query in DBLP_QUERIES:
            assert dblp_db.matches(query.text), query.name

    def test_xmark_queries_have_answers(self, xmark_db):
        for query in XMARK_QUERIES + BLOWUP_QUERIES:
            assert xmark_db.matches(query.text), query.name

    def test_query_classes_partition(self):
        classes = {q.query_class for q in DBLP_QUERIES + XMARK_QUERIES}
        assert classes == {"path", "flat-twig", "deep-twig"}
        assert queries_by_class(DBLP_QUERIES, "path")
