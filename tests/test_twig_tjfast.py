"""TJFast: leaf-streams-only twig matching."""

import pytest

from repro.index.element_index import StreamFactory
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.tjfast import tjfast_match
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import sort_matches
from repro.twig.parse import parse_twig
from repro.xmlio.builder import parse_string

XML = (
    "<dblp>"
    "<article><title>twig joins</title><author>lu</author><author>ling</author>"
    "<year>2002</year></article>"
    "<article><title>xml search</title><author>lin</author><year>2011</year></article>"
    "<book><editor><author>lu</author></editor><title>xml data</title>"
    "<year>2009</year></book>"
    "</dblp>"
)


@pytest.fixture(scope="module")
def ctx():
    labeled = label_document(parse_string(XML))
    term_index = TermIndex(labeled)
    return labeled, term_index, StreamFactory(labeled, term_index)


def run(ctx, query, stats=None):
    labeled, term_index, factory = ctx
    pattern = parse_twig(query)
    streams = build_streams(pattern, factory)
    matches = sort_matches(tjfast_match(pattern, streams, term_index, stats))
    oracle = sort_matches(naive_match(pattern, labeled, term_index))
    assert matches == oracle, query
    return pattern, matches


class TestCorrectness:
    @pytest.mark.parametrize(
        "query",
        [
            "//article/author",
            "//dblp//author",
            "//book//author",
            "//dblp/book/editor/author",
            '//article[./title~"twig"]/year',
            '//article[./author="lu"][./author="ling"]',
            "//*[./author][./year]",
            "//title",
            "/dblp/article",
            "ordered://article[./title][./author]",
            "//nosuchtag",
        ],
    )
    def test_agrees_with_oracle(self, ctx, query):
        run(ctx, query)

    def test_internal_predicate_checked(self, ctx):
        # Predicate on an *internal* node: TJFast must evaluate it on the
        # derived ancestor, not skip it.
        _, matches = run(ctx, '//article[.~"2002"]/author')
        assert len(matches) == 2

    def test_wildcard_internal_nodes(self, ctx):
        _, matches = run(ctx, "//dblp/*/author")
        assert len(matches) == 3

    def test_multiple_embeddings_per_leaf(self, ctx):
        # //dblp//*//author: the * can bind several ancestors per author.
        run(ctx, "//*//author")


class TestLeafOnlyScanning:
    def test_scans_only_leaf_streams(self, ctx):
        labeled, term_index, factory = ctx
        pattern = parse_twig("//dblp[./article/author][./book]")
        streams = build_streams(pattern, factory)
        stats = AlgorithmStats()
        tjfast_match(pattern, streams, term_index, stats)
        # Leaves are author (4 elements) and book (1); internal streams
        # (dblp: 1, article: 2) are never touched.
        assert stats.elements_scanned == 5

    def test_fewer_elements_than_twig_stack_on_internal_heavy_twig(self, ctx):
        labeled, term_index, factory = ctx
        pattern = parse_twig("//dblp[.//title][.//booktitle]")
        streams = build_streams(pattern, factory)
        tj_stats = AlgorithmStats()
        ts_stats = AlgorithmStats()
        tjfast_match(pattern, streams, term_index, tj_stats)
        twig_stack_match(pattern, streams, ts_stats)
        assert tj_stats.elements_scanned <= ts_stats.elements_scanned

    def test_stats_matches_counter(self, ctx):
        stats = AlgorithmStats()
        _, matches = run(ctx, "//article/author", stats)
        assert stats.matches == len(matches) == 3
        assert stats.intermediate_results >= len(matches)


class TestPlannerIntegration:
    def test_selectable_via_planner(self, small_db):
        from repro.twig.planner import Algorithm

        matches = small_db.matches("//article/author", Algorithm.TJFAST)
        assert len(matches) == 3
