"""Tree building and file parsing (including encoding sniffing)."""

import pytest

from repro.xmlio.builder import TreeBuilder, parse_file, parse_string
from repro.xmlio.errors import XMLWellFormednessError
from repro.xmlio.parser import PullParser


class TestTreeBuilder:
    def test_incremental_feeding(self):
        builder = TreeBuilder("test")
        builder.feed_all(PullParser("<a><b>hi</b></a>"))
        document = builder.finish()
        assert document.root.find("b").text == "hi"
        assert document.source_name == "test"

    def test_finish_without_root_raises(self):
        with pytest.raises(XMLWellFormednessError, match="no root"):
            TreeBuilder().finish()

    def test_declaration_metadata_captured(self):
        document = parse_string('<?xml version="1.1" encoding="ascii"?><a/>')
        assert document.version == "1.1"
        assert document.encoding == "ascii"


class TestParseFileEncodings:
    def test_utf8_default(self, tmp_path):
        path = tmp_path / "utf8.xml"
        path.write_text("<r><a>héllo</a></r>", encoding="utf-8")
        assert parse_file(path).root.find("a").text == "héllo"

    def test_declared_latin1(self, tmp_path):
        path = tmp_path / "latin1.xml"
        path.write_bytes(
            '<?xml version="1.0" encoding="iso-8859-1"?><r><a>héllo</a></r>'.encode(
                "iso-8859-1"
            )
        )
        assert parse_file(path).root.find("a").text == "héllo"

    def test_declared_latin1_single_quotes(self, tmp_path):
        path = tmp_path / "latin1b.xml"
        path.write_bytes(
            "<?xml version='1.0' encoding='latin-1'?><r>café</r>".encode("latin-1")
        )
        assert parse_file(path).root.text == "café"

    def test_explicit_encoding_overrides_sniffing(self, tmp_path):
        path = tmp_path / "forced.xml"
        path.write_bytes("<r>héllo</r>".encode("iso-8859-1"))
        assert parse_file(path, encoding="iso-8859-1").root.text == "héllo"

    def test_utf8_bom_stripped(self, tmp_path):
        path = tmp_path / "bom.xml"
        path.write_bytes("﻿<r><a>x</a></r>".encode("utf-8"))
        assert parse_file(path).root.find("a").text == "x"

    def test_utf16_bom(self, tmp_path):
        path = tmp_path / "utf16.xml"
        path.write_bytes("<r>héllo</r>".encode("utf-16"))  # emits a BOM
        assert parse_file(path).root.text == "héllo"

    def test_source_name_recorded(self, tmp_path):
        path = tmp_path / "named.xml"
        path.write_text("<r/>", encoding="utf-8")
        assert parse_file(path).source_name.endswith("named.xml")
