"""The lotusx command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "corpus.xml"
    exit_code = main(
        ["generate", "dblp", "--size", "30", "--seed", "4", "-o", str(path)]
    )
    assert exit_code == 0
    return str(path)


class TestGenerate:
    def test_stdout_output(self, capsys):
        assert main(["generate", "books", "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<catalog>")

    def test_unknown_dataset_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["generate", "mystery"])


class TestStats:
    def test_prints_key_figures(self, corpus, capsys):
        assert main(["stats", corpus]) == 0
        out = capsys.readouterr().out
        assert "element_count" in out
        assert "distinct_paths" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["stats", "/nonexistent.xml"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSearch:
    def test_human_output(self, corpus, capsys):
        assert main(["search", corpus, "//article/author", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "/dblp[1]/" in out

    def test_json_output(self, corpus, capsys):
        assert main(["search", corpus, "//article/title", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["results"]

    def test_bad_query_is_error(self, corpus, capsys):
        assert main(["search", corpus, "//a[["]) == 1
        assert "error:" in capsys.readouterr().err

    def test_algorithm_flag(self, corpus, capsys):
        assert (
            main(["search", corpus, "//article/author", "--algorithm", "naive"]) == 0
        )

    def test_no_rewrite_flag(self, corpus, capsys):
        assert main(["search", corpus, "//article/zzzz", "--no-rewrite"]) == 0
        assert "0 matches" in capsys.readouterr().out


class TestComplete:
    def test_tag_completion(self, corpus, capsys):
        assert main(["complete", corpus, "--query", "//article", "--prefix", "t"]) == 0
        assert "title" in capsys.readouterr().out

    def test_first_node_completion(self, corpus, capsys):
        assert main(["complete", corpus, "--prefix", "a"]) == 0
        assert "article" in capsys.readouterr().out

    def test_value_completion(self, corpus, capsys):
        assert (
            main(
                [
                    "complete",
                    corpus,
                    "--query",
                    "//article/year",
                    "--node",
                    "1",
                    "--values",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.strip()  # some year values proposed


class TestKeyword:
    def test_keyword_search(self, corpus, capsys):
        assert main(["keyword", corpus, "xml twig", "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "answers for terms" in out

    def test_keyword_elca_semantics(self, corpus, capsys):
        assert (
            main(["keyword", corpus, "xml", "--semantics", "elca", "-k", "2"]) == 0
        )

    def test_bad_semantics_rejected(self, corpus):
        with pytest.raises(SystemExit):
            main(["keyword", corpus, "xml", "--semantics", "bogus"])


class TestSchemaAndProfile:
    def test_schema_prints_dtd(self, corpus, capsys):
        assert main(["schema", corpus]) == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT dblp" in out
        assert "#PCDATA" in out

    def test_profile_prints_all_algorithms(self, corpus, capsys):
        assert main(["profile", corpus, "//article[./author]/title"]) == 0
        out = capsys.readouterr().out
        for name in ("structural-join", "twig-stack", "tjfast"):
            assert name in out

    def test_profile_path_query_includes_pathstack(self, corpus, capsys):
        assert main(["profile", corpus, "//article/author"]) == 0
        assert "path-stack" in capsys.readouterr().out


class TestExamplesAndSamples:
    def test_examples_lists_starter_queries(self, corpus, capsys):
        assert main(["examples", corpus, "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("--") >= 3
        assert "//" in out

    def test_samples_prints_match_counts(self, corpus, capsys):
        assert main(["samples", corpus, "--count", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert all("matches" in line for line in out)

    def test_samples_deterministic(self, corpus, capsys):
        main(["samples", corpus, "--count", "2", "--seed", "5"])
        first = capsys.readouterr().out
        main(["samples", corpus, "--count", "2", "--seed", "5"])
        assert capsys.readouterr().out == first


class TestGlobalFlags:
    def test_expand_attributes_flag(self, corpus, capsys):
        assert (
            main(["--expand-attributes", "search", corpus, "//article/@key", "-k", "2"])
            == 0
        )
        assert "@key" in capsys.readouterr().out

    def test_generate_treebank(self, capsys):
        assert main(["generate", "treebank", "--size", "3"]) == 0
        assert capsys.readouterr().out.startswith("<treebank>")


class TestExplainAndSave:
    def test_explain(self, corpus, capsys):
        assert main(["explain", corpus, "//article/author"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["algorithm"] == "path-stack"

    def test_save(self, corpus, capsys, tmp_path):
        target = tmp_path / "store"
        assert main(["save", corpus, str(target)]) == 0
        assert (target / "manifest.json").exists()


class TestServeWritableFlags:
    """`serve --writable` flag validation fails fast, before binding."""

    def test_wal_without_writable_is_error(self, corpus, capsys):
        assert main(["serve", corpus, "--wal", "/tmp/x.lxwal"]) == 1
        assert "--wal requires --writable" in capsys.readouterr().err

    def test_writable_rejects_sharded_serving(self, corpus, capsys):
        assert main(["serve", corpus, "--writable", "--shards", "2"]) == 1
        assert "monolithic" in capsys.readouterr().err

    def test_writable_rejects_replicas(self, corpus, capsys):
        assert main(["serve", corpus, "--writable", "--replicas", "2"]) == 1
        assert "--replicas" in capsys.readouterr().err

    def test_writable_rejects_expand_attributes(self, corpus, capsys):
        code = main(["--expand-attributes", "serve", corpus, "--writable"])
        assert code == 1
        assert "--expand-attributes" in capsys.readouterr().err


class TestCorpusSpec:
    """`--corpus NAME=PATH[,OPT=VAL...]` decoding."""

    def test_bare_spec(self):
        from repro.cli import _parse_corpus_spec

        name, path, options = _parse_corpus_spec("dblp=data/dblp.xml")
        assert (name, path) == ("dblp", "data/dblp.xml")
        assert options == {
            "quota": None, "shards": 1, "writable": False, "wal": None
        }

    def test_all_options(self):
        from repro.cli import _parse_corpus_spec

        _, path, options = _parse_corpus_spec(
            "a=a.xml,quota=2,shards=3"
        )
        assert path == "a.xml"
        assert options["quota"] == 2
        assert options["shards"] == 3

    def test_writable_and_wal(self):
        from repro.cli import _parse_corpus_spec

        _, _, options = _parse_corpus_spec("a=a.xml,writable=1,wal=w.lxwal")
        assert options["writable"] is True
        assert options["wal"] == "w.lxwal"
        _, _, options = _parse_corpus_spec("a=a.xml,writable=0")
        assert options["writable"] is False

    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("nopath", "NAME=PATH"),
            ("=x.xml", "NAME=PATH"),
            ("a=", "NAME=PATH"),
            ("a=a.xml,color=red", "unknown option"),
            ("a=a.xml,quota=0", "quota must be at least 1"),
            ("a=a.xml,shards=0", "shards must be at least 1"),
            ("a=a.xml,writable=1,shards=2", "cannot shard"),
        ],
    )
    def test_bad_specs_are_rejected(self, spec, fragment):
        from repro.cli import _parse_corpus_spec

        with pytest.raises(ValueError, match=fragment):
            _parse_corpus_spec(spec)


class TestServeTenantFlags:
    """Multi-tenant serve flag validation fails fast, before loading."""

    def test_default_tenant_requires_corpus(self, corpus, capsys):
        code = main(["serve", corpus, "--default-tenant", "a"])
        assert code == 1
        assert "require --corpus" in capsys.readouterr().err

    def test_tenant_admin_requires_corpus(self, corpus, capsys):
        assert main(["serve", corpus, "--tenant-admin"]) == 1
        assert "require --corpus" in capsys.readouterr().err

    def test_corpus_excludes_positional(self, corpus, capsys):
        code = main(["serve", corpus, "--corpus", f"a={corpus}"])
        assert code == 1
        assert "cannot be combined" in capsys.readouterr().err

    def test_corpus_excludes_snapshot(self, corpus, capsys):
        code = main(
            ["serve", "--corpus", f"a={corpus}", "--snapshot", "/tmp/s"]
        )
        assert code == 1
        assert "cannot be combined" in capsys.readouterr().err

    def test_corpus_excludes_top_level_writable(self, corpus, capsys):
        code = main(["serve", "--corpus", f"a={corpus}", "--writable"])
        assert code == 1
        assert "writable=1" in capsys.readouterr().err

    def test_default_tenant_must_name_a_corpus(self, corpus, capsys):
        code = main(
            [
                "serve",
                "--corpus",
                f"a={corpus}",
                "--default-tenant",
                "missing",
            ]
        )
        assert code == 1
        assert "not a --corpus" in capsys.readouterr().err


class TestTenantSubcommand:
    """`lotusx tenant ...` against a live multi-tenant server."""

    @pytest.fixture()
    def live_server(self, corpus):
        import threading

        from repro.server.aio import make_async_server
        from repro.server.reload import DatabaseHolder, ReloadSource
        from repro.tenant.registry import TenantRegistry

        registry = TenantRegistry()
        source = ReloadSource("xml", corpus)
        registry.add(
            "dblp", holder=DatabaseHolder(source.build(), source, label="dblp")
        )
        server = make_async_server(registry)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            thread.join(timeout=5)
            server.server_close()

    def test_list_prints_the_table(self, live_server, capsys):
        assert main(["tenant", "list", "--url", live_server]) == 0
        out = capsys.readouterr().out
        assert "*dblp" in out  # the default marker hugs the name column
        assert "(* = default; admin off)" in out

    def test_reload_reports_the_new_generation(self, live_server, capsys):
        code = main(["tenant", "reload", "dblp", "--url", live_server])
        assert code == 0
        out = capsys.readouterr().out
        assert "reloaded tenant dblp: generation 2" in out

    def test_add_against_admin_off_server_fails(
        self, live_server, corpus, capsys
    ):
        code = main(["tenant", "add", "extra", corpus, "--url", live_server])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_reload_unknown_tenant_fails(self, live_server, capsys):
        code = main(["tenant", "reload", "ghost", "--url", live_server])
        assert code == 1
        assert "unknown_tenant" in capsys.readouterr().err
