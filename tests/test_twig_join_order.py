"""Structural-join edge ordering."""

import pytest

from repro.twig.algorithms.common import AlgorithmStats, build_streams
from repro.twig.algorithms.structural_join import _edge_plan, structural_join_match
from repro.twig.match import sort_matches
from repro.twig.parse import parse_twig


class TestEdgePlan:
    def test_preorder_plan(self, small_db):
        pattern = parse_twig("//article[./title][./author]/year")
        streams = build_streams(pattern, small_db.streams)
        plan = _edge_plan(pattern, streams, reorder=False)
        assert [(p.display_tag, c.display_tag) for p, c in plan] == [
            ("article", "title"),
            ("article", "author"),
            ("article", "year"),
        ]

    def test_greedy_plan_prefers_small_streams(self, small_db):
        # journal (2 elements) should join before author (9 elements).
        pattern = parse_twig("//article[./author][./journal]")
        streams = build_streams(pattern, small_db.streams)
        plan = _edge_plan(pattern, streams, reorder=True)
        assert [c.display_tag for _, c in plan] == ["journal", "author"]

    def test_greedy_plan_respects_connectivity(self, small_db):
        # editor/author chain: author can only join after editor, however
        # small its stream.
        pattern = parse_twig("//book[./editor/author][./title]")
        streams = build_streams(pattern, small_db.streams)
        plan = _edge_plan(pattern, streams, reorder=True)
        order = [c.display_tag for _, c in plan]
        assert order.index("editor") < order.index("author")

    def test_plans_cover_every_edge_once(self, small_db):
        pattern = parse_twig("//dblp[./article[./title]][./book[./editor]]")
        streams = build_streams(pattern, small_db.streams)
        for reorder in (False, True):
            plan = _edge_plan(pattern, streams, reorder)
            assert len(plan) == pattern.size - 1
            assert len({c.node_id for _, c in plan}) == pattern.size - 1


class TestReorderedEvaluation:
    @pytest.mark.parametrize(
        "query",
        [
            "//article[./author][./journal]/title",
            "//dblp[.//booktitle][.//publisher]",
            "//book[./editor/author][./year]",
            "//article/author",
        ],
    )
    def test_identical_answers(self, small_db, query):
        pattern = parse_twig(query)
        streams = build_streams(pattern, small_db.streams)
        plain = sort_matches(structural_join_match(pattern, streams))
        reordered = sort_matches(
            structural_join_match(pattern, streams, reorder=True)
        )
        assert plain == reordered

    def test_greedy_never_more_intermediates(self, dblp_db):
        for query in [
            '//article[./author][./journal="tods"]',
            "//inproceedings[./author][./booktitle]/title",
        ]:
            pattern = parse_twig(query)
            streams = build_streams(pattern, dblp_db.streams)
            plain_stats = AlgorithmStats()
            structural_join_match(pattern, streams, plain_stats)
            greedy_stats = AlgorithmStats()
            structural_join_match(pattern, streams, greedy_stats, reorder=True)
            assert (
                greedy_stats.intermediate_results
                <= plain_stats.intermediate_results
            )
