"""Synthetic dataset generators: determinism, schema shape, scaling."""

import pytest

from repro.datasets import (
    generate_books,
    generate_books_xml,
    generate_dblp,
    generate_dblp_xml,
    generate_xmark,
    generate_xmark_xml,
)
from repro.xmlio.builder import parse_string
from repro.xmlio.serializer import serialize


class TestDeterminism:
    @pytest.mark.parametrize(
        "generator", [generate_dblp_xml, generate_xmark_xml, generate_books_xml]
    )
    def test_same_seed_same_output(self, generator):
        assert generator(30, seed=5) == generator(30, seed=5)

    @pytest.mark.parametrize(
        "generator", [generate_dblp_xml, generate_xmark_xml, generate_books_xml]
    )
    def test_different_seed_different_output(self, generator):
        assert generator(30, seed=5) != generator(30, seed=6)


class TestDblp:
    def test_record_count(self):
        doc = generate_dblp(publications=40, seed=1)
        assert len(doc.root.child_elements()) == 40

    def test_schema_shape(self):
        doc = generate_dblp(publications=200, seed=1)
        kinds = {child.tag for child in doc.root.child_elements()}
        assert kinds == {"article", "inproceedings", "book", "phdthesis"}
        for record in doc.root.child_elements():
            assert record.find("title") is not None
            assert record.find("year") is not None
            assert "key" in record.attributes

    def test_author_pool_reused(self):
        doc = generate_dblp(publications=100, seed=1)
        authors = [e.text for e in doc.iter() if e.tag == "author"]
        assert len(set(authors)) < len(authors)  # names repeat

    def test_parses_as_valid_xml(self):
        xml = generate_dblp_xml(publications=25, seed=2)
        assert parse_string(xml).root.tag == "dblp"

    def test_zero_records(self):
        assert generate_dblp(publications=0).count_elements() == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_dblp(publications=-1)


class TestXmark:
    def test_schema_skeleton(self):
        doc = generate_xmark(items=20, seed=1)
        sections = [child.tag for child in doc.root.child_elements()]
        assert sections == [
            "regions",
            "people",
            "open_auctions",
            "closed_auctions",
            "categories",
        ]

    def test_items_distributed_in_regions(self):
        doc = generate_xmark(items=30, seed=1)
        items = [e for e in doc.iter() if e.tag == "item"]
        assert len(items) == 30
        assert all(e.path()[1] == "regions" for e in items)

    def test_deep_nesting_present(self):
        doc = generate_xmark(items=60, seed=1)
        depths = [len(e.path()) for e in doc.iter()]
        assert max(depths) >= 6  # e.g. site/regions/asia/item/description/parlist/...

    def test_auction_references_valid(self):
        doc = generate_xmark(items=20, seed=3)
        for e in doc.iter():
            if e.tag == "itemref":
                assert e.attributes["item"].startswith("item")

    def test_parses_as_valid_xml(self):
        xml = generate_xmark_xml(items=10, seed=2)
        assert parse_string(xml).root.tag == "site"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_xmark(items=-5)


class TestBooks:
    def test_record_shape(self):
        doc = generate_books(books=10, seed=1)
        for book in doc.root.child_elements():
            assert book.tag == "book"
            assert book.find("title") is not None
            assert book.find("price") is not None
            float(book.find("price").text)  # numeric

    def test_roundtrip(self):
        doc = generate_books(books=5, seed=1)
        assert serialize(parse_string(serialize(doc))) == serialize(doc)


class TestScaling:
    def test_dblp_element_count_scales_linearly(self):
        small = generate_dblp(publications=50, seed=9).count_elements()
        large = generate_dblp(publications=200, seed=9).count_elements()
        assert 3.0 < large / small < 5.0

    def test_xmark_element_count_scales_linearly(self):
        small = generate_xmark(items=25, seed=9).count_elements()
        large = generate_xmark(items=100, seed=9).count_elements()
        assert 2.5 < large / small < 5.0
