"""Columnar label streams: column/object parity, skip-pointer edge
cases, derived views, and the raw-bytes (de)serialization contract."""

from __future__ import annotations

import sys
from array import array

import pytest

from repro.datasets import generate_dblp
from repro.engine.database import LotusXDatabase
from repro.index.columnar import (
    COLUMNAR_FORMAT,
    INF_INT,
    ColumnarIndex,
    ColumnarStream,
    decode_columnar,
    encode_columnar,
)


@pytest.fixture(scope="module")
def db() -> LotusXDatabase:
    return LotusXDatabase(generate_dblp(publications=15, seed=5))


@pytest.fixture(scope="module")
def index(db) -> ColumnarIndex:
    return ColumnarIndex.from_labeled(db.labeled)


# ---------------------------------------------------------------------------
# Column / object parity
# ---------------------------------------------------------------------------


def test_from_elements_parity(db, index):
    for tag in sorted(db.labeled.tags()) + [None]:
        elements = db.labeled.elements if tag is None else db.labeled.stream(tag)
        stream = index.stream(tag)
        assert len(stream) == len(elements)
        for i, element in enumerate(elements):
            assert stream.starts[i] == element.region.start
            assert stream.ends[i] == element.region.end
            assert stream.levels[i] == element.region.level
            assert stream.path_ids[i] == element.path_node.node_id
            # Materialization returns the shared object, not a copy.
            assert stream.element(i) is element


def test_starts_strictly_increasing(index):
    for tag in sorted(index.tags()) + [None]:
        starts = index.stream(tag).starts
        assert all(a < b for a, b in zip(starts, starts[1:]))


def test_unknown_tag_is_empty(index):
    stream = index.stream("no-such-tag")
    assert len(stream) == 0
    assert stream.seek_ge(0, 0) == 0


# ---------------------------------------------------------------------------
# seek_ge (the skip pointer)
# ---------------------------------------------------------------------------


def _reference_seek(starts, lo, value):
    for i in range(max(lo, 0), len(starts)):
        if starts[i] >= value:
            return i
    return len(starts)


def test_seek_ge_matches_linear_scan(index):
    stream = index.stream(None)
    starts = stream.starts
    n = len(starts)
    probes = {0, 1, INF_INT, starts[0], starts[-1], starts[-1] + 1}
    for s in starts[:: max(1, n // 17)]:
        probes.update((s - 1, s, s + 1))
    for lo in [0, 1, n // 3, n - 1, n, n + 5]:
        for value in sorted(probes):
            assert stream.seek_ge(lo, value) == _reference_seek(
                starts, lo, value
            ), f"lo={lo} value={value}"


def test_seek_ge_exhausted_cursor(index):
    stream = index.stream(None)
    n = len(stream)
    assert stream.seek_ge(n, 0) == n
    assert stream.seek_ge(n + 10, 0) == n
    assert stream.seek_ge(0, INF_INT) == n


def test_seek_ge_never_moves_backwards(index):
    stream = index.stream(None)
    lo = len(stream) // 2
    # A value already behind the cursor answers at the cursor itself.
    assert stream.seek_ge(lo, 0) == lo
    assert stream.seek_ge(lo, stream.starts[lo]) == lo


# ---------------------------------------------------------------------------
# Derived views
# ---------------------------------------------------------------------------


def test_where_matches_manual_filter(db, index):
    keep = lambda el: el.region.level == 2  # noqa: E731
    filtered = index.stream(None).where(keep)
    expected = [el for el in db.labeled.elements if keep(el)]
    assert filtered.elements == expected
    assert list(filtered.starts) == [el.region.start for el in expected]
    assert list(filtered.levels) == [el.region.level for el in expected]


def test_take_preserves_column_alignment(index):
    stream = index.stream(None)
    indices = list(range(0, len(stream), 3))
    taken = stream.take(indices)
    assert len(taken) == len(indices)
    for out_pos, in_pos in enumerate(indices):
        assert taken.starts[out_pos] == stream.starts[in_pos]
        assert taken.ends[out_pos] == stream.ends[in_pos]
        assert taken.path_ids[out_pos] == stream.path_ids[in_pos]
        assert taken.element(out_pos) is stream.element(in_pos)


# ---------------------------------------------------------------------------
# Raw-bytes (de)serialization
# ---------------------------------------------------------------------------


def _streams_equal(a: ColumnarStream, b: ColumnarStream) -> bool:
    return (
        a.starts == b.starts
        and a.ends == b.ends
        and a.levels == b.levels
        and a.path_ids == b.path_ids
        and list(a.elements) == list(b.elements)
    )


def test_encode_decode_round_trip(db, index):
    decoded = decode_columnar(encode_columnar(index), db.labeled)
    assert decoded is not None
    assert decoded.tags() == index.tags()
    for tag in sorted(index.tags()) + [None]:
        assert _streams_equal(decoded.stream(tag), index.stream(tag))


def test_decode_foreign_byteorder_round_trips(db, index):
    """A payload written on the opposite-endian platform (bytes swapped,
    byteorder label flipped) decodes to identical values."""

    def swap(blob: bytes) -> bytes:
        column = array("q")
        column.frombytes(blob)
        column.byteswap()
        return column.tobytes()

    payload = encode_columnar(index)
    payload["byteorder"] = "big" if sys.byteorder == "little" else "little"
    payload["tags"] = {
        tag: tuple(swap(blob) for blob in blobs)
        for tag, blobs in payload["tags"].items()
    }
    payload["all"] = tuple(swap(blob) for blob in payload["all"])
    decoded = decode_columnar(payload, db.labeled)
    assert decoded is not None
    for tag in sorted(index.tags()) + [None]:
        assert _streams_equal(decoded.stream(tag), index.stream(tag))


def test_decode_unmappable_layout_returns_none(db, index):
    """Layouts this platform cannot map — wrong format tag, typecode, or
    itemsize — decode to None (the caller rebuilds from labels)."""
    for mutation in (
        {"format": COLUMNAR_FORMAT + 1},
        {"typecode": "l"},
        {"itemsize": 4},
    ):
        payload = encode_columnar(index)
        payload.update(mutation)
        assert decode_columnar(payload, db.labeled) is None, mutation


def test_decode_inconsistent_payload_raises(db, index):
    other = LotusXDatabase(generate_dblp(publications=4, seed=99))
    # Row counts disagree with the label store.
    with pytest.raises(ValueError):
        decode_columnar(encode_columnar(index), other.labeled)
    # Tag sets disagree with the label store.
    payload = encode_columnar(index)
    payload["tags"] = dict(list(payload["tags"].items())[:-1])
    with pytest.raises(ValueError):
        decode_columnar(payload, db.labeled)
    # Not a mapping at all.
    with pytest.raises(ValueError):
        decode_columnar([], db.labeled)
