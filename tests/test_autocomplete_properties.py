"""Property-based tests linking completion context to actual matching.

The contract of :func:`candidate_positions` is a one-sided bound (see its
module docstring): every element a real match binds sits at a kept
position (completeness — completion never hides a valid candidate), but
kept positions may be unused because the DataGuide cannot see
co-occurrence within single elements.  We verify the completeness
direction, and the corresponding direction of :func:`is_satisfiable`,
against the naive matcher on random documents and patterns.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autocomplete.context import candidate_positions, is_satisfiable
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.algorithms.naive import naive_match
from repro.twig.pattern import Axis, TwigPattern
from repro.xmlio.tree import Document, Element

TAGS = ["a", "b", "c"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(1, 20))
    root = Element("r")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        pool.append(parent.make_child(rng.choice(TAGS)))
        if len(pool) > 5:
            pool.pop(0)
    return Document(root)


@st.composite
def patterns(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    pattern = TwigPattern(rng.choice(TAGS + ["r", None]))
    nodes = [pattern.root]
    for _ in range(draw(st.integers(0, 4))):
        parent = rng.choice(nodes)
        axis = Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT
        nodes.append(pattern.add_child(parent, rng.choice(TAGS + [None]), axis))
    return pattern


@given(documents(), patterns())
@settings(max_examples=200, deadline=None)
def test_positions_cover_every_match_binding(document, pattern):
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    matches = naive_match(pattern, labeled, term_index)
    positions = candidate_positions(pattern, labeled.guide)

    # Completeness: every element a real match binds sits at a kept
    # position (kept ⊇ used); the reverse does not hold in general — the
    # DataGuide over-approximates co-occurrence.
    used: dict[int, set[int]] = {node.node_id: set() for node in pattern.nodes()}
    for match in matches:
        for node in pattern.nodes():
            bound = match.element(node.node_id)
            assert bound.path_node in positions[node.node_id]
            used[node.node_id].add(bound.path_node.node_id)
    for node in pattern.nodes():
        kept = {p.node_id for p in positions[node.node_id]}
        assert kept >= used[node.node_id]


@given(documents(), patterns())
@settings(max_examples=200, deadline=None)
def test_positions_exact_for_path_patterns(document, pattern):
    """On *linear* patterns the guide bound is exact: no branching means
    no co-occurrence to lose, so every kept position is used."""
    if not pattern.is_path():
        return
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    matches = naive_match(pattern, labeled, term_index)
    positions = candidate_positions(pattern, labeled.guide)
    used: dict[int, set[int]] = {node.node_id: set() for node in pattern.nodes()}
    for match in matches:
        for node in pattern.nodes():
            used[node.node_id].add(match.element(node.node_id).path_node.node_id)
    for node in pattern.nodes():
        kept = {p.node_id for p in positions[node.node_id]}
        assert kept == used[node.node_id]


@given(documents(), patterns())
@settings(max_examples=150, deadline=None)
def test_matches_imply_satisfiable(document, pattern):
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    if naive_match(pattern, labeled, term_index, limit=1):
        assert is_satisfiable(pattern, labeled.guide)
