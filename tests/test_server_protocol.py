"""Protocol-level tests of the event-driven transport, on raw sockets.

Everything here speaks bytes to the server — no ``urllib`` — because the
subjects are the HTTP mechanics themselves: keep-alive sequencing,
``Connection: close``, malformed requests answered (not hung), oversized
bodies refused without being read, slow-loris connections dropped
without leaking tasks, autocomplete keystroke batching, and the
connection cap.  Per-server state sharing under both transports rides
along at the bottom.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import weakref

import pytest

from repro.server.aio import make_async_server
from repro.server.app import make_server
from repro.server.pipeline import ServerConfig


@pytest.fixture
def async_server(small_db):
    """A factory for running async servers with custom configs."""
    started = []

    def start(config: ServerConfig | None = None):
        server = make_async_server(small_db, config=config)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        return server

    yield start
    for server, thread in started:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()
        assert not thread.is_alive()


def connect(server) -> socket.socket:
    sock = socket.create_connection(server.server_address, timeout=5)
    sock.settimeout(5)
    return sock


def raw_post(path: str, payload: dict, extra_headers: str = "") -> bytes:
    body = json.dumps(payload).encode()
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: test\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra_headers}"
        f"\r\n"
    ).encode() + body


#: Bytes received past the end of a parsed response, per socket —
#: pipelined responses often share a TCP segment, so a recv for one
#: response may pull in the start (or all) of the next.
_pending: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def read_response(sock: socket.socket) -> tuple[int, dict[str, str], bytes]:
    """Read exactly one Content-Length-framed response off the socket."""
    buffer = _pending.pop(sock, b"")
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        assert chunk, f"connection closed mid-response: {buffer!r}"
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.lower()] = value.strip()
    length = int(headers["content-length"])
    while len(rest) < length:
        chunk = sock.recv(65536)
        assert chunk, "connection closed mid-body"
        rest += chunk
    _pending[sock] = rest[length:]
    return status, headers, rest[:length]


def assert_closed(sock: socket.socket) -> None:
    """The peer must close: recv yields EOF, not a hang or data."""
    assert _pending.pop(sock, b"") == b""
    assert sock.recv(1024) == b""


class TestKeepAlive:
    def test_request_sequence_on_one_socket(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            for k in (1, 2, 3):
                sock.sendall(
                    raw_post("/api/search", {"query": "//article/author", "k": k})
                )
                status, headers, body = read_response(sock)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert len(json.loads(body)["results"]) == min(k, 3)
        finally:
            sock.close()

    def test_mixed_get_and_post_interleave(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(b"GET /api/stats HTTP/1.1\r\nHost: test\r\n\r\n")
            status, _, body = read_response(sock)
            assert status == 200 and b"coalescing" in body
            sock.sendall(raw_post("/api/keyword", {"query": "twig"}))
            status, _, _ = read_response(sock)
            assert status == 200
        finally:
            sock.close()

    def test_connection_close_honored(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(
                raw_post(
                    "/api/keyword",
                    {"query": "twig"},
                    extra_headers="Connection: close\r\n",
                )
            )
            status, headers, _ = read_response(sock)
            assert status == 200
            assert headers["connection"] == "close"
            assert_closed(sock)
        finally:
            sock.close()

    def test_http10_defaults_to_close(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(b"GET /api/examples HTTP/1.0\r\nHost: test\r\n\r\n")
            status, headers, _ = read_response(sock)
            assert status == 200
            assert headers["connection"] == "close"
            assert_closed(sock)
        finally:
            sock.close()


class TestMalformedRequests:
    def test_malformed_request_line_is_400_not_hung(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(b"NOT A VALID REQUEST LINE AT ALL\r\n\r\n")
            status, _, body = read_response(sock)
            assert status == 400
            assert json.loads(body)["code"] == "bad_request"
            assert_closed(sock)
        finally:
            sock.close()

    def test_malformed_header_is_400(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(
                b"GET /api/stats HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"this header has no colon\r\n\r\n"
            )
            status, _, body = read_response(sock)
            assert status == 400
            assert json.loads(body)["code"] == "bad_request"
            assert_closed(sock)
        finally:
            sock.close()

    def test_bad_content_length_is_400(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(
                b"POST /api/search HTTP/1.1\r\nHost: test\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            status, _, body = read_response(sock)
            assert status == 400
            assert_closed(sock)
        finally:
            sock.close()

    def test_unknown_method_is_405(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(b"DELETE /api/stats HTTP/1.1\r\nHost: test\r\n\r\n")
            status, _, body = read_response(sock)
            assert status == 405
            assert json.loads(body)["code"] == "method_not_allowed"
        finally:
            sock.close()


class TestBodyLimits:
    def test_oversized_body_is_413_without_reading_it(self, async_server):
        server = async_server(ServerConfig(max_body_bytes=2048))
        sock = connect(server)
        try:
            # Declare a huge body but never send it: the 413 must come
            # back from the declared length alone.
            sock.sendall(
                b"POST /api/search HTTP/1.1\r\nHost: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 10000000\r\n\r\n"
            )
            status, _, body = read_response(sock)
            assert status == 413
            assert json.loads(body)["code"] == "payload_too_large"
            assert_closed(sock)  # body unread, stream unsyncable
        finally:
            sock.close()

    def test_header_section_cap(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            sock.sendall(
                b"GET /api/stats HTTP/1.1\r\n"
                + b"X-Padding: " + b"x" * 40_000 + b"\r\n"
            )
            status, _, _ = read_response(sock)
            assert status == 431
            assert_closed(sock)
        finally:
            sock.close()


class TestSlowLoris:
    def test_partial_header_hits_idle_timeout_without_leaking(
        self, async_server
    ):
        server = async_server(ServerConfig(idle_timeout_s=0.2))
        sock = connect(server)
        try:
            # Dribble a partial request line and then stall.
            sock.sendall(b"GET /api/sta")
            deadline = time.monotonic() + 5
            dropped = b"pending"
            while time.monotonic() < deadline:
                try:
                    dropped = sock.recv(1024)
                    break
                except TimeoutError:
                    break
            assert dropped == b""  # dropped outright, no response bytes
        finally:
            sock.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and server.open_connections:
            time.sleep(0.01)
        assert server.open_connections == 0  # no leaked task
        assert server.connections.snapshot()["idle_dropped"] == 1
        assert server.connections.snapshot()["active"] == 0

    def test_idle_keep_alive_connection_is_dropped(self, async_server):
        server = async_server(ServerConfig(idle_timeout_s=0.2))
        sock = connect(server)
        try:
            sock.sendall(b"GET /api/examples HTTP/1.1\r\nHost: test\r\n\r\n")
            status, _, _ = read_response(sock)
            assert status == 200
            assert_closed(sock)  # idle timeout closes it, no 4xx noise
        finally:
            sock.close()


class TestConnectionLimit:
    def test_excess_connections_get_429_and_close(self, async_server):
        server = async_server(ServerConfig(max_connections=2))
        first, second = connect(server), connect(server)
        try:
            # Make sure both are accepted and counted before the third.
            for sock in (first, second):
                sock.sendall(b"GET /api/examples HTTP/1.1\r\nHost: t\r\n\r\n")
                status, _, _ = read_response(sock)
                assert status == 200
            third = connect(server)
            try:
                status, headers, body = read_response(third)
                assert status == 429
                assert json.loads(body)["code"] == "overloaded"
                assert int(headers["retry-after"]) >= 1
                assert_closed(third)
            finally:
                third.close()
            assert server.connections.snapshot()["refused"] == 1
        finally:
            first.close()
            second.close()


class TestKeystrokeBatching:
    def test_older_buffered_keystrokes_are_superseded(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            # Three keystrokes of a typist racing ahead of the server,
            # pipelined into one TCP segment: "t", "tw", "twi".
            burst = b"".join(
                raw_post("/api/complete", {"prefix": prefix, "k": 5})
                for prefix in ("a", "au", "aut")
            )
            sock.sendall(burst)
            answers = [read_response(sock) for _ in range(3)]
            payloads = [json.loads(body) for _, _, body in answers]
            assert payloads[0].get("superseded") is True
            assert payloads[1].get("superseded") is True
            assert payloads[0]["candidates"] == []
            # Only the newest keystroke ran against the engine.
            assert "superseded" not in payloads[2]
            assert [c["text"] for c in payloads[2]["candidates"]] == ["author"]
        finally:
            sock.close()
        assert server.pipeline.superseded_keystrokes == 2
        assert server.pipeline.stats_block()["superseded_keystrokes"] == 2

    def test_sequential_keystrokes_all_answered(self, async_server):
        server = async_server()
        sock = connect(server)
        try:
            for prefix in ("t", "tw"):
                sock.sendall(raw_post("/api/complete", {"prefix": prefix}))
                _, _, body = read_response(sock)
                assert "superseded" not in json.loads(body)
        finally:
            sock.close()
        assert server.pipeline.superseded_keystrokes == 0


class TestPerServerState:
    """Regression for the gate-sharing fix: admission gate, flight
    table, and counters are per *server* (one pipeline each), never
    per handler class or process-global — under both transports."""

    def test_threaded_handler_class_shares_server_pipeline(self, small_db):
        server = make_server(small_db)
        try:
            handler_class = server.RequestHandlerClass
            assert handler_class.request_pipeline is server.pipeline
            assert handler_class.admission_gate is server.pipeline.gate
            assert handler_class.database_holder is server.pipeline.holder
        finally:
            server.server_close()

    def test_two_threaded_servers_do_not_share_state(self, small_db):
        one, two = make_server(small_db), make_server(small_db)
        try:
            assert one.pipeline is not two.pipeline
            assert one.pipeline.gate is not two.pipeline.gate
            assert one.pipeline.flights is not two.pipeline.flights
        finally:
            one.server_close()
            two.server_close()

    def test_counters_accrue_per_server_under_both_transports(
        self, small_db, async_server
    ):
        aio_one = async_server()
        aio_two = async_server()
        threaded = make_server(small_db)
        thread = threading.Thread(target=threaded.serve_forever, daemon=True)
        thread.start()
        try:
            servers = {
                "aio_one": aio_one,
                "aio_two": aio_two,
                "threaded": threaded,
            }
            # One coalesced-path request to exactly one server:
            sock = connect(aio_one)
            try:
                sock.sendall(raw_post("/api/keyword", {"query": "twig"}))
                status, _, _ = read_response(sock)
                assert status == 200
            finally:
                sock.close()
            flights = {
                name: server.pipeline.flights.flights
                for name, server in servers.items()
            }
            assert flights == {"aio_one": 1, "aio_two": 0, "threaded": 0}
            # And the same isolation the other way, via the threaded one:
            sock = connect(threaded)
            try:
                sock.sendall(
                    raw_post(
                        "/api/keyword",
                        {"query": "twig"},
                        extra_headers="Connection: close\r\n",
                    )
                )
                status, _, _ = read_response(sock)
                assert status == 200
            finally:
                sock.close()
            assert threaded.pipeline.flights.flights == 1
            assert aio_one.pipeline.flights.flights == 1  # unchanged
            assert aio_two.pipeline.flights.flights == 0
        finally:
            threaded.shutdown()
            threaded.server_close()
            thread.join(timeout=5)
