"""ELCA computation, with a brute-force oracle property."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.term_index import TermIndex
from repro.index.text import tokenize
from repro.keyword.elca import find_elcas
from repro.keyword.slca import find_slcas
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string
from repro.xmlio.tree import Document, Element

XML = (
    "<r>"
    "<sec>twig intro jiaheng overview"
    "<p>twig jiaheng detail</p><p>unrelated</p></sec>"
    "<sec><p>twig only here</p><p>jiaheng only here</p></sec>"
    "</r>"
)


@pytest.fixture(scope="module")
def ctx():
    labeled = label_document(parse_string(XML))
    return labeled, TermIndex(labeled)


class TestBasics:
    def test_elca_superset_of_slca(self, ctx):
        labeled, index = ctx
        slcas = {e.order for e in find_slcas(labeled, index, ["twig", "jiaheng"])}
        elcas = {e.order for e in find_elcas(labeled, index, ["twig", "jiaheng"])}
        assert slcas <= elcas

    def test_ancestor_with_own_evidence_included(self, ctx):
        labeled, index = ctx
        tags = [e.tag for e in find_elcas(labeled, index, ["twig", "jiaheng"])]
        # First sec carries its own "twig ... jiaheng" text besides the p;
        # second sec only *combines* its two p's — it is an (S)LCA there
        # because neither p qualifies alone.
        assert tags.count("sec") == 2
        assert tags.count("p") == 1

    def test_combining_ancestor_is_elca(self, ctx):
        labeled, index = ctx
        # "only" + "here": each p of the second sec qualifies alone.
        tags = [e.tag for e in find_elcas(labeled, index, ["only", "here"])]
        assert tags == ["p", "p"]

    def test_missing_term(self, ctx):
        labeled, index = ctx
        assert find_elcas(labeled, index, ["twig", "zzz"]) == []

    def test_empty_terms(self, ctx):
        labeled, index = ctx
        assert find_elcas(labeled, index, []) == []

    def test_document_order(self, ctx):
        labeled, index = ctx
        results = find_elcas(labeled, index, ["twig"])
        starts = [e.region.start for e in results]
        assert starts == sorted(starts)

    def test_search_integration(self):
        from repro.engine.database import LotusXDatabase

        db = LotusXDatabase.from_string(XML)
        slca = db.keyword_search("twig jiaheng", semantics="slca")
        elca = db.keyword_search("twig jiaheng", semantics="elca")
        assert elca.total_slcas > slca.total_slcas
        assert elca.semantics == "elca"
        with pytest.raises(ValueError, match="unknown keyword semantics"):
            db.keyword_search("twig", semantics="nope")


# ---------------------------------------------------------------------------
# Brute-force oracle
# ---------------------------------------------------------------------------

WORDS = ["ant", "bee", "cow"]
TAGS = ["p", "q"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(1, 18))
    root = Element("r")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        child = parent.make_child(rng.choice(TAGS))
        if rng.random() < 0.6:
            child.append_text(
                " ".join(rng.choice(WORDS) for _ in range(rng.randint(1, 2)))
            )
        pool.append(child)
        if len(pool) > 5:
            pool.pop(0)
    return Document(root)


def brute_force_elcas(labeled, terms):
    """Direct definition: v qualifies and, for every term, some occurrence
    under v is not inside any qualifying proper descendant of v."""

    def subtree_tokens(element):
        tokens = set()
        for node in element.element.iter():
            tokens.update(tokenize(node.direct_text))
        return tokens

    qualifying = {
        id(element.element): element
        for element in labeled.elements
        if set(terms) <= subtree_tokens(element)
    }

    def occurrences(term):
        return [
            element
            for element in labeled.elements
            if term in tokenize(element.element.direct_text)
        ]

    results = []
    for element in labeled.elements:
        if id(element.element) not in qualifying:
            continue
        is_elca = True
        for term in terms:
            witnessed = False
            for occurrence in occurrences(term):
                if not element.region.contains(occurrence.region):
                    continue
                blocked = any(
                    id(mid.element) in qualifying
                    for mid in _strictly_between(occurrence, element)
                )
                if not blocked:
                    witnessed = True
                    break
            if not witnessed:
                is_elca = False
                break
        if is_elca:
            results.append(element)
    return results


def _strictly_between(occurrence, ancestor):
    """Ancestor-or-self chain of ``occurrence`` strictly below ``ancestor``."""
    current = occurrence
    while current is not None and current is not ancestor:
        yield current
        current = current.parent


@given(
    documents(),
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=3, unique=True),
)
@settings(max_examples=150, deadline=None)
def test_elca_matches_bruteforce(document, terms):
    labeled = label_document(document)
    index = TermIndex(labeled)
    expected = brute_force_elcas(labeled, terms)
    actual = find_elcas(labeled, index, terms)
    assert [e.order for e in actual] == [e.order for e in expected]
