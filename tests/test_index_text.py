"""Text normalization and tokenization."""

from repro.index.text import (
    MAX_VALUE_LENGTH,
    completion_value,
    normalize,
    tokenize,
)


class TestNormalize:
    def test_case_folding(self):
        assert normalize("Jiaheng LU") == "jiaheng lu"

    def test_whitespace_collapsed(self):
        assert normalize("  a\t b \n c ") == "a b c"


class TestTokenize:
    def test_basic_split(self):
        assert tokenize("Holistic Twig Joins") == ["holistic", "twig", "joins"]

    def test_punctuation_dropped(self):
        assert tokenize("xml, twig; (joins)!") == ["xml", "twig", "joins"]

    def test_numbers_kept(self):
        assert tokenize("year 2012 pages 12-30") == ["year", "2012", "pages", "12-30"]

    def test_apostrophes_join(self):
        assert tokenize("O'Neil's algorithm") == ["o'neil's", "algorithm"]

    def test_hyphen_joins(self):
        assert tokenize("twig-join") == ["twig-join"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   ...   ") == []

    def test_stopword_filtering_optional(self):
        text = "the art of xml"
        assert "the" in tokenize(text)
        filtered = tokenize(text, drop_stopwords=True)
        assert "the" not in filtered and "of" not in filtered
        assert "xml" in filtered


class TestCompletionValue:
    def test_normalizes(self):
        assert completion_value("  Jiaheng  LU ") == "jiaheng lu"

    def test_empty_rejected(self):
        assert completion_value("   ") is None

    def test_too_long_rejected(self):
        assert completion_value("x" * (MAX_VALUE_LENGTH + 1)) is None
        assert completion_value("x" * MAX_VALUE_LENGTH) is not None
