"""Admission control, error taxonomy, and overload behavior over HTTP."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.resilience import faults
from repro.resilience.admission import AdmissionGate
from repro.resilience.errors import Overloaded
from repro.server.app import ServerConfig, make_server

#: Deliberately tiny limits so overload is easy to provoke from a test.
TIGHT_CONFIG = ServerConfig(
    max_concurrency=1,
    max_queue=0,
    queue_timeout_s=0.05,
    retry_after_s=2.0,
    max_body_bytes=2048,
)


@pytest.fixture(scope="module")
def base_url(small_db):
    server = make_server(small_db, port=0, config=TIGHT_CONFIG)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get(base_url, path):
    try:
        with urllib.request.urlopen(base_url + path, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def post(base_url, path, payload):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class TestAdmissionGate:
    def test_immediate_slots_up_to_capacity(self):
        gate = AdmissionGate(capacity=2, max_queue=0)
        gate.acquire()
        gate.acquire()
        with pytest.raises(Overloaded) as info:
            gate.acquire()
        assert info.value.retry_after == 1.0
        gate.release()
        gate.acquire()  # freed slot is reusable
        gate.release()
        gate.release()

    def test_queue_timeout_sheds(self):
        gate = AdmissionGate(
            capacity=1, max_queue=1, queue_timeout_s=0.05, retry_after_s=3.0
        )
        gate.acquire()
        started = time.perf_counter()
        with pytest.raises(Overloaded) as info:
            gate.acquire()
        assert time.perf_counter() - started >= 0.04
        assert info.value.retry_after == 3.0
        assert gate.shed == 1
        gate.release()

    def test_waiter_gets_slot_on_release(self):
        gate = AdmissionGate(capacity=1, max_queue=1, queue_timeout_s=2.0)
        gate.acquire()
        got = []

        def wait_for_slot():
            gate.acquire()
            got.append(True)
            gate.release()

        waiter = threading.Thread(target=wait_for_slot)
        waiter.start()
        time.sleep(0.02)  # let the waiter park in the queue
        gate.release()
        waiter.join(timeout=2)
        assert got == [True]
        assert gate.shed == 0

    def test_slot_context_manager_releases_on_error(self):
        gate = AdmissionGate(capacity=1, max_queue=0)
        with pytest.raises(RuntimeError):
            with gate.slot():
                assert gate.snapshot()["active"] == 1
                raise RuntimeError("boom")
        assert gate.snapshot()["active"] == 0

    def test_snapshot(self):
        gate = AdmissionGate(capacity=3, max_queue=7)
        with gate.slot():
            snap = gate.snapshot()
        assert snap == {
            "capacity": 3,
            "active": 1,
            "waiting": 0,
            "max_queue": 7,
            "shed": 0,
            "site": "server.admission",
            "retry_after_s": 1.0,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(capacity=0)
        with pytest.raises(ValueError):
            AdmissionGate(capacity=1, max_queue=-1)
        gate = AdmissionGate(capacity=1)
        with pytest.raises(RuntimeError):
            gate.release()


class TestOverload:
    def test_shed_requests_get_429_with_retry_after(self, base_url):
        barrier = threading.Barrier(4)
        results = []

        def hammer(k):
            barrier.wait()
            # Distinct k per thread: identical requests would coalesce
            # into one flight instead of contending for the gate.
            results.append(
                post(base_url, "/api/search", {"query": "//article/author", "k": k})
            )

        with faults.injected("server.request", latency_s=0.15):
            threads = [
                threading.Thread(target=hammer, args=(k,))
                for k in range(1, 5)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)

        statuses = [status for status, _, _ in results]
        assert 200 in statuses  # the admitted request still succeeds
        assert 429 in statuses  # the rest are shed, not stacked
        assert 500 not in statuses
        for status, data, headers in results:
            if status == 429:
                assert data["code"] == "overloaded"
                assert int(headers["Retry-After"]) >= 2

    @pytest.mark.slow
    def test_sustained_load_never_500s(self, base_url):
        """Hammer a capacity-1 server: every answer is a 200 or a clean 429."""
        results = []
        lock = threading.Lock()

        def hammer(worker):
            for attempt in range(5):
                # Distinct per request so single-flight can't collapse
                # the load this test exists to apply.
                outcome = post(
                    base_url,
                    "/api/search",
                    {"query": "//article/author", "k": 1 + worker * 5 + attempt},
                )
                with lock:
                    results.append(outcome)

        with faults.injected("server.request", latency_s=0.02):
            threads = [
                threading.Thread(target=hammer, args=(worker,))
                for worker in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)

        statuses = {status for status, _, _ in results}
        assert statuses <= {200, 429}
        assert len(results) == 40


class TestErrorTaxonomy:
    def test_internal_errors_do_not_leak(self, base_url):
        with faults.injected(
            "server.request", error=RuntimeError("secret internal state")
        ):
            status, data, _ = post(
                base_url, "/api/search", {"query": "//article"}
            )
        assert status == 500
        assert data == {"error": "internal error", "code": "internal"}
        assert "secret" not in json.dumps(data)

    def test_internal_errors_on_get_do_not_leak(self, base_url):
        with faults.injected(
            "server.request", error=RuntimeError("secret internal state")
        ):
            status, data, _ = get(base_url, "/api/stats")
        assert status == 500
        assert data == {"error": "internal error", "code": "internal"}

    def test_oversized_body_is_413(self, base_url):
        big = {"query": "//article", "padding": "x" * 4096}
        status, data, _ = post(base_url, "/api/search", big)
        assert status == 413
        assert data["code"] == "payload_too_large"

    def test_bad_query_is_400_with_code(self, base_url):
        status, data, _ = post(base_url, "/api/search", {"query": "//bad[["})
        assert status == 400
        assert data["code"] == "bad_request"

    def test_not_found_has_code(self, base_url):
        status, data, _ = get(base_url, "/api/nope")
        assert status == 404
        assert data["code"] == "not_found"


class TestValidation:
    def test_k_zero_rejected(self, base_url):
        status, data, _ = post(
            base_url, "/api/search", {"query": "//article", "k": 0}
        )
        assert status == 400
        assert "'k' must be >= 1" in data["error"]

    def test_k_negative_rejected(self, base_url):
        status, data, _ = post(
            base_url, "/api/keyword", {"query": "jiaheng", "k": -3}
        )
        assert status == 400

    def test_huge_k_is_clamped_not_rejected(self, base_url):
        status, data, _ = post(
            base_url, "/api/search", {"query": "//article/author", "k": 10**9}
        )
        assert status == 200
        assert data["total_matches"] == 3

    def test_k_must_be_an_integer(self, base_url):
        status, data, _ = post(
            base_url, "/api/search", {"query": "//article", "k": "ten"}
        )
        assert status == 400

    def test_timeout_ms_zero_rejected(self, base_url):
        status, data, _ = post(
            base_url, "/api/search", {"query": "//article", "timeout_ms": 0}
        )
        assert status == 400
        assert "timeout_ms" in data["error"]

    def test_timeout_ms_accepted(self, base_url):
        status, data, _ = post(
            base_url,
            "/api/search",
            {"query": "//article/author", "timeout_ms": 30_000},
        )
        assert status == 200
        assert data["truncated"] is False

    def test_complete_reports_truncation_field(self, base_url):
        status, data, _ = post(
            base_url, "/api/complete", {"kind": "tag", "prefix": "a"}
        )
        assert status == 200
        assert data["truncated"] is False
        assert data["candidates"]
