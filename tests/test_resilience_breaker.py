"""Circuit breaker state machine: trip, cooldown, half-open, recovery."""

import threading

import pytest

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(
        window=8, failure_threshold=0.5, min_calls=4, cooldown_s=1.0, clock=clock
    )
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_min_calls_never_trip(self):
        breaker, _ = make_breaker(min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_trips_at_failure_threshold(self):
        breaker, _ = make_breaker(min_calls=4, failure_threshold=0.5)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()  # 2 failures / 4 outcomes = 0.5 >= 0.5
        assert breaker.state == OPEN
        assert breaker.opened == 1

    def test_successes_age_out_of_window(self):
        # A long-ago run of successes must not dilute recent failures.
        breaker, _ = make_breaker(window=4, min_calls=4, failure_threshold=0.5)
        for _ in range(10):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == OPEN


class TestOpen:
    def test_rejects_while_open(self):
        breaker, _ = make_breaker(min_calls=1, failure_threshold=0.1)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.rejected == 1

    def test_cooldown_moves_to_half_open(self):
        breaker, clock = make_breaker(min_calls=1, failure_threshold=0.1)
        breaker.record_failure()
        clock.advance(0.5)
        assert breaker.state == OPEN
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def tripped(self, **kwargs):
        breaker, clock = make_breaker(
            min_calls=1, failure_threshold=0.1, **kwargs
        )
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.state == HALF_OPEN
        return breaker, clock

    def test_admits_limited_probes(self):
        breaker, _ = self.tripped(half_open_probes=1)
        assert breaker.allow()  # reserves the only probe slot
        assert not breaker.allow()

    def test_probe_success_closes_and_clears_window(self):
        breaker, _ = self.tripped()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # The pre-trip failure must not linger: one fresh failure alone
        # (below min_calls... use min_calls=1 so rate matters) —
        # the window was cleared, so snapshot shows only the success.
        snap = breaker.snapshot()
        assert snap["window"] == 1
        assert snap["failures"] == 0

    def test_probe_failure_reopens(self):
        breaker, clock = self.tripped()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened == 2
        # ...and the new cooldown restarts from the re-trip.
        clock.advance(1.1)
        assert breaker.state == HALF_OPEN

    def test_abandon_releases_probe_slot(self):
        breaker, _ = self.tripped(half_open_probes=1)
        assert breaker.allow()
        breaker.abandon()  # caller's own deadline cut the call short
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # slot is free again

    def test_abandon_records_no_outcome(self):
        breaker, _ = self.tripped()
        before = breaker.snapshot()["window"]
        assert breaker.allow()
        breaker.abandon()
        assert breaker.snapshot()["window"] == before


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_calls": 0},
            {"half_open_probes": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestConcurrency:
    def test_parallel_outcomes_never_corrupt_state(self):
        breaker, _ = make_breaker(window=64, min_calls=64, failure_threshold=1.0)

        def hammer():
            for i in range(200):
                if breaker.allow():
                    if i % 2:
                        breaker.record_success()
                    else:
                        breaker.record_failure()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["window"] == 64
