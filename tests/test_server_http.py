"""End-to-end HTTP tests against a live server on a free port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.server.app import make_server


@pytest.fixture(scope="module")
def base_url(small_db):
    server = make_server(small_db, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get(base_url, path):
    with urllib.request.urlopen(base_url + path, timeout=10) as response:
        return response.status, response.read()


def post(base_url, path, payload):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestGet:
    def test_index_serves_gui(self, base_url):
        status, body = get(base_url, "/")
        assert status == 200
        assert b"LotusX" in body
        assert b"/api/complete" in body

    def test_stats(self, base_url):
        status, body = get(base_url, "/api/stats")
        assert status == 200
        assert json.loads(body)["statistics"]["element_count"] == 31

    def test_dataguide(self, base_url):
        status, body = get(base_url, "/api/dataguide")
        assert status == 200
        assert json.loads(body)["roots"][0]["tag"] == "dblp"

    def test_unknown_path_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as info:
            get(base_url, "/api/nope")
        assert info.value.code == 404


class TestPost:
    def test_search(self, base_url):
        status, data = post(
            base_url, "/api/search", {"query": "//article/author", "k": 2}
        )
        assert status == 200
        assert data["total_matches"] == 3
        assert len(data["results"]) == 2

    def test_complete(self, base_url):
        status, data = post(
            base_url,
            "/api/complete",
            {"kind": "tag", "prefix": "t", "query": "//article", "node": 0},
        )
        assert status == 200
        assert {c["text"] for c in data["candidates"]} == {"title"}

    def test_explain(self, base_url):
        status, data = post(base_url, "/api/explain", {"query": "//article"})
        assert status == 200
        assert data["algorithm"] == "path-stack"

    def test_client_error_is_400(self, base_url):
        status, data = post(base_url, "/api/search", {"query": "//bad[["})
        assert status == 400
        assert "bad twig query" in data["error"]

    def test_bad_json_is_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/api/search",
            data=b"{broken",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_post_unknown_path_404(self, base_url):
        status, data = post(base_url, "/api/zzz", {})
        assert status == 404

    def test_keyword_endpoint(self, base_url):
        status, data = post(
            base_url, "/api/keyword", {"query": "jiaheng twig", "k": 5}
        )
        assert status == 200
        assert data["hits"]

    def test_examples_endpoint(self, base_url):
        status, body = get(base_url, "/api/examples")
        assert status == 200
        import json as json_module

        assert json_module.loads(body)["examples"]


class TestConcurrency:
    def test_parallel_requests_all_succeed(self, base_url):
        """The threading server must handle interleaved clients."""
        import concurrent.futures

        payloads = [
            ("/api/search", {"query": "//article/author", "k": 3}),
            ("/api/search", {"query": '//article[./title~"twig"]', "k": 3}),
            ("/api/keyword", {"query": "jiaheng", "k": 3}),
            ("/api/complete", {"kind": "tag", "prefix": "a"}),
            ("/api/explain", {"query": "//article"}),
        ] * 4
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda item: post(base_url, item[0], item[1]), payloads)
            )
        assert all(status == 200 for status, _ in results)
