"""Path utilities."""

from repro.summary.paths import (
    contains_subsequence,
    format_path,
    is_prefix,
    parse_path,
)


class TestFormatting:
    def test_format(self):
        assert format_path(("dblp", "article")) == "/dblp/article"
        assert format_path(()) == "/"

    def test_parse(self):
        assert parse_path("/dblp/article") == ("dblp", "article")
        assert parse_path("dblp/article/") == ("dblp", "article")
        assert parse_path("/") == ()
        assert parse_path("") == ()

    def test_roundtrip(self):
        for path in [(), ("a",), ("a", "b", "c")]:
            assert parse_path(format_path(path)) == path


class TestPredicates:
    def test_is_prefix(self):
        assert is_prefix((), ("a",))
        assert is_prefix(("a",), ("a", "b"))
        assert is_prefix(("a", "b"), ("a", "b"))
        assert not is_prefix(("b",), ("a", "b"))
        assert not is_prefix(("a", "b", "c"), ("a", "b"))

    def test_contains_subsequence(self):
        path = ("site", "regions", "asia", "item", "description")
        assert contains_subsequence(path, ("site", "item"))
        assert contains_subsequence(path, ("regions", "asia", "description"))
        assert contains_subsequence(path, ())
        assert not contains_subsequence(path, ("item", "asia"))  # wrong order
        assert not contains_subsequence(path, ("nope",))
