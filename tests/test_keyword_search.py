"""Ranked keyword search."""

import pytest

from repro.engine.database import LotusXDatabase

XML = (
    "<dblp>"
    "<article><title>twig joins twig algorithms</title>"
    "<author>jiaheng lu</author></article>"
    "<article><title>keyword search</title><author>jiaheng lu</author></article>"
    "<book><title>collected works</title><chapter><section>"
    "<para>twig twig twig jiaheng</para></section></chapter>"
    "<author>someone else</author></book>"
    "</dblp>"
)


@pytest.fixture(scope="module")
def db():
    return LotusXDatabase.from_string(XML)


class TestKeywordSearch:
    def test_returns_slcas_ranked(self, db):
        response = db.keyword_search("twig jiaheng")
        assert response.total_slcas == 2
        tags = [hit.element.tag for hit in response]
        assert set(tags) == {"article", "para"}

    def test_higher_tf_and_smaller_answer_ranks_first(self, db):
        response = db.keyword_search("twig jiaheng")
        # The <para> is deeper and smaller with tf(twig)=3 vs the article.
        assert response.hits[0].element.tag == "para"

    def test_k_limits(self, db):
        response = db.keyword_search("jiaheng", k=1)
        assert len(response) == 1
        assert response.total_slcas == 3  # two authors + the para

    def test_stopwords_dropped(self, db):
        with_stop = db.keyword_search("the twig of jiaheng")
        without = db.keyword_search("twig jiaheng")
        assert with_stop.terms == without.terms

    def test_all_stopword_query_kept_verbatim(self, db):
        response = db.keyword_search("the of")
        assert response.terms == ("the", "of")
        assert response.total_slcas == 0

    def test_empty_query(self, db):
        response = db.keyword_search("   ")
        assert len(response) == 0
        assert response.terms == ()

    def test_no_answer(self, db):
        assert len(db.keyword_search("nonexistent gibberish")) == 0

    def test_scores_sorted(self, db):
        response = db.keyword_search("jiaheng lu twig")
        scores = [hit.score for hit in response]
        assert scores == sorted(scores, reverse=True)

    def test_as_dict(self, db):
        data = db.keyword_search("twig").as_dict()
        assert data["terms"] == ["twig"]
        assert data["hits"][0]["xpath"].startswith("/dblp")
        assert {"score", "text_score", "specificity"} <= set(data["hits"][0])


class TestServerIntegration:
    def test_api_handler(self, db):
        from repro.server.api import ApiError, handle_keyword

        data = handle_keyword(db, {"query": "twig jiaheng", "k": 5})
        assert data["total_slcas"] == 2
        with pytest.raises(ApiError):
            handle_keyword(db, {})
