"""Shared fixtures: a small hand-written bibliography corpus plus
generated corpora, each indexed once per session."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp, generate_xmark
from repro.engine.database import LotusXDatabase
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string

#: A compact corpus whose every answer can be checked by hand.
SMALL_XML = """<dblp>
<article key="a1"><title>holistic twig joins optimal xml pattern matching</title>\
<author>nicolas bruno</author><author>divesh srivastava</author><year>2002</year>\
<journal>sigmod record</journal></article>
<article key="a2"><title>xml keyword search semantics</title>\
<author>jiaheng lu</author><year>2011</year><journal>tods</journal></article>
<inproceedings key="c1"><title>lotusx position aware xml graphical search</title>\
<author>chunbin lin</author><author>jiaheng lu</author><author>tok wang ling</author>\
<author>bogdan cautis</author><year>2012</year><booktitle>icde</booktitle></inproceedings>
<inproceedings key="c2"><title>twig pattern relaxation</title>\
<author>jiaheng lu</author><year>2006</year><booktitle>edbt</booktitle></inproceedings>
<book key="b1"><title>xml data management</title><editor><author>jiaheng lu</author>\
</editor><year>2009</year><publisher>springer</publisher></book>
</dblp>"""


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Per-test fault hygiene, both directions.

    Before: install whatever ``LOTUSX_FAULT_SPEC`` declares (no-op when
    unset) — the CI fault-matrix job sets it to run drill modules with a
    standing fault underneath every test.  After: clear everything so no
    test leaves injected faults behind for its neighbors.
    """
    from repro.resilience import faults

    faults.install_from_env()
    yield
    faults.clear()


@pytest.fixture(scope="session")
def small_document():
    return parse_string(SMALL_XML)


@pytest.fixture(scope="session")
def small_labeled(small_document):
    return label_document(small_document)


@pytest.fixture(scope="session")
def small_term_index(small_labeled):
    return TermIndex(small_labeled)


@pytest.fixture(scope="session")
def small_db():
    return LotusXDatabase.from_string(SMALL_XML)


@pytest.fixture(scope="session")
def dblp_db():
    """A 150-publication DBLP-like corpus (about 1.1k elements)."""
    return LotusXDatabase(generate_dblp(publications=150, seed=11))


@pytest.fixture(scope="session")
def xmark_db():
    """A 40-item XMark-like corpus with deep nesting."""
    return LotusXDatabase(generate_xmark(items=40, seed=5))
