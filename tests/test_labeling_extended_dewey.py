"""Extended Dewey: tag-decodable labels (TJFast scheme)."""

import pytest

from repro.labeling.extended_dewey import (
    ExtendedDewey,
    ExtendedDeweyDecoder,
    ExtendedDeweyEncoder,
)
from repro.summary.child_table import ChildTagTable
from repro.xmlio.builder import parse_string


@pytest.fixture()
def table():
    table = ChildTagTable()
    # CT(dblp) = [article, book]; CT(article) = [title, author]
    table.observe("dblp", "article")
    table.observe("dblp", "book")
    table.observe("article", "title")
    table.observe("article", "author")
    table._ensure("title")  # leaves
    return table


class TestEncoder:
    def test_component_encodes_tag_index(self, table):
        encoder = ExtendedDeweyEncoder(table)
        # First child, tag index 0 -> component 0.
        assert encoder.component("dblp", "article", -1) == 0
        # First child, tag index 1 -> component 1.
        assert encoder.component("dblp", "book", -1) == 1

    def test_components_increase_across_siblings(self, table):
        encoder = ExtendedDeweyEncoder(table)
        previous = -1
        components = []
        for tag in ["article", "article", "book", "article"]:
            previous = encoder.component("dblp", tag, previous)
            components.append(previous)
        assert components == sorted(components)
        assert components == [0, 2, 3, 4]
        # Every component decodes to the right tag.
        n = table.fanout("dblp")
        assert [c % n for c in components] == [0, 0, 1, 0]

    def test_unknown_parent_raises(self, table):
        encoder = ExtendedDeweyEncoder(table)
        with pytest.raises(KeyError):
            encoder.component("nosuch", "x", -1)


class TestDecoder:
    def test_decode_path(self, table):
        decoder = ExtendedDeweyDecoder(table, "dblp")
        assert decoder.decode(ExtendedDewey(())) == ("dblp",)
        assert decoder.decode(ExtendedDewey((0,))) == ("dblp", "article")
        assert decoder.decode(ExtendedDewey((1,))) == ("dblp", "book")
        assert decoder.decode(ExtendedDewey((0, 1))) == ("dblp", "article", "author")
        assert decoder.decode(ExtendedDewey((2, 2))) == ("dblp", "article", "title")

    def test_tag_of(self, table):
        decoder = ExtendedDeweyDecoder(table, "dblp")
        assert decoder.tag_of(ExtendedDewey((0, 1))) == "author"

    def test_decoding_below_leaf_raises(self, table):
        decoder = ExtendedDeweyDecoder(table, "dblp")
        with pytest.raises(ValueError):
            decoder.decode(ExtendedDewey((0, 0, 0)))  # below title (a leaf)


class TestLabelSemantics:
    def test_prefix_ancestry(self):
        assert ExtendedDewey((1,)).is_ancestor_of(ExtendedDewey((1, 4)))
        assert ExtendedDewey((1,)).is_parent_of(ExtendedDewey((1, 4)))
        assert not ExtendedDewey((1, 4)).is_ancestor_of(ExtendedDewey((1,)))

    def test_parent(self):
        assert ExtendedDewey((1, 4)).parent() == ExtendedDewey((1,))
        with pytest.raises(ValueError):
            ExtendedDewey(()).parent()

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            ExtendedDewey((-1,))

    def test_immutable_and_hashable(self):
        label = ExtendedDewey((1, 2))
        with pytest.raises(AttributeError):
            label.components = ()
        assert len({label, ExtendedDewey((1, 2))}) == 1


class TestEndToEndDecoding:
    def test_every_element_path_recoverable(self):
        """On a real document, every element's xdewey decodes to its path."""
        from repro.labeling.assign import label_document

        doc = parse_string(
            "<dblp><article><title>t</title><author>a</author><author>b</author>"
            "</article><book><title>t2</title></book><article><author>c</author>"
            "</article></dblp>"
        )
        labeled = label_document(doc)
        for element in labeled.elements:
            assert labeled.decoder.decode(element.xdewey) == element.element.path()

    def test_document_order_preserved(self):
        from repro.labeling.assign import label_document

        doc = parse_string(
            "<r><b/><a/><b/><c/><a/><b/></r>"
        )
        labeled = label_document(doc)
        xdeweys = [element.xdewey for element in labeled.elements]
        assert xdeweys == sorted(xdeweys)
