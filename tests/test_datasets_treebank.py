"""Treebank-like generator and deep-recursion behaviour."""

import pytest

from repro.datasets import generate_treebank, generate_treebank_xml
from repro.engine.database import LotusXDatabase
from repro.twig.planner import Algorithm
from repro.xmlio.builder import parse_string


@pytest.fixture(scope="module")
def db():
    return LotusXDatabase(generate_treebank(sentences=25, seed=17))


class TestGenerator:
    def test_deterministic(self):
        assert generate_treebank_xml(10, seed=3) == generate_treebank_xml(10, seed=3)
        assert generate_treebank_xml(10, seed=3) != generate_treebank_xml(10, seed=4)

    def test_sentence_count(self):
        doc = generate_treebank(sentences=7, seed=1)
        assert len(doc.root.find_all("sentence")) == 7

    def test_parses_as_valid_xml(self):
        assert parse_string(generate_treebank_xml(5, seed=2)).root.tag == "treebank"

    def test_max_depth_respected_loosely(self):
        # max_depth bounds recursion *onset*; terminals can add a couple
        # of levels below it.
        doc = generate_treebank(sentences=20, seed=5, max_depth=6)
        depths = [len(e.path()) for e in doc.iter()]
        assert max(depths) <= 6 + 4

    def test_recursive_nesting_present(self, db):
        assert db.matches("//NP//NP")  # same-tag nesting exists

    def test_terminals_carry_text(self, db):
        for element in db.labeled.stream("NN"):
            assert element.element.text.strip()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_treebank(sentences=-1)


class TestDeepRecursionMatching:
    """Same-tag recursion is the stress case for stack algorithms; every
    algorithm must agree here too."""

    QUERIES = [
        "//NP//NP",
        "//NP//NP//NN",
        "//VP[.//NP[.//PP]]",
        "//S//S",
        "//NP[./DT][./NN]",
        '//NP[.//NN="tree"]//PP',
        "//PP/NP/PP",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_algorithms_agree_on_recursive_queries(self, db, query):
        results = {
            algorithm: [m.key() for m in db.matches(query, algorithm)]
            for algorithm in (
                Algorithm.NAIVE,
                Algorithm.STRUCTURAL_JOIN,
                Algorithm.TWIG_STACK,
                Algorithm.TJFAST,
            )
        }
        baseline = results[Algorithm.NAIVE]
        for algorithm, keys in results.items():
            assert keys == baseline, (algorithm, query)

    def test_deep_guide(self, db):
        assert db.statistics().max_depth >= 10
        assert db.statistics().distinct_paths > 100

    def test_completion_on_recursive_paths(self, db):
        pattern = db.parse_query("//NP/NP")
        tags = {c.text for c in db.complete_tag(pattern, pattern.nodes()[1], "")}
        # A nested NP can still contain the full NP vocabulary.
        assert "NN" in tags
