"""Differential testing of the sharded fleet against the single database.

Extends the seeded 400-case harness from ``test_twig_cross_check`` to a
2-shard split: every case builds the same document twice — once as a
monolithic :class:`LotusXDatabase` (the oracle) and once partitioned
through :class:`ShardedDatabase` — and the shard-merged matches must be
globally identical to the mono answer.  The harness matrix guarantees
the axes that stress the merge layer: ordered (sibling-order-sensitive)
patterns with optional nodes on the columnar path, negation, stream
pruning, and spine-rooted patterns that must take the fallback path.

A second layer cross-checks the ranked surfaces (search, keyword SLCA /
ELCA, autocompletion, statistics) on a realistic corpus, where scores
depend on corpus-global term statistics that the fleet must reconstruct
exactly.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp_xml
from repro.engine.database import LotusXDatabase
from repro.shard.database import ShardedDatabase
from repro.twig.match import Match
from tests.test_twig_cross_check import (
    HARNESS_BATCHES,
    HARNESS_CASES_PER_BATCH,
    _harness_document,
    _harness_pattern,
    _harness_shape,
)

SHARDS = 2


def _canonical(matches: list[Match]) -> list[tuple]:
    """Shard-independent projection of a match list.

    Mono and shard databases hold distinct ``Element`` objects for the
    same corpus position, so matches are compared on global region
    coordinates (identical across the fleet by construction) plus tag
    and level.
    """
    return [
        tuple(
            sorted(
                (nid, el.region.start, el.region.end, el.level, el.tag)
                for nid, el in match.assignments.items()
            )
        )
        for match in matches
    ]


@pytest.mark.parametrize("batch", range(HARNESS_BATCHES))
def test_sharded_matches_agree_with_mono(batch):
    for case in range(HARNESS_CASES_PER_BATCH):
        seed = batch * HARNESS_CASES_PER_BATCH + case
        shape = _harness_shape(case)
        prune = seed % 3 == 0
        mono = LotusXDatabase(_harness_document(seed))
        sharded = ShardedDatabase.from_document(
            _harness_document(seed), SHARDS, executor_mode="serial"
        )
        pattern = _harness_pattern(seed, shape)
        context = f"seed={seed} shape={shape} prune={prune} pattern={pattern}"

        oracle = _canonical(mono.matches(pattern, prune_streams=prune))
        got = _canonical(
            sharded.matches(pattern.copy(), prune_streams=prune)
        )
        assert got == oracle, (
            f"shard merge disagrees with mono"
            f" ({len(got)} vs {len(oracle)} matches): {context}"
        )
        sharded.close()


def test_sharded_harness_covers_ordered_optional_columnar():
    """The extended matrix really exercises the advertised axes.

    In particular: ordered (sibling-order-sensitive) patterns that also
    carry optional nodes — the combination most likely to break a merge
    that reorders or re-deduplicates matches — and cases where the
    2-shard fleet takes the scatter path vs the spine fallback.
    """
    ordered_with_optional = 0
    scatter_safe = 0
    fallback = 0
    total = HARNESS_BATCHES * HARNESS_CASES_PER_BATCH
    for seed in range(total):
        pattern = _harness_pattern(seed, _harness_shape(seed))
        if pattern.ordered and pattern.has_optional():
            ordered_with_optional += 1
        root = pattern.root
        unsafe = root.accepts_tag("r") and (
            root.predicate is not None
            or len(root.children) >= 2
            or any(child.optional for child in root.children)
        )
        if unsafe:
            fallback += 1
        else:
            scatter_safe += 1
    assert ordered_with_optional >= 15, ordered_with_optional
    assert scatter_safe >= 250, scatter_safe
    assert fallback >= 30, fallback


# ---------------------------------------------------------------------------
# Ranked surfaces: scores depend on corpus-global statistics
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_pair():
    xml_text = generate_dblp_xml(120, 11)
    mono = LotusXDatabase.from_string(xml_text)
    sharded = ShardedDatabase.from_string(xml_text, 3, executor_mode="thread")
    yield mono, sharded
    sharded.close()


SEARCH_QUERIES = [
    '//article[./title~"twig"]/author',
    '//article[./year="2004"]',
    "//inproceedings/title",
    "//article[./author][./title]",
]


def test_sharded_search_identical(corpus_pair):
    mono, sharded = corpus_pair
    for query in SEARCH_QUERIES:
        expected = mono.search(query, k=10)
        got = sharded.search(query, k=10)
        assert [r.as_dict() for r in got.results] == [
            r.as_dict() for r in expected.results
        ], query
        assert got.total_matches == expected.total_matches, query


@pytest.mark.parametrize("semantics", ["slca", "elca"])
def test_sharded_keyword_identical(corpus_pair, semantics):
    mono, sharded = corpus_pair
    for terms in ("twig join", "xml", "database query", "nosuchterm xml"):
        expected = mono.keyword_search(terms, k=10, semantics=semantics)
        got = sharded.keyword_search(terms, k=10, semantics=semantics)
        assert got.as_dict() == expected.as_dict(), (semantics, terms)


def test_sharded_autocomplete_identical(corpus_pair):
    mono, sharded = corpus_pair
    for prefix in ("a", "t", ""):
        expected = mono.complete_tag(prefix=prefix, k=10)
        got = sharded.complete_tag(prefix=prefix, k=10)
        assert [c.as_dict() for c in got] == [c.as_dict() for c in expected]
    pattern = mono.parse_query("//article/title")
    expected = mono.complete_value(pattern, pattern.nodes()[-1], "t", k=10)
    shard_pattern = sharded.parse_query("//article/title")
    got = sharded.complete_value(
        shard_pattern, shard_pattern.nodes()[-1], "t", k=10
    )
    assert [c.as_dict() for c in got] == [c.as_dict() for c in expected]


def test_sharded_statistics_identical(corpus_pair):
    mono, sharded = corpus_pair
    assert sharded.statistics().as_dict() == mono.statistics().as_dict()


# ---------------------------------------------------------------------------
# Executor failure paths: broken workers must degrade, not corrupt
# ---------------------------------------------------------------------------


class TestExecutorFailurePaths:
    """Scattered evaluation under worker faults (``shard.worker.<i>``).

    A failed shard is contained as a failed :class:`ShardOutcome`: its
    answers are missing, the survivors' answers are merged bit-exact, and
    the coordinator reports the loss (``ShardsUnavailable`` / degraded
    tags) instead of raising a bare 500 or silently dropping data.
    """

    XML = generate_dblp_xml(90, 23)

    def _pair(self, mode: str):
        from repro.resilience import faults  # noqa: F401 (fixture clears)

        mono = LotusXDatabase.from_string(self.XML)
        sharded = ShardedDatabase.from_string(self.XML, 3, executor_mode=mode)
        return mono, sharded

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_worker_raising_mid_task_salvages_survivors(self, mode):
        from repro.resilience import faults
        from repro.resilience.errors import ShardsUnavailable

        mono, sharded = self._pair(mode)
        try:
            oracle = _canonical(mono.matches("//article/title"))
            faults.install_spec("shard.worker.1:error=worker blew up")
            with pytest.raises(ShardsUnavailable) as excinfo:
                sharded.matches("//article/title")
            assert excinfo.value.down == (1,)
            salvaged = _canonical(excinfo.value.partial)
            # The survivors' merge is a strict, order-preserving subset
            # of the oracle: nothing invented, nothing reordered.
            assert [m for m in oracle if m in salvaged] == salvaged
            assert 0 < len(salvaged) < len(oracle)
            # Search over the same corpus degrades instead of raising.
            response = sharded.search("//article/title", k=10, rewrite=False)
            assert "shard-1-unavailable" in response.degraded
            faults.clear()
            assert _canonical(sharded.matches("//article/title")) == oracle
        finally:
            sharded.close()

    def test_killed_process_pool_worker_fails_shard_and_heals(self):
        import multiprocessing

        from repro.resilience import faults
        from repro.resilience.errors import ShardsUnavailable

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        mono, sharded = self._pair("process")
        try:
            oracle = _canonical(mono.matches("//article/title"))
            # os._exit in the forked worker: the pool breaks exactly like
            # an OOM-killed worker in production.
            faults.install_spec("shard.worker.2:exit=1")
            with pytest.raises(ShardsUnavailable) as excinfo:
                sharded.matches("//article/title")
            assert 2 in excinfo.value.down
            faults.clear()
            # Self-heal: the broken pool was dropped; the next scatter
            # builds a fresh one and answers completely.
            assert _canonical(sharded.matches("//article/title")) == oracle
        finally:
            sharded.close()

    def test_one_shard_slow_under_thread_mode_trips_and_salvages(self):
        from repro.resilience import faults
        from repro.resilience.deadline import Deadline
        from repro.resilience.errors import DeadlineExceeded

        mono, sharded = self._pair("thread")
        try:
            oracle = _canonical(mono.matches("//article/title"))
            faults.install_spec("shard.worker.0:latency=0.5")
            with pytest.raises(DeadlineExceeded) as excinfo:
                sharded.matches(
                    "//article/title", deadline=Deadline.after_ms(80.0)
                )
            salvaged = _canonical(excinfo.value.partial or [])
            # The slow shard burned its own budget; its peers' answers
            # were salvaged and they merge as a subset of the oracle.
            assert [m for m in oracle if m in salvaged] == salvaged
            assert len(salvaged) < len(oracle)
        finally:
            sharded.close()

    def test_run_after_close_is_rejected(self):
        _, sharded = self._pair("serial")
        executor = sharded.executor
        sharded.close()
        sharded.close()  # idempotent
        assert executor.closed
        with pytest.raises(RuntimeError):
            executor.run([0], "matches", {}, None)
