"""The algorithm planner."""

import pytest

from repro.twig.algorithms.common import AlgorithmStats
from repro.twig.parse import parse_twig
from repro.twig.planner import Algorithm, choose_algorithm, evaluate


class TestChoice:
    def test_paths_go_to_path_stack(self):
        assert choose_algorithm(parse_twig("//a/b//c")) is Algorithm.PATH_STACK
        assert choose_algorithm(parse_twig("//a")) is Algorithm.PATH_STACK

    def test_twigs_go_to_twig_stack(self):
        assert choose_algorithm(parse_twig("//a[./b][./c]")) is Algorithm.TWIG_STACK


class TestEvaluate:
    @pytest.mark.parametrize(
        "algorithm",
        [
            Algorithm.AUTO,
            Algorithm.NAIVE,
            Algorithm.STRUCTURAL_JOIN,
            Algorithm.TWIG_STACK,
            Algorithm.PATH_STACK,
        ],
    )
    def test_every_algorithm_reachable(self, small_db, algorithm):
        pattern = parse_twig("//article/author")
        matches = evaluate(pattern, small_db.labeled, small_db.streams, algorithm)
        assert len(matches) == 3

    def test_stats_forwarded(self, small_db):
        stats = AlgorithmStats()
        evaluate(
            parse_twig("//article/author"),
            small_db.labeled,
            small_db.streams,
            Algorithm.TWIG_STACK,
            stats,
        )
        assert stats.elements_scanned > 0
        assert stats.matches == 3
