"""SLCA computation, with a brute-force oracle property."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.term_index import TermIndex
from repro.index.text import tokenize
from repro.keyword.slca import find_slcas
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string
from repro.xmlio.tree import Document, Element

XML = (
    "<dblp>"
    "<article><title>twig joins</title><author>jiaheng lu</author></article>"
    "<article><title>keyword search</title><author>jiaheng lu</author></article>"
    "<book><title>twig patterns</title><editor><author>tok ling</author></editor></book>"
    "</dblp>"
)


@pytest.fixture(scope="module")
def ctx():
    labeled = label_document(parse_string(XML))
    return labeled, TermIndex(labeled)


def slcas(ctx, *terms):
    labeled, index = ctx
    return find_slcas(labeled, index, terms)


class TestBasics:
    def test_single_term_returns_text_elements(self, ctx):
        results = slcas(ctx, "jiaheng")
        assert [r.tag for r in results] == ["author", "author"]

    def test_cross_field_terms_meet_at_record(self, ctx):
        results = slcas(ctx, "twig", "jiaheng")
        assert [r.tag for r in results] == ["article"]
        assert results[0].element.find("title").text == "twig joins"

    def test_terms_spanning_records_meet_at_root(self, ctx):
        results = slcas(ctx, "keyword", "patterns")
        assert [r.tag for r in results] == ["dblp"]

    def test_smallest_wins_over_ancestors(self, ctx):
        # "twig" occurs in an article and a book; each title is its own
        # smallest container, dblp is never returned.
        results = slcas(ctx, "twig")
        assert [r.tag for r in results] == ["title", "title"]

    def test_missing_term_returns_nothing(self, ctx):
        assert slcas(ctx, "jiaheng", "zzz") == []

    def test_empty_terms(self, ctx):
        assert slcas(ctx) == []

    def test_case_insensitive(self, ctx):
        assert slcas(ctx, "JIAHENG", "Twig") == slcas(ctx, "jiaheng", "twig")

    def test_results_in_document_order(self, ctx):
        results = slcas(ctx, "twig")
        starts = [r.region.start for r in results]
        assert starts == sorted(starts)

    def test_deep_term(self, ctx):
        results = slcas(ctx, "tok", "patterns")
        assert [r.tag for r in results] == ["book"]


# ---------------------------------------------------------------------------
# Brute-force oracle property
# ---------------------------------------------------------------------------

WORDS = ["ant", "bee", "cow", "doe"]
TAGS = ["p", "q", "s"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(1, 20))
    root = Element("r")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        child = parent.make_child(rng.choice(TAGS))
        if rng.random() < 0.6:
            child.append_text(
                " ".join(rng.choice(WORDS) for _ in range(rng.randint(1, 2)))
            )
        pool.append(child)
        if len(pool) > 5:
            pool.pop(0)
    return Document(root)


def brute_force_slcas(labeled, terms):
    """Qualifying = subtree (tokenized per element) contains all terms;
    SLCA = qualifying with no qualifying proper descendant."""

    def subtree_tokens(element):
        tokens = set()
        for node in element.element.iter():
            tokens.update(tokenize(node.direct_text))
        return tokens

    qualifying = [
        element
        for element in labeled.elements
        if set(terms) <= subtree_tokens(element)
    ]
    qualifying_ids = {id(q.element) for q in qualifying}
    return [
        element
        for element in qualifying
        if not any(
            id(descendant) in qualifying_ids
            for descendant in element.element.iter_descendants()
        )
    ]


@given(
    documents(),
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=3, unique=True),
)
@settings(max_examples=200, deadline=None)
def test_slca_matches_bruteforce(document, terms):
    labeled = label_document(document)
    index = TermIndex(labeled)
    expected = brute_force_slcas(labeled, terms)
    actual = find_slcas(labeled, index, terms)
    assert [e.order for e in actual] == [e.order for e in expected]
