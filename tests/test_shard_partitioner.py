"""Unit tests for corpus partitioning and global region labeling."""

from __future__ import annotations

import pytest

from repro.datasets import generate_dblp_xml
from repro.engine.database import LotusXDatabase
from repro.shard.partitioner import (
    ShardSpec,
    build_shard_database,
    partition_document,
    split_units,
)
from repro.xmlio.builder import parse_string


def test_split_units_balances_contiguously():
    bounds = split_units([5, 5, 5, 5], 2)
    assert bounds == [(0, 2), (2, 4)]
    # Blocks are contiguous and cover every unit exactly once.
    flattened = [i for start, end in bounds for i in range(start, end)]
    assert flattened == [0, 1, 2, 3]


def test_split_units_skewed_weights():
    # One huge unit should not drag its whole tail into the same block.
    bounds = split_units([100, 1, 1, 1], 2)
    assert bounds == [(0, 1), (1, 4)]


def test_split_units_fewer_units_than_shards():
    assert split_units([3], 4) == [(0, 1)]
    assert split_units([3, 3], 4) == [(0, 1), (1, 2)]
    assert split_units([], 4) == [(0, 0)]


def test_split_units_never_empty_blocks():
    for shards in (1, 2, 3, 5, 8):
        bounds = split_units([1, 7, 2, 2, 9, 1, 1], shards)
        assert all(end > start for start, end in bounds)
        assert bounds[0][0] == 0 and bounds[-1][1] == 7


XML = (
    "<lib kind='x'>intro"
    "<book><title>alpha beta</title></book>"
    "<book><title>gamma</title><year>2001</year></book>"
    "<cd><artist>delta</artist></cd>"
    "</lib>"
)


def test_partition_document_replicates_root_and_splits_units():
    plan = partition_document(parse_string(XML), 2)
    assert len(plan.specs) == 2
    roots = [doc.root for doc in plan.documents]
    assert all(root.tag == "lib" for root in roots)
    assert all(root.attributes == {"kind": "x"} for root in roots)
    # Root direct text lands on shard 0 only (term counted exactly once).
    assert "intro" in roots[0].text
    assert "intro" not in roots[1].text
    # Every unit appears exactly once across the fleet.
    total_units = sum(len(root.child_elements()) for root in roots)
    assert total_units == 3
    assert plan.specs[0].total_elements == plan.specs[1].total_elements


def test_partition_document_leaves_source_intact():
    document = parse_string(XML)
    before = document.root.text
    partition_document(document, 2)
    assert document.root.text == before
    assert len(document.root.child_elements()) == 3


def test_shard_regions_are_global_coordinates():
    """Shard labels must agree with the mono labeling per corpus position."""
    xml_text = generate_dblp_xml(40, 3)
    mono = LotusXDatabase.from_string(xml_text)
    plan = partition_document(parse_string(xml_text), 3)
    shards = [
        build_shard_database(doc, spec)
        for doc, spec in zip(plan.documents, plan.specs)
    ]

    mono_labels = {
        element.region.start: (element.region.end, element.level, element.tag)
        for element in mono.labeled.elements
    }
    shard_labels = {}
    for shard_index, shard in enumerate(shards):
        for element in shard.labeled.elements:
            if element.order == 0 and shard_index > 0:
                continue  # replicated spine root, counted once
            shard_labels[element.region.start] = (
                element.region.end,
                element.level,
                element.tag,
            )
    assert shard_labels == mono_labels


def test_shard_spec_roundtrip():
    spec = ShardSpec(
        index=1,
        shard_count=3,
        spine_tag="lib",
        unit_range=(2, 5),
        element_offset=17,
        element_count=9,
        total_elements=40,
        child_ordinal_offsets={"book": 2},
    )
    assert ShardSpec.from_dict(spec.as_dict()) == spec
    assert spec.tick_shift == 34


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        partition_document(parse_string(XML), 0)
