"""Corpus statistics."""

from repro.index.statistics import compute_statistics
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.xmlio.builder import parse_string


def _stats(xml):
    labeled = label_document(parse_string(xml))
    return compute_statistics(labeled, TermIndex(labeled))


class TestStatistics:
    def test_counts(self):
        stats = _stats("<r><a>x y</a><a>x</a><b><c/></b></r>")
        assert stats.element_count == 5
        assert stats.distinct_tags == 4
        assert stats.distinct_paths == 4
        assert stats.text_element_count == 2
        assert stats.total_tokens == 3
        assert stats.distinct_terms == 2
        assert stats.distinct_values == 2

    def test_depths(self):
        stats = _stats("<r><a><b><c/></b></a></r>")
        assert stats.max_depth == 4
        assert stats.average_depth == (1 + 2 + 3 + 4) / 4

    def test_single_element(self):
        stats = _stats("<only/>")
        assert stats.element_count == 1
        assert stats.max_depth == 1
        assert stats.text_element_count == 0

    def test_as_dict_keys(self):
        stats = _stats("<r><a>x</a></r>")
        data = stats.as_dict()
        assert set(data) == {
            "element_count",
            "distinct_tags",
            "distinct_paths",
            "max_depth",
            "average_depth",
            "text_element_count",
            "distinct_terms",
            "total_tokens",
            "distinct_values",
        }
