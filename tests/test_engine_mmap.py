"""Zero-copy (mmap) snapshot serving: format v3 round trips, mapping
lifecycle, cross-platform guards, and the hot-reload unmap hazard.

The claims under test:

* An ``mmap=True`` load is *behaviorally identical* to the built
  database and to the copying loader — same matches, completions,
  keyword results, statistics — while its hot columns are genuine
  ``memoryview`` slices of the file mapping (zero copies).
* The mapping's lifetime is governed by references, not loads: closing
  the database defers the unmap while exported views are live, and hot
  reload never invalidates a buffer an in-flight request still reads.
* Foreign byte layouts degrade safely: big-endian snapshots fall back
  to the copying decoder (or raise a typed error under
  ``mmap="require"``); v1/v2 files load exactly as before.
* The write path never mutates a mapped buffer: root-width patches go
  copy-on-write, and a writable checkpoint emits a v3 snapshot that
  reloads (mapped) to identical serving behavior.
"""

from __future__ import annotations

import gc
import json
import sys
import threading
from array import array

import pytest

from repro.datasets import generate_dblp
from repro.engine.database import LotusXDatabase
from repro.engine.store import (
    MappedSnapshot,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotMmapError,
    _decode_terms_raw,
    is_mmap_backed,
    load_snapshot,
    load_sharded_snapshot,
    read_snapshot_info,
    save_sharded_snapshot,
    save_snapshot,
)
from repro.index.columnar import decode_columnar_raw

FOREIGN_ORDER = "big" if sys.byteorder == "little" else "little"

QUERIES = [
    "//article[./title]/author",
    "//inproceedings//author",
    "//article[./year]",
    "//*[./author]",
    "ordered://article[./title][./author]",
]


@pytest.fixture(scope="module")
def built_db() -> LotusXDatabase:
    return LotusXDatabase(
        generate_dblp(publications=30, seed=11),
        synonyms={"paper": ("article", "inproceedings")},
    )


@pytest.fixture(scope="module")
def snapshot_path(built_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("mmap") / "dblp.lxsnap"
    save_snapshot(built_db, path)
    return path


def _probe(db) -> list:
    """A serving-surface fingerprint: matches, ranked search, keyword
    hits, completions, statistics."""
    out = []
    for query in QUERIES:
        out.append(db.matches(query))
    out.append(
        [(r.xpath, r.score) for r in db.search("//paper/author").results]
    )
    for semantics in ("slca", "elca"):
        hits = db.keyword_search("twig xml", semantics=semantics).hits
        out.append([(h.element.order, h.score) for h in hits])
    out.append(db.complete_tag(prefix=""))
    out.append(db.statistics().as_dict())
    return out


# ---------------------------------------------------------------------------
# Behavioral equality and zero-copy structure
# ---------------------------------------------------------------------------


def test_mmap_load_identical_to_built_and_copying(built_db, snapshot_path):
    copying = load_snapshot(snapshot_path)
    mapped = load_snapshot(snapshot_path, mmap="require")
    assert is_mmap_backed(mapped)
    assert not is_mmap_backed(copying)
    assert _probe(mapped) == _probe(copying) == _probe(built_db)


def test_mmap_columns_are_views_of_the_mapping(snapshot_path):
    db = load_snapshot(snapshot_path, mmap="require")
    db.warm_hot()
    columnar = db.streams.columnar
    assert columnar is not None
    for tag in sorted(columnar.tags()) + [None]:
        stream = columnar.stream(tag)
        for column in (stream.starts, stream.ends, stream.levels,
                       stream.path_ids):
            assert isinstance(column, memoryview), tag
            assert column.readonly
    # Term postings and completion tries too — no array copies anywhere
    # on the hot path.
    postings = db.term_index._postings
    some_term = next(iter(postings))
    assert isinstance(postings[some_term].orders, memoryview)
    tag_trie = db.completion_index.tag_trie
    assert isinstance(tag_trie._weights, memoryview)


def test_warm_hot_skips_cold_sections(snapshot_path):
    db = load_snapshot(snapshot_path, mmap="require")
    db.warm_hot()
    assert "term_index" in db._parts
    assert "completion_index" in db._parts
    assert "document" not in db._parts
    assert "labeled" not in db._parts
    # Cold sections still inflate on demand afterwards.
    assert len(db.labeled) > 0


def test_eager_mmap_load(built_db, snapshot_path):
    db = load_snapshot(snapshot_path, eager=True, mmap=True)
    assert is_mmap_backed(db)
    assert _probe(db) == _probe(built_db)


# ---------------------------------------------------------------------------
# Mapping lifecycle
# ---------------------------------------------------------------------------


def test_mapping_refcount_and_deferred_close(snapshot_path):
    db = load_snapshot(snapshot_path, mmap="require")
    mapping = db._reader.mapping
    assert mapping.references == 1
    assert mapping.mapped
    db.close()
    # The reader's master view still pins the buffer: close is deferred,
    # never forced — no live view is ever invalidated.
    assert mapping.mapped
    del db
    gc.collect()
    assert mapping.try_close()
    assert not mapping.mapped


def test_close_is_idempotent(snapshot_path):
    db = load_snapshot(snapshot_path, mmap="require")
    db.close()
    db.close()  # no double-decref
    mapping = db._reader.mapping
    with pytest.raises(SnapshotError):
        mapping.incref()


def test_query_results_survive_database_close(snapshot_path):
    """Results computed from mapped buffers stay valid after the
    database (and its mapping reference) is gone — the exported views
    keep the pages alive."""
    db = load_snapshot(snapshot_path, mmap="require")
    stream = db.streams.columnar.stream("article")
    starts = stream.starts
    first = starts[0]
    db.close()
    del db, stream
    gc.collect()
    assert starts[0] == first  # view still readable, no SIGSEGV/crash


def test_bytes_mode_database_close_is_noop(snapshot_path):
    db = load_snapshot(snapshot_path)
    db.close()
    assert db.matches(QUERIES[0]) is not None  # still fully usable


def test_mapped_snapshot_rejects_garbage(tmp_path):
    empty = tmp_path / "empty.lxsnap"
    empty.write_bytes(b"")
    with pytest.raises(SnapshotFormatError):
        MappedSnapshot(empty)
    junk = tmp_path / "junk.lxsnap"
    junk.write_bytes(b"not a snapshot at all, but long enough to map")
    with pytest.raises(SnapshotFormatError):
        load_snapshot(junk, mmap=True)
    with pytest.raises(SnapshotError):
        MappedSnapshot(tmp_path / "missing.lxsnap")


def test_mapped_header_corruption_detected(snapshot_path, tmp_path):
    """mmap mode verifies the header digest at map time, and each
    section's checksum on first access."""
    data = bytearray(snapshot_path.read_bytes())
    # Flip a byte inside the header JSON (after the 14-byte prefix).
    data[20] ^= 0x41
    bad = tmp_path / "badheader.lxsnap"
    bad.write_bytes(bytes(data))
    with pytest.raises(SnapshotIntegrityError):
        load_snapshot(bad, mmap=True)

    # Flip a byte in the data area: the map succeeds (header intact),
    # the touched section fails its lazy checksum.
    data = bytearray(snapshot_path.read_bytes())
    data[len(data) // 2] ^= 0x41
    bad2 = tmp_path / "baddata.lxsnap"
    bad2.write_bytes(bytes(data))
    db = load_snapshot(bad2, mmap=True)
    with pytest.raises(SnapshotIntegrityError):
        db.warm()


# ---------------------------------------------------------------------------
# Cross-platform guards and version compatibility
# ---------------------------------------------------------------------------


def test_foreign_byteorder_falls_back_to_copying(built_db, tmp_path):
    path = tmp_path / "foreign.lxsnap"
    save_snapshot(built_db, path, _force_byteorder=FOREIGN_ORDER)
    # Plain load: the copying decoder byteswaps; behavior identical.
    db = load_snapshot(path)
    assert _probe(db) == _probe(built_db)
    # mmap=True: silently degrades to the copying loader.
    fallback = load_snapshot(path, mmap=True)
    assert not is_mmap_backed(fallback)
    assert _probe(fallback) == _probe(built_db)
    # mmap="require": a typed, actionable refusal.
    with pytest.raises(SnapshotMmapError, match="foreign byte layout"):
        load_snapshot(path, mmap="require")


def test_pre_v3_snapshot_refuses_require_and_falls_back(built_db, tmp_path):
    path = tmp_path / "v2.lxsnap"
    save_snapshot(built_db, path, version=2)
    assert read_snapshot_info(path).version == 2
    fallback = load_snapshot(path, mmap=True)
    assert not is_mmap_backed(fallback)
    assert _probe(fallback) == _probe(built_db)
    with pytest.raises(SnapshotMmapError, match="predates the mmap layout"):
        load_snapshot(path, mmap="require")


def test_itemsize_guard_returns_rebuild_signal():
    """A directory claiming a different int width is refused by the raw
    decoders (``None`` = caller rebuilds), never misread."""
    assert _decode_terms_raw({"format": 1, "itemsize": 4}, b"") is None
    assert _decode_terms_raw({"format": 99, "itemsize": 8}, b"") is None
    assert (
        decode_columnar_raw(
            {"format": 1, "typecode": "q", "itemsize": 4}, b"", lambda t: []
        )
        is None
    )
    with pytest.raises(ValueError):
        decode_columnar_raw("not-a-dict", b"", lambda t: [])


# ---------------------------------------------------------------------------
# Copy-on-write: live writes over mapped buffers
# ---------------------------------------------------------------------------


def test_rewiden_root_copies_instead_of_writing_the_mapping(snapshot_path):
    db = load_snapshot(snapshot_path, mmap="require")
    columnar = db.streams.columnar
    root_tag = db.labeled.elements[0].tag
    stream = columnar.stream(root_tag)
    assert isinstance(stream.ends, memoryview)
    original_end = stream.ends[0]
    db.streams.rewiden_root(original_end + 100)
    patched = columnar.stream(root_tag)
    # The patched column is a private array copy; the mapping (and any
    # other process sharing its pages) is untouched.
    assert isinstance(patched.ends, array)
    assert patched.ends[0] == original_end + 100
    wild = columnar.stream(None)
    assert wild.ends[0] == original_end + 100


def test_writable_checkpoint_emits_v3_and_serves_identically(tmp_path):
    """Checkpoint → v3 snapshot → mmap reload round trip: the live
    written corpus and its mapped checkpoint agree on every surface."""
    from repro.write.writer import open_writable_database

    base = LotusXDatabase(generate_dblp(publications=12, seed=7))
    wal = tmp_path / "w.lxwal"
    db = open_writable_database(base, wal, synchronous=True)
    try:
        db.writer.insert_document(
            "<article><title>zero copy snapshots</title>"
            "<author>new author</author><year>2026</year></article>"
        )
        doc_id = db.writer._corpus.document_ids()[0]
        db.writer.delete_document(doc_id)
        db.writer.flush()
        checkpoint_path = tmp_path / "ckpt.lxsnap"
        db.writer.checkpoint(checkpoint_path)
        assert read_snapshot_info(checkpoint_path).version == 3
        reloaded = load_snapshot(checkpoint_path, mmap="require")
        assert is_mmap_backed(reloaded)
        live = db.view
        for query in QUERIES:
            assert reloaded.matches(query) == live.matches(query), query
        assert reloaded.complete_tag(prefix="") == live.complete_tag(prefix="")
        reloaded.close()
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Sharded snapshots
# ---------------------------------------------------------------------------


def test_sharded_snapshot_mmap_round_trip(tmp_path):
    from repro.shard.database import ShardedDatabase

    document = generate_dblp(publications=24, seed=3)
    sharded = ShardedDatabase.from_document(document, 2, executor_mode="serial")
    target = tmp_path / "fleet"
    save_sharded_snapshot(sharded, target)
    loaded = load_sharded_snapshot(target, executor_mode="serial", mmap=True)
    try:
        assert is_mmap_backed(loaded)
        for query in QUERIES:
            assert loaded.matches(query) == sharded.matches(query), query
        assert loaded.complete_tag(prefix="") == sharded.complete_tag(prefix="")
    finally:
        loaded.close()
        sharded.close()


def test_sharded_close_releases_every_mapping(tmp_path):
    from repro.shard.database import ShardedDatabase

    document = generate_dblp(publications=10, seed=5)
    sharded = ShardedDatabase.from_document(document, 2, executor_mode="serial")
    target = tmp_path / "fleet"
    save_sharded_snapshot(sharded, target)
    sharded.close()
    loaded = load_sharded_snapshot(target, executor_mode="serial", mmap=True)
    mappings = [shard._reader.mapping for shard in loaded.shards]
    assert all(m.references == 1 for m in mappings)
    loaded.close()
    del loaded
    gc.collect()
    assert all(m.try_close() for m in mappings)


# ---------------------------------------------------------------------------
# Hot reload: the unmap hazard
# ---------------------------------------------------------------------------


def test_reload_swap_keeps_old_mapping_alive_for_inflight_stream(
    built_db, snapshot_path
):
    """Regression for the unmap hazard: a slow *streamed* response binds
    generation N, a reload swaps in N+1 mid-stream, and the stream must
    finish correctly off N's buffers — which therefore must not be
    unmapped by the swap."""
    from repro.server.pipeline import RequestPipeline, ServerConfig
    from repro.server.reload import DatabaseHolder, ReloadSource

    source = ReloadSource("snapshot", str(snapshot_path), mmap=True)
    holder = DatabaseHolder(source.build(), source)
    old_db = holder.current
    old_mapping = old_db._reader.mapping
    pipeline = RequestPipeline(holder, ServerConfig(max_concurrency=4))

    first_chunk = threading.Event()
    resume = threading.Event()
    chunks: list[bytes] = []

    def emit(chunk: bytes) -> None:
        chunks.append(chunk)
        if not first_chunk.is_set():
            first_chunk.set()
            # Hold the stream open across the reload below.
            assert resume.wait(timeout=10)

    body = json.dumps({"query": QUERIES[0], "stream": True}).encode()
    worker = threading.Thread(
        target=lambda: pipeline.run_search_stream(
            "/api/search", body, len(body), emit
        )
    )
    worker.start()
    assert first_chunk.wait(timeout=10)

    generation_before = holder.generation
    result = holder.reload()
    assert result["generation"] == generation_before + 1
    new_db = holder.current
    assert new_db is not old_db
    # The swap must NOT have released the old generation's mapping: the
    # in-flight stream still reads it.
    assert old_mapping.mapped
    assert old_mapping.references == 1

    resume.set()
    worker.join(timeout=10)
    assert not worker.is_alive()
    assert len(chunks) == 2  # preliminary + final
    final = json.loads(chunks[-1])
    assert "error" not in final
    oracle = [r.xpath for r in built_db.search(QUERIES[0]).results]
    assert [r["xpath"] for r in final["results"]] == oracle

    # Retire-by-GC: once the last reference drops, the mapping goes.
    del old_db
    gc.collect()
    assert old_mapping.try_close()
    assert not old_mapping.mapped
    # The new generation serves the same answers off its own mapping.
    assert is_mmap_backed(new_db)
    assert [
        r.xpath for r in holder.current.search(QUERIES[0]).results
    ] == oracle
