"""Mutation-schedule differential harness for the live write path.

The correctness contract of :mod:`repro.write` is *rebuild equivalence*:
after any sequence of insert/update/delete mutations, every query
surface of the live :class:`~repro.engine.segmented.SegmentedDatabase`
must be byte-identical to a :class:`LotusXDatabase` built from scratch
over the same logical document at the same seqno.  That is a strong
property — region labels must come out globally dense (scores read
absolute spans), ordinals and term statistics must match exactly, and
the root-width patch on surviving segments must be invisible.

The harness runs seeded random schedules (inserts of randomly shaped
records, updates that grow/shrink/replace documents, deletes anywhere in
the corpus) and after every applied batch compares, against the cold
oracle:

* ranked twig search (``as_dict`` minus wall-clock),
* raw match sets on canonical region coordinates,
* keyword search under both SLCA and ELCA semantics,
* tag/value autocompletion through the public API handler,
* corpus statistics.

A second layer checks the durability story end to end: replaying the WAL
against a fresh base reproduces the live surface, and a checkpoint
(snapshot + rotated WAL) round-trips through ``open_writable_database``.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.database import LotusXDatabase
from repro.server import api
from repro.twig.match import Match
from repro.twig.parse import parse_twig
from repro.write.writer import open_writable_database

BASE_XML = """<dblp>
<article key="a1"><title>holistic twig joins</title>\
<author>nicolas bruno</author><year>2002</year></article>
<inproceedings key="c1"><title>lotusx position aware xml search</title>\
<author>jiaheng lu</author><author>chunbin lin</author>\
<year>2012</year><booktitle>icde</booktitle></inproceedings>
<book key="b1"><title>xml data management</title>\
<editor><author>jiaheng lu</author></editor><year>2009</year></book>
</dblp>"""

WORDS = [
    "xml", "twig", "pattern", "matching", "keyword", "search", "index",
    "label", "region", "stream", "join", "holistic", "ranking", "query",
]
AUTHORS = ["jiaheng lu", "chunbin lin", "tok wang ling", "divesh srivastava"]
RECORD_TAGS = ["article", "inproceedings", "book"]

TWIG_QUERIES = [
    "//article/title",
    "//article[./author]/title",
    "//inproceedings/author",
    "/dblp/article[./year]",
    "//title",
    '//article[./title~"twig"]/author',
]
MATCH_PATTERNS = ["//article[./author][./year]", "//inproceedings/title"]
KEYWORD_QUERIES = ["xml twig", "jiaheng lu", "search index"]
COMPLETE_PAYLOADS = [
    {"kind": "tag", "prefix": "", "k": 10},
    {"kind": "tag", "prefix": "a", "k": 10},
    {"kind": "tag", "prefix": "t", "k": 10, "query": "//article", "axis": "/"},
    {"kind": "value", "prefix": "", "k": 10, "query": "//article/title", "node": 1},
]


def _random_record(rng: random.Random) -> str:
    """A randomly shaped bibliography record (1-4 titles words, 0-3
    authors, optional year/booktitle and a nested editor)."""
    tag = rng.choice(RECORD_TAGS)
    title = " ".join(rng.choice(WORDS) for _ in range(rng.randint(1, 4)))
    parts = [f"<{tag} key=\"k{rng.randint(0, 999)}\">", f"<title>{title}</title>"]
    for _ in range(rng.randint(0, 3)):
        parts.append(f"<author>{rng.choice(AUTHORS)}</author>")
    if rng.random() < 0.6:
        parts.append(f"<year>{rng.randint(1999, 2012)}</year>")
    if rng.random() < 0.3:
        parts.append(f"<editor><author>{rng.choice(AUTHORS)}</author></editor>")
    if tag == "inproceedings" and rng.random() < 0.5:
        parts.append("<booktitle>icde</booktitle>")
    parts.append(f"</{tag}>")
    return "".join(parts)


def _scrub(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("elapsed_seconds", None)
    return payload


def _canonical_matches(matches: list[Match]) -> list[tuple]:
    """Matches on global region coordinates (instance-independent)."""
    return [
        tuple(
            sorted(
                (nid, el.region.start, el.region.end, el.level, el.tag)
                for nid, el in match.assignments.items()
            )
        )
        for match in matches
    ]


def _surface(database) -> dict:
    """Every public query surface, in a directly comparable form."""
    surface: dict = {}
    for query in TWIG_QUERIES:
        surface[("search", query)] = _scrub(database.search(query, k=10).as_dict())
    for query in MATCH_PATTERNS:
        surface[("matches", query)] = _canonical_matches(
            database.matches(parse_twig(query))
        )
    for query in KEYWORD_QUERIES:
        for semantics in ("slca", "elca"):
            surface[("keyword", query, semantics)] = database.keyword_search(
                query, k=10, semantics=semantics
            ).as_dict()
    for index, payload in enumerate(COMPLETE_PAYLOADS):
        surface[("complete", index)] = api.handle_complete(
            database, dict(payload)
        )
    surface["statistics"] = database.statistics().as_dict()
    return surface


def _assert_equivalent(live, oracle, context: str) -> None:
    got, expected = _surface(live), _surface(oracle)
    assert set(got) == set(expected)
    for key in expected:
        assert got[key] == expected[key], f"{key} diverged: {context}"


def _open(tmp_path, **kwargs):
    base = LotusXDatabase.from_string(BASE_XML)
    return open_writable_database(
        base, tmp_path / "harness.lxwal", synchronous=True, **kwargs
    )


def _run_schedule(rng: random.Random, writer, steps: int) -> list[tuple]:
    """Apply ``steps`` random mutations; returns the (op, id) trace."""
    corpus = writer._corpus
    trace = []
    for _ in range(steps):
        live_ids = corpus.document_ids()
        roll = rng.random()
        if roll < 0.5 or len(live_ids) <= 2:
            seqno = writer.insert_document(_random_record(rng))
            trace.append(("insert", seqno))
        elif roll < 0.8:
            doc_id = rng.choice(live_ids)
            writer.update_document(doc_id, _random_record(rng))
            trace.append(("update", doc_id))
        else:
            doc_id = rng.choice(live_ids)
            writer.delete_document(doc_id)
            trace.append(("delete", doc_id))
    return trace


@pytest.mark.parametrize("seed", range(4))
def test_live_surface_matches_cold_rebuild_after_every_batch(tmp_path, seed):
    """The core differential property, checked after every batch."""
    rng = random.Random(1000 + seed)
    database = _open(tmp_path, compact_threshold=4)
    writer = database.writer
    try:
        for batch in range(8):
            trace = _run_schedule(rng, writer, steps=3)
            oracle = LotusXDatabase(writer._corpus.checkpoint_document())
            _assert_equivalent(
                database,
                oracle,
                f"seed={seed} batch={batch} trace={trace}"
                f" segments={writer._corpus.segment_count}",
            )
        assert not writer.wedged
        # The schedule must trip the compaction threshold.  Under the CI
        # crash drill (a standing LOTUSX_FAULT_SPEC fault at
        # write.compact) every attempt fails — contained, counted, and
        # the differential property above must hold regardless.
        counters = writer.counters
        assert counters["compactions"] + counters["compaction_failures"] > 0, (
            "schedule was meant to trip minor compaction"
        )
    finally:
        database.close()


@pytest.mark.parametrize("seed", range(2))
def test_wal_replay_reproduces_live_surface(tmp_path, seed):
    """Crash-restart equivalence: a fresh base + the surviving WAL must
    land exactly where the live database was."""
    rng = random.Random(2000 + seed)
    database = _open(tmp_path)
    writer = database.writer
    try:
        _run_schedule(rng, writer, steps=12)
        expected = _surface(database)
        last = writer.last_applied_seqno
    finally:
        database.close()  # closes the WAL handle too

    recovered = _open(tmp_path)
    try:
        assert recovered.writer.last_applied_seqno == last
        assert _surface(recovered) == expected
        assert sorted(recovered.document_ids()) == sorted(
            recovered.writer._corpus.document_ids()
        )
    finally:
        recovered.close()


def test_checkpoint_round_trip(tmp_path):
    """Checkpoint = compact + snapshot at seqno + WAL rotation; serving
    resumes from the snapshot with further mutations replayed on top."""
    from repro.engine.store import load_snapshot, read_snapshot_info

    rng = random.Random(3000)
    database = _open(tmp_path)
    writer = database.writer
    snapshot_path = tmp_path / "checkpoint.lxsnap"
    try:
        _run_schedule(rng, writer, steps=6)
        report = writer.checkpoint(snapshot_path)
        assert report["seqno"] == writer.last_applied_seqno
        assert read_snapshot_info(snapshot_path).seqno == report["seqno"]
        # Mutations after the checkpoint live only in the rotated WAL.
        _run_schedule(rng, writer, steps=4)
        expected = _surface(database)
        last = writer.last_applied_seqno
    finally:
        database.close()

    info = read_snapshot_info(snapshot_path)
    base = load_snapshot(snapshot_path)
    recovered = open_writable_database(
        base,
        tmp_path / "harness.lxwal",
        base_seqno=info.seqno,
        document_ids=info.document_ids,
        synchronous=True,
    )
    try:
        assert recovered.writer.last_applied_seqno == last
        assert _surface(recovered) == expected
    finally:
        recovered.close()


def test_compaction_preserves_surface(tmp_path):
    """Folding all deltas into one base segment is invisible to readers."""
    rng = random.Random(4000)
    database = _open(tmp_path, compact_threshold=100)  # no auto-compaction
    writer = database.writer
    try:
        _run_schedule(rng, writer, steps=10)
        before = _surface(database)
        segments_before = writer._corpus.segment_count
        assert segments_before > 1
        writer._corpus.compact()
        database._install_view(writer._corpus.build_view())
        assert writer._corpus.segment_count == 1
        assert _surface(database) == before
    finally:
        database.close()
