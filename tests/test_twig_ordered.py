"""Order-sensitive twig matching."""

import pytest

from repro.index.element_index import StreamFactory
from repro.index.term_index import TermIndex
from repro.labeling.assign import label_document
from repro.twig.algorithms.common import build_streams
from repro.twig.algorithms.naive import naive_match
from repro.twig.algorithms.ordered import (
    build_partial_order_check,
    order_constraint_pairs,
)
from repro.twig.algorithms.twig_stack import twig_stack_match
from repro.twig.match import Match, sort_matches
from repro.twig.parse import parse_twig
from repro.xmlio.builder import parse_string

# Two records with opposite field orders.
XML = (
    "<r>"
    "<rec><x>1</x><y>2</y></rec>"
    "<rec><y>3</y><x>4</x></rec>"
    "<rec><x>5</x><x>6</x><y>7</y></rec>"
    "</r>"
)


@pytest.fixture(scope="module")
def ctx():
    labeled = label_document(parse_string(XML))
    term_index = TermIndex(labeled)
    return labeled, term_index, StreamFactory(labeled, term_index)


def run(ctx, query):
    labeled, term_index, factory = ctx
    pattern = parse_twig(query)
    streams = build_streams(pattern, factory)
    holistic = sort_matches(twig_stack_match(pattern, streams))
    oracle = sort_matches(naive_match(pattern, labeled, term_index))
    assert holistic == oracle
    return pattern, holistic


class TestOrderedMatching:
    def test_unordered_finds_all(self, ctx):
        _, matches = run(ctx, "//rec[./x][./y]")
        assert len(matches) == 4  # rec1:1, rec2:1, rec3:2

    def test_ordered_drops_reversed_record(self, ctx):
        _, matches = run(ctx, "ordered://rec[./x][./y]")
        assert len(matches) == 3  # rec2 (y before x) is dropped

    def test_ordered_reverse_pattern(self, ctx):
        _, matches = run(ctx, "ordered://rec[./y][./x]")
        assert len(matches) == 1  # only rec2 has y before x

    def test_order_within_same_tag(self, ctx):
        labeled, _, factory = ctx
        pattern = parse_twig("//rec[./x][./x]")
        first, second = pattern.root.children
        pattern.add_order_constraint(first, second)
        streams = build_streams(pattern, factory)
        matches = twig_stack_match(pattern, streams)
        # Only rec3 has two x elements in order (x=5 before x=6).
        assert len(matches) == 1
        match = matches[0]
        assert match.element(first.node_id).element.text == "5"
        assert match.element(second.node_id).element.text == "6"


class TestConstraintMachinery:
    def test_constraint_pairs_from_flag(self):
        pattern = parse_twig("ordered://a[./b][./c][./d]")
        pairs = order_constraint_pairs(pattern)
        # Adjacent sibling pairs only (transitivity covers the rest).
        assert len(pairs) == 2

    def test_no_constraints_returns_none(self):
        pattern = parse_twig("//a[./b][./c]")
        assert build_partial_order_check(pattern) is None

    def test_partial_check_ignores_unbound_nodes(self, ctx):
        labeled, _, _ = ctx
        pattern = parse_twig("ordered://rec[./x][./y]")
        check = build_partial_order_check(pattern)
        assert check is not None
        x_node, y_node = pattern.root.children
        rec = labeled.stream("rec")[0]
        # Only the rec bound: no constraint has both endpoints — passes.
        assert check({pattern.root.node_id: rec})
        # Both bound, correct order.
        assert check(
            {
                x_node.node_id: labeled.stream("x")[0],
                y_node.node_id: labeled.stream("y")[0],
            }
        )
        # Both bound, wrong order.
        assert not check(
            {
                x_node.node_id: labeled.stream("x")[1],
                y_node.node_id: labeled.stream("y")[1],
            }
        )
