"""Soak test: sampled workloads across corpora, algorithms, and options.

The final line of defense: random-but-satisfiable twigs run on every
corpus shape (flat bibliography, schema-shaped auctions, deep recursive
parse trees) under every algorithm, with and without guide pruning, and
every answer set must agree with the naive oracle and be non-empty (the
sampler's guarantee).
"""

import pytest

from repro.twig.planner import Algorithm
from repro.twig.sample import sample_workload

ALGORITHMS = (
    Algorithm.STRUCTURAL_JOIN,
    Algorithm.TWIG_STACK,
    Algorithm.TJFAST,
)


@pytest.fixture(scope="module")
def treebank_db():
    from repro.datasets import generate_treebank
    from repro.engine.database import LotusXDatabase

    return LotusXDatabase(generate_treebank(sentences=25, seed=17))


def soak(db, seed: int, count: int) -> None:
    for pattern in sample_workload(db.labeled, seed, count, max_nodes=5):
        oracle = [m.key() for m in db.matches(pattern, Algorithm.NAIVE)]
        assert oracle, f"sampler guarantee violated: {pattern}"
        for algorithm in ALGORITHMS:
            plain = [m.key() for m in db.matches(pattern, algorithm)]
            assert plain == oracle, (algorithm, str(pattern))
            pruned = [
                m.key()
                for m in db.matches(pattern, algorithm, prune_streams=True)
            ]
            assert pruned == oracle, (algorithm, "pruned", str(pattern))


class TestSoak:
    def test_dblp_shape(self, dblp_db):
        soak(dblp_db, seed=101, count=15)

    def test_xmark_shape(self, xmark_db):
        soak(xmark_db, seed=202, count=15)

    def test_treebank_shape(self, treebank_db):
        soak(treebank_db, seed=303, count=15)

    def test_search_pipeline_never_crashes_on_samples(self, dblp_db):
        for pattern in sample_workload(dblp_db.labeled, 404, 10, max_nodes=4):
            response = dblp_db.search(pattern, k=3, rewrite=False)
            assert len(response) >= 1  # sampler guarantees a hit
            for hit in response:
                assert hit.xpath.startswith("/dblp")
                hit.highlighted_snippet  # must not raise


class TestServerTrafficSoak:
    """Differential soak across the two serving transports.

    The same mixed twig/keyword/autocomplete workload is fired
    concurrently at the event-driven server and then replayed against
    the legacy threaded server on the same corpus: every response must
    be byte-identical (``elapsed_seconds``, the one wall-clock field in
    search responses, is normalized out before comparing)."""

    def _workload(self, db) -> list[tuple[str, bytes]]:
        import json

        requests: list[tuple[str, dict]] = []
        for pattern in sample_workload(db.labeled, 777, 8, max_nodes=4):
            requests.append(
                ("/api/search", {"query": str(pattern), "k": 5})
            )
        for terms in ("xml", "query data", "index", "nosuchterm"):
            requests.append(("/api/keyword", {"query": terms, "k": 5}))
        for prefix in ("", "a", "t", "zz"):
            requests.append(("/api/complete", {"prefix": prefix, "k": 8}))
        # Canonical body bytes so both transports see identical requests.
        return [
            (path, json.dumps(payload, sort_keys=True).encode())
            for path, payload in requests
        ]

    def _fire(self, base_url: str, jobs, concurrently: bool):
        import json
        import threading
        import urllib.error
        import urllib.request

        results: list[tuple[int, bytes] | None] = [None] * len(jobs)

        def one(index: int, path: str, body: bytes) -> None:
            request = urllib.request.Request(
                base_url + path,
                data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=30) as response:
                    results[index] = (response.status, response.read())
            except urllib.error.HTTPError as error:
                results[index] = (error.code, error.read())

        if concurrently:
            threads = [
                threading.Thread(target=one, args=(index, path, body))
                for index, (path, body) in enumerate(jobs)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        else:
            for index, (path, body) in enumerate(jobs):
                one(index, path, body)
        assert all(result is not None for result in results)
        return results

    @staticmethod
    def _normalize(path: str, status: int, body: bytes):
        import json

        if path == "/api/search" and status == 200:
            data = json.loads(body)
            data.pop("elapsed_seconds", None)
            return json.dumps(data, sort_keys=True)
        return body

    def test_mixed_async_traffic_matches_legacy_threaded(self, dblp_db):
        import threading

        from repro.server.aio import make_async_server
        from repro.server.app import make_server

        jobs = self._workload(dblp_db)

        aio = make_async_server(dblp_db)
        aio_thread = threading.Thread(target=aio.serve_forever, daemon=True)
        aio_thread.start()
        threaded = make_server(dblp_db)
        threaded_thread = threading.Thread(
            target=threaded.serve_forever, daemon=True
        )
        threaded_thread.start()
        try:
            host, port = aio.server_address
            async_results = self._fire(
                f"http://{host}:{port}", jobs, concurrently=True
            )
            host, port = threaded.server_address[:2]
            threaded_results = self._fire(
                f"http://{host}:{port}", jobs, concurrently=False
            )
        finally:
            aio.shutdown()
            aio_thread.join(timeout=5)
            aio.server_close()
            threaded.shutdown()
            threaded.server_close()
            threaded_thread.join(timeout=5)

        for (path, _), (a_status, a_body), (t_status, t_body) in zip(
            jobs, async_results, threaded_results
        ):
            assert a_status == t_status, path
            assert self._normalize(path, a_status, a_body) == self._normalize(
                path, t_status, t_body
            ), path
