"""Soak test: sampled workloads across corpora, algorithms, and options.

The final line of defense: random-but-satisfiable twigs run on every
corpus shape (flat bibliography, schema-shaped auctions, deep recursive
parse trees) under every algorithm, with and without guide pruning, and
every answer set must agree with the naive oracle and be non-empty (the
sampler's guarantee).
"""

import pytest

from repro.twig.planner import Algorithm
from repro.twig.sample import sample_workload

ALGORITHMS = (
    Algorithm.STRUCTURAL_JOIN,
    Algorithm.TWIG_STACK,
    Algorithm.TJFAST,
)


@pytest.fixture(scope="module")
def treebank_db():
    from repro.datasets import generate_treebank
    from repro.engine.database import LotusXDatabase

    return LotusXDatabase(generate_treebank(sentences=25, seed=17))


def soak(db, seed: int, count: int) -> None:
    for pattern in sample_workload(db.labeled, seed, count, max_nodes=5):
        oracle = [m.key() for m in db.matches(pattern, Algorithm.NAIVE)]
        assert oracle, f"sampler guarantee violated: {pattern}"
        for algorithm in ALGORITHMS:
            plain = [m.key() for m in db.matches(pattern, algorithm)]
            assert plain == oracle, (algorithm, str(pattern))
            pruned = [
                m.key()
                for m in db.matches(pattern, algorithm, prune_streams=True)
            ]
            assert pruned == oracle, (algorithm, "pruned", str(pattern))


class TestSoak:
    def test_dblp_shape(self, dblp_db):
        soak(dblp_db, seed=101, count=15)

    def test_xmark_shape(self, xmark_db):
        soak(xmark_db, seed=202, count=15)

    def test_treebank_shape(self, treebank_db):
        soak(treebank_db, seed=303, count=15)

    def test_search_pipeline_never_crashes_on_samples(self, dblp_db):
        for pattern in sample_workload(dblp_db.labeled, 404, 10, max_nodes=4):
            response = dblp_db.search(pattern, k=3, rewrite=False)
            assert len(response) >= 1  # sampler guarantees a hit
            for hit in response:
                assert hit.xpath.startswith("/dblp")
                hit.highlighted_snippet  # must not raise
