"""Character classification for XML names."""

import pytest

from repro.xmlio import chars


class TestNameStartChar:
    def test_ascii_letters(self):
        assert chars.is_name_start_char("a")
        assert chars.is_name_start_char("Z")

    def test_underscore_and_colon(self):
        assert chars.is_name_start_char("_")
        assert chars.is_name_start_char(":")

    def test_digit_rejected(self):
        assert not chars.is_name_start_char("7")

    def test_hyphen_rejected(self):
        assert not chars.is_name_start_char("-")

    def test_unicode_letter_accepted(self):
        assert chars.is_name_start_char("é")
        assert chars.is_name_start_char("中")

    def test_punctuation_rejected(self):
        for ch in "<>&\"' .!/":
            assert not chars.is_name_start_char(ch), ch


class TestNameChar:
    def test_digits_allowed_inside(self):
        assert chars.is_name_char("7")

    def test_hyphen_dot_allowed_inside(self):
        assert chars.is_name_char("-")
        assert chars.is_name_char(".")

    def test_space_rejected(self):
        assert not chars.is_name_char(" ")

    def test_middle_dot_allowed(self):
        assert chars.is_name_char("·")


class TestValidName:
    @pytest.mark.parametrize(
        "name", ["a", "article", "_x", "ns:tag", "a-b.c", "T1", "日本語"]
    )
    def test_valid(self, name):
        assert chars.is_valid_name(name)

    @pytest.mark.parametrize("name", ["", "1a", "-a", ".a", "a b", "a<b", "a&b"])
    def test_invalid(self, name):
        assert not chars.is_valid_name(name)


class TestWhitespaceAndChars:
    def test_xml_whitespace(self):
        for ch in " \t\r\n":
            assert chars.is_xml_whitespace(ch)
        assert not chars.is_xml_whitespace("\v")
        assert not chars.is_xml_whitespace("a")

    def test_valid_document_chars(self):
        assert chars.is_valid_char("a")
        assert chars.is_valid_char("\t")
        assert chars.is_valid_char("\U0001F600")

    def test_control_chars_invalid(self):
        assert not chars.is_valid_char("\x00")
        assert not chars.is_valid_char("\x1f")
