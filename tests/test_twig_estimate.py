"""Twig cardinality estimation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling.assign import label_document
from repro.index.term_index import TermIndex
from repro.twig.algorithms.naive import naive_match
from repro.twig.estimate import estimate_cardinality, q_error
from repro.twig.pattern import Axis, TwigPattern
from repro.xmlio.tree import Document, Element


class TestQError:
    def test_exact_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(5, 20) == q_error(20, 5) == 4.0

    def test_zero_smoothing(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0, 5) == 5.0
        assert q_error(5, 0) == 5.0


class TestStructuralEstimates:
    def test_child_edge_exact(self, small_db):
        pattern = small_db.parse_query("//article/author")
        estimate = estimate_cardinality(pattern, small_db.guide)
        assert estimate == len(small_db.matches(pattern)) == 3

    def test_descendant_edge_exact(self, small_db):
        pattern = small_db.parse_query("//dblp//author")
        estimate = estimate_cardinality(pattern, small_db.guide)
        assert estimate == len(small_db.matches(pattern)) == 9

    def test_unsatisfiable_estimates_zero(self, small_db):
        pattern = small_db.parse_query("//article/publisher")
        assert estimate_cardinality(pattern, small_db.guide) == 0.0

    def test_optional_branches_do_not_filter(self, small_db):
        with_optional = small_db.parse_query("//article[./journal?]/author")
        without = small_db.parse_query("//article/author")
        assert estimate_cardinality(
            with_optional, small_db.guide
        ) == estimate_cardinality(without, small_db.guide)


class TestPredicateSelectivity:
    def test_equality_uses_position_local_population(self, small_db):
        pattern = small_db.parse_query('//inproceedings[./booktitle="icde"]')
        estimate = estimate_cardinality(
            pattern, small_db.guide, small_db.term_index
        )
        assert q_error(estimate, len(small_db.matches(pattern))) <= 1.01

    def test_predicates_only_shrink(self, small_db):
        bare = small_db.parse_query("//article/author")
        constrained = small_db.parse_query('//article[./title~"twig"]/author')
        assert estimate_cardinality(
            constrained, small_db.guide, small_db.term_index
        ) <= estimate_cardinality(bare, small_db.guide, small_db.term_index)

    def test_without_term_index_predicates_ignored(self, small_db):
        constrained = small_db.parse_query('//article[./title~"twig"]/author')
        bare = small_db.parse_query("//article[./title]/author")
        assert estimate_cardinality(
            constrained, small_db.guide
        ) == estimate_cardinality(bare, small_db.guide)

    def test_explain_carries_estimate(self, small_db):
        plan = small_db.explain("//article/author")
        assert plan["estimated_matches"] == 3.0


class TestAccuracyOnGeneratedData:
    def test_structure_only_queries_near_exact(self, dblp_db):
        for query in [
            "//article/author",
            "//dblp//author",
            "//book/editor",
            "//inproceedings[./author][./booktitle]",
        ]:
            pattern = dblp_db.parse_query(query)
            estimate = estimate_cardinality(pattern, dblp_db.guide)
            actual = len(dblp_db.matches(pattern))
            assert q_error(estimate, actual) < 1.5, query


# ---------------------------------------------------------------------------
# Property: predicate-free PATH estimates are exact
# ---------------------------------------------------------------------------

TAGS = ["a", "b", "c"]


@st.composite
def documents(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    size = draw(st.integers(1, 25))
    root = Element("r")
    pool = [root]
    for _ in range(size):
        parent = rng.choice(pool)
        pool.append(parent.make_child(rng.choice(TAGS)))
        if len(pool) > 6:
            pool.pop(0)
    return Document(root)


@st.composite
def path_patterns(draw):
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    pattern = TwigPattern(rng.choice(TAGS + ["r"]))
    node = pattern.root
    for _ in range(draw(st.integers(0, 3))):
        node = pattern.add_child(
            node,
            rng.choice(TAGS),
            Axis.CHILD if rng.random() < 0.5 else Axis.DESCENDANT,
        )
    return pattern


@given(documents(), path_patterns())
@settings(max_examples=200, deadline=None)
def test_path_estimates_are_exact(document, pattern):
    labeled = label_document(document)
    term_index = TermIndex(labeled)
    estimate = estimate_cardinality(pattern, labeled.guide)
    actual = len(naive_match(pattern, labeled, term_index))
    assert estimate == pytest.approx(actual, abs=1e-6)
