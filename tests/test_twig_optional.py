"""Optional query nodes: left-outer-join semantics."""

import pytest

from repro.engine.database import LotusXDatabase
from repro.twig.optional import (
    anchored_embeddings,
    extend_with_optionals,
    validate_optional_pattern,
)
from repro.twig.parse import parse_twig
from repro.twig.planner import Algorithm

XML = (
    "<dblp>"
    "<article><title>a</title><author>lu</author><note>award</note></article>"
    "<article><title>b</title><author>lin</author><filler>x</filler></article>"
    "<article><title>c</title><author>ling</author><note>best</note>"
    "<note>second</note></article>"
    "</dblp>"
)


@pytest.fixture(scope="module")
def db():
    return LotusXDatabase.from_string(XML)


class TestParsing:
    def test_question_mark_marks_optional(self):
        pattern = parse_twig("//article[./note?]/author")
        note = pattern.root.children[0]
        assert note.tag == "note"
        assert note.optional

    def test_roundtrip(self):
        for query in [
            "//article[./note?]/author",
            "//article[./note?][./year?]/title",
            "//a[.//b?]",
        ]:
            pattern = parse_twig(query)
            assert parse_twig(str(pattern)).signature() == pattern.signature()

    def test_signature_distinguishes_optional(self):
        required = parse_twig("//article[./note]/author")
        optional = parse_twig("//article[./note?]/author")
        assert required.signature() != optional.signature()


class TestPatternHelpers:
    def test_required_skeleton_drops_optional_subtrees(self):
        pattern = parse_twig("//article[./note?]/author")
        skeleton = pattern.required_skeleton()
        assert skeleton.size == 2
        assert not skeleton.has_optional()

    def test_optional_branches_top_level_only(self):
        pattern = parse_twig("//a[./b?[./c]]")
        branches = pattern.optional_branches()
        assert [branch.tag for branch in branches] == ["b"]

    def test_validation_rejects_optional_output(self, db):
        pattern = parse_twig("//article[./note!?]")
        with pytest.raises(ValueError, match="must always be bound"):
            validate_optional_pattern(pattern)
        with pytest.raises(ValueError):
            db.matches(pattern)


class TestSemantics:
    def test_matches_survive_without_optional(self, db):
        matches = db.matches("//article[./note?]/author")
        assert len(matches) == 3  # all articles, note or not (b has none)

    def test_required_variant_filters(self, db):
        assert len(db.matches("//article[./note]/author")) == 3  # 1 + 2 notes
        assert len(db.matches("//article[./note?]/author")) == 3  # one per article

    def test_optional_binds_first_in_document_order(self, db):
        pattern = parse_twig("//article[./note?]/author")
        note_id = pattern.root.children[0].node_id
        matches = db.matches(pattern)
        third = matches[2]  # article c with two notes
        assert third.assignments[note_id].element.text == "best"

    def test_unbound_optional_absent_from_assignments(self, db):
        pattern = parse_twig("//article[./note?]/author")
        note_id = pattern.root.children[0].node_id
        matches = db.matches(pattern)
        second = matches[1]  # article b has no note
        assert note_id not in second.assignments

    def test_nested_optional_subtree(self, db):
        # Optional branch with internal structure: note? with no children
        # here, but a deeper optional chain must bind atomically.
        pattern = parse_twig("//dblp[.//note?]/article")
        assert len(db.matches(pattern)) == 3

    def test_optional_with_predicate(self, db):
        pattern = parse_twig('//article[./note[.~"award"]?]/author')
        note_id = pattern.root.children[0].node_id
        matches = db.matches(pattern)
        assert len(matches) == 3
        bound = [m for m in matches if note_id in m.assignments]
        assert len(bound) == 1

    @pytest.mark.parametrize(
        "algorithm",
        [Algorithm.NAIVE, Algorithm.TWIG_STACK, Algorithm.STRUCTURAL_JOIN,
         Algorithm.TJFAST],
    )
    def test_all_algorithms_support_optional(self, db, algorithm):
        assert len(db.matches("//article[./note?]/author", algorithm)) == 3


class TestRanking:
    def test_bound_optional_ranks_higher(self, db):
        response = db.search("//article[./note?]/title", rewrite=False, k=10)
        # Articles with a note outrank the one without.
        no_note_rank = [h.xpath for h in response].index(
            "/dblp[1]/article[2]/title[1]"
        )
        assert no_note_rank == len(response) - 1

    def test_scores_stay_in_unit_interval(self, db):
        for hit in db.search("//article[./note?]/title", rewrite=False):
            assert 0.0 < hit.score.combined <= 1.0


class TestAnchoredEmbeddings:
    def test_direct_use(self, db):
        pattern = parse_twig("//article[./note?]")
        branch = pattern.root.children[0]
        first_article = db.labeled.stream("article")[0]
        embeddings = anchored_embeddings(
            branch, first_article, db.labeled, db.term_index
        )
        assert len(embeddings) == 1
        assert embeddings[0][branch.node_id].element.text == "award"

    def test_extend_preserves_match_count(self, db):
        pattern = parse_twig("//article[./note?]")
        skeleton_matches = db.matches(pattern.required_skeleton())
        extended = extend_with_optionals(
            pattern, skeleton_matches, db.labeled, db.term_index
        )
        assert len(extended) == len(skeleton_matches)
