"""Sampled twig workloads: every sampled pattern must have a match."""

import random

import pytest

from repro.twig.sample import sample_twig, sample_workload


class TestSampleTwig:
    def test_every_sample_has_a_match(self, small_db):
        rng = random.Random(0)
        for _ in range(50):
            pattern = sample_twig(small_db.labeled, rng)
            assert small_db.matches(pattern), str(pattern)

    def test_samples_have_matches_on_generated_corpora(self, dblp_db, xmark_db):
        for db in (dblp_db, xmark_db):
            rng = random.Random(7)
            for _ in range(25):
                pattern = sample_twig(db.labeled, rng, max_nodes=6)
                assert db.matches(pattern), str(pattern)

    def test_max_nodes_respected(self, small_db):
        rng = random.Random(1)
        for _ in range(20):
            assert sample_twig(small_db.labeled, rng, max_nodes=3).size <= 3

    def test_single_node_allowed(self, small_db):
        rng = random.Random(2)
        pattern = sample_twig(small_db.labeled, rng, max_nodes=1)
        assert pattern.size == 1

    def test_invalid_max_nodes(self, small_db):
        with pytest.raises(ValueError):
            sample_twig(small_db.labeled, random.Random(0), max_nodes=0)

    def test_predicates_appear(self, dblp_db):
        rng = random.Random(3)
        patterns = [
            sample_twig(dblp_db.labeled, rng, predicate_probability=0.9)
            for _ in range(20)
        ]
        assert any(pattern.predicates() for pattern in patterns)

    def test_descendant_probability_extremes(self, small_db):
        all_child = sample_workload(
            small_db.labeled, seed=4, count=10, descendant_probability=0.0
        )
        # With probability 0, direct-child witnesses always use "/".
        for pattern in all_child:
            for node in pattern.nodes():
                if node.parent is not None:
                    assert small_db.matches(pattern)


class TestSampleWorkload:
    def test_deterministic(self, small_db):
        first = [str(p) for p in sample_workload(small_db.labeled, 9, 10)]
        second = [str(p) for p in sample_workload(small_db.labeled, 9, 10)]
        assert first == second

    def test_different_seeds_differ(self, dblp_db):
        first = [str(p) for p in sample_workload(dblp_db.labeled, 1, 10)]
        second = [str(p) for p in sample_workload(dblp_db.labeled, 2, 10)]
        assert first != second

    def test_all_algorithms_agree_on_samples(self, small_db):
        from repro.twig.planner import Algorithm

        for pattern in sample_workload(small_db.labeled, 11, 15):
            baseline = [m.key() for m in small_db.matches(pattern, Algorithm.NAIVE)]
            for algorithm in (Algorithm.TWIG_STACK, Algorithm.TJFAST):
                assert [
                    m.key() for m in small_db.matches(pattern, algorithm)
                ] == baseline, str(pattern)
