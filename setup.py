"""Legacy setup shim: enables `pip install -e . --no-use-pep517` offline.

The environment has setuptools but no `wheel` package, so PEP 517 editable
installs (which build a wheel) fail.  All real metadata lives in
pyproject.toml; this file only exists for the legacy develop-mode path.
"""

from setuptools import setup

setup()
